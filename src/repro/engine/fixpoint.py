"""Semi-naive fixpoint evaluation of ``Fix`` nodes.

Figure 5 costs the Fix node as the sum over semi-naive iterations of
the fixpoint equation's cost; this module is the runtime counterpart.
The body (a union of parts) is partitioned into *base* parts (no
recursion reference) evaluated once, and *recursive* parts evaluated
per iteration against the current delta.  New tuples are materialized
into a temporary extent (the paper's temporary file, e.g.
``Influencer``); duplicate elimination on the full tuple guarantees
termination on acyclic data and bounds work on cyclic data together
with the engine's iteration cap.

When the engine carries ``parallelism > 1`` the per-iteration work is
handed to :mod:`repro.engine.parallel`, which hash-partitions the
delta across a worker pool; this module remains the serial reference
path (and the fallback for bodies the parallel evaluator must not
reorder — see :func:`repro.engine.parallel.parallel_safe`).
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Set, Tuple

from repro.errors import ExecutionError, FixpointLimitError
from repro.engine.batch import Batch
from repro.engine.columns import column_kinds
from repro.engine.eval_expr import Binding, normalize_value
from repro.obs.log import get_logger
from repro.physical.storage import StoredRecord
from repro.plans.nodes import Fix, PlanNode, RecLeaf, UnionOp

#: Structured logger (request id and fix name travel as fields).
_LOG = get_logger("engine")

__all__ = [
    "flatten_union",
    "partition_parts",
    "normalize_binding",
    "normalized_columns",
    "key_of_normalized",
    "run_fixpoint",
]


def flatten_union(node: PlanNode) -> List[PlanNode]:
    """The union parts of a body, flattening nested Union operators."""
    if isinstance(node, UnionOp):
        return flatten_union(node.left) + flatten_union(node.right)
    return [node]


def partition_parts(
    fix: Fix,
) -> Tuple[List[PlanNode], List[PlanNode]]:
    """Split the Fix body into (base_parts, recursive_parts)."""
    base_parts: List[PlanNode] = []
    recursive_parts: List[PlanNode] = []
    for part in flatten_union(fix.body):
        references_rec = any(
            isinstance(node, RecLeaf) and node.name == fix.name
            for node in part.walk()
        )
        if references_rec:
            recursive_parts.append(part)
        else:
            base_parts.append(part)
    if not base_parts:
        raise ExecutionError(
            f"Fix({fix.name}) has no non-recursive base part"
        )
    if not recursive_parts:
        raise ExecutionError(
            f"Fix({fix.name}) has no recursive part"
        )
    return base_parts, recursive_parts


def normalize_binding(binding: Binding) -> Dict[str, object]:
    """Normalize a produced binding once, at insertion time: records
    collapse to their oids, collection values to tuples of normalized
    elements.  The result is both the stored tuple and the input to
    :func:`key_of_normalized` — the dedup probe never re-normalizes."""
    values: Dict[str, object] = {}
    for key, value in binding.items():
        value = normalize_value(value)
        if isinstance(value, (list, tuple)):
            value = tuple(normalize_value(item) for item in value)
        values[key] = value
    return values


def key_of_normalized(values: Dict[str, object]) -> tuple:
    """Dedup key of an already-normalized tuple (sorted field order)."""
    return tuple((key, values[key]) for key in sorted(values))


#: Value types :func:`normalize_value` maps to themselves — a column
#: containing only these skips per-value normalization entirely.
_IDENTITY_KINDS = frozenset({int, float, str, bool, type(None)})


def _normalize_column(column: list) -> list:
    """Column-wise :func:`normalize_binding`: all-atomic columns pass
    through untouched (one C-level type scan instead of per-value
    isinstance checks); anything else is normalized value by value."""
    if not (column_kinds(column) - _IDENTITY_KINDS):
        return column
    normalized = []
    for value in column:
        value = normalize_value(value)
        if isinstance(value, (list, tuple)):
            value = tuple(normalize_value(item) for item in value)
        normalized.append(value)
    return normalized


def normalized_columns(columns: Dict[str, list]):
    """``(names, cols, sorted_names, sorted_cols)`` — a columnar
    batch's columns normalized column-wise, in both the batch's field
    order (for building stored tuples with the same field order the
    row path's ``normalize_binding`` would) and sorted field order
    (for assembling :func:`key_of_normalized`-compatible dedup keys
    without ever building a binding dict)."""
    names = list(columns)
    cols = [_normalize_column(columns[name]) for name in names]
    order = sorted(range(len(names)), key=names.__getitem__)
    sorted_names = tuple(names[index] for index in order)
    sorted_cols = [cols[index] for index in order]
    return names, cols, sorted_names, sorted_cols


def _tuple_key(binding: Binding) -> tuple:
    """Backward-compatible key of a raw binding (normalizes first)."""
    return key_of_normalized(normalize_binding(binding))


def run_fixpoint(engine, fix: Fix, delta_env: Dict[str, List[StoredRecord]]) -> str:
    """Evaluate ``fix`` semi-naively; returns the temp entity name.

    ``engine`` is the :class:`repro.engine.evaluator.Engine` running the
    plan (passed in to avoid a circular import); ``delta_env`` is the
    enclosing delta environment (supporting nested fixpoints).

    Dispatches to the distributed scatter-gather evaluator when the
    engine carries ``shards > 1`` *and* a shard cluster, else to the
    hash-partitioned parallel evaluator when the engine's
    ``parallelism`` knob exceeds 1 — in both cases only if the body is
    safe to evaluate concurrently (same :func:`parallel_safe` contract:
    slices of the delta are disjoint and rounds are barriers).
    """
    cluster = getattr(engine, "cluster", None)
    if getattr(engine, "shards", 1) > 1 and cluster is not None:
        from repro.dist.coordinator import run_fixpoint_distributed
        from repro.engine.parallel import parallel_safe

        if parallel_safe(fix):
            return run_fixpoint_distributed(
                engine, fix, delta_env, cluster, engine.shards
            )
    if getattr(engine, "parallelism", 1) > 1:
        from repro.engine.parallel import parallel_safe, run_fixpoint_parallel

        if parallel_safe(fix):
            return run_fixpoint_parallel(
                engine, fix, delta_env, engine.parallelism
            )
    return run_fixpoint_serial(engine, fix, delta_env)


def run_fixpoint_serial(
    engine, fix: Fix, delta_env: Dict[str, List[StoredRecord]]
) -> str:
    """The serial semi-naive loop (also the parallel path's oracle)."""
    temp_info = engine.physical.register_temp(fix.name)
    temp_name = temp_info.name
    engine.note_temp(temp_name)
    base_parts, recursive_parts = partition_parts(fix)

    seen: Set[tuple] = set()

    def materialize(batches: Iterable[Batch]) -> List[StoredRecord]:
        """Dedup + insert a part's output, one batch at a time: a
        single cancellation poll covers the whole batch, and the
        seen-set probes run over a local slice of bindings instead of
        interleaving with generator resumptions."""
        fresh: List[StoredRecord] = []
        insert = engine.store.insert
        peek = engine.store.peek
        for batch in batches:
            engine.check_cancelled()
            if batch.is_columnar:
                # Column form: normalize column-wise, probe the seen
                # set with keys assembled from the sorted columns, and
                # build a binding dict only for the fresh tuples.
                names, cols, sorted_names, sorted_cols = normalized_columns(
                    batch.columns
                )
                for index, key_values in enumerate(zip(*sorted_cols)):
                    key = tuple(zip(sorted_names, key_values))
                    if key in seen:
                        continue
                    seen.add(key)
                    values = {name: col[index] for name, col in zip(names, cols)}
                    fresh.append(peek(insert(temp_name, values)))
                continue
            for binding in batch.rows:
                values = normalize_binding(binding)
                key = key_of_normalized(values)
                if key in seen:
                    continue
                seen.add(key)
                fresh.append(peek(insert(temp_name, values)))
        return fresh

    profiler = getattr(engine, "profiler", None)
    progress = getattr(engine, "progress", None)

    # Base round: evaluate every non-recursive part once.
    round_start = time.perf_counter()
    delta: List[StoredRecord] = []
    for part in base_parts:
        delta.extend(materialize(engine.iterate_batches(part, delta_env)))
    if profiler is not None:
        profiler.fix_iteration(
            fix, 0, len(delta), time.perf_counter() - round_start
        )
    if progress is not None:
        progress.round_update(
            fix=fix.name,
            round_index=0,
            delta=len(delta),
            seconds=time.perf_counter() - round_start,
        )

    # Semi-naive rounds: feed only the last round's new tuples back in.
    iterations = 0
    while delta:
        iterations += 1
        if iterations > engine.max_fix_iterations:
            _LOG.warning(
                "fixpoint iteration limit hit",
                extra={
                    "request_id": getattr(engine, "request_id", None),
                    "fix": fix.name,
                    "limit": engine.max_fix_iterations,
                },
            )
            raise FixpointLimitError(fix.name, engine.max_fix_iterations)
        engine.check_cancelled()
        engine.metrics.fix_iterations += 1
        round_start = time.perf_counter()
        next_delta: List[StoredRecord] = []
        inner_env = dict(delta_env)
        inner_env[fix.name] = delta
        for part in recursive_parts:
            next_delta.extend(
                materialize(engine.iterate_batches(part, inner_env))
            )
        if profiler is not None:
            profiler.fix_iteration(
                fix,
                iterations,
                len(next_delta),
                time.perf_counter() - round_start,
            )
        if progress is not None:
            progress.round_update(
                fix=fix.name,
                round_index=iterations,
                delta=len(next_delta),
                seconds=time.perf_counter() - round_start,
            )
        delta = next_delta
    return temp_name
