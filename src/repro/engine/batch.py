"""The batch abstraction of the vectorized execution engine.

The engine's operators exchange :class:`Batch` objects instead of
single bindings.  One generator resumption, one cancellation poll and
one metering probe then cover ``batch_size`` tuples, so the Python
dispatch overhead that tuple-at-a-time pipelines pay per binding is
amortized across the whole batch (the batch-at-a-time runtime substrate
transformation-based recursive optimizers assume; see
``docs/architecture.md`` for the operator ABI).

A batch carries its bindings in one of two layouts:

* **row** — a list of binding dicts, the original representation
  (``Batch(rows, node_id)``); this is what ``--batch-layout row``
  reproduces bit-for-bit.
* **columnar** — a dict of column name → value list
  (:meth:`Batch.from_columns`), the layout the column kernels of
  :mod:`repro.engine.eval_expr` operate on.  Rows are materialized
  lazily (and cached) the first time a consumer touches ``.rows``, so
  row-oriented operators and existing callers work unchanged.

``batch_size=1`` degenerates to the exact tuple-at-a-time semantics:
every batch carries one binding, and all per-batch bookkeeping happens
per tuple — the compatibility path CI pins with ``REPRO_BATCH_SIZE=1``
(and, for the layout axis, with ``REPRO_BATCH_LAYOUT=row``).
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, Iterator, List, Optional

from repro.obs.log import get_logger

__all__ = [
    "Batch",
    "BATCH_LAYOUTS",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_BATCH_LAYOUT",
    "default_batch_size",
    "default_batch_layout",
    "rebatch",
]

_LOG = get_logger("engine")

#: Default number of bindings per batch.  Large enough to amortize the
#: per-batch generator hop / cancellation poll / metering probe down to
#: noise, small enough that a batch of music-schema bindings stays well
#: inside a few cache lines of pointers.
DEFAULT_BATCH_SIZE = 256

#: Accepted values of the ``batch_layout`` knob.
BATCH_LAYOUTS = ("row", "columnar")

#: Default operator exchange layout.  Columnar is the primary path; the
#: ``layout=row`` CI job pins the row-list compatibility semantics the
#: same way the ``REPRO_BATCH_SIZE=1`` job pins tuple-at-a-time.
DEFAULT_BATCH_LAYOUT = "columnar"


def default_batch_size() -> int:
    """The engine-wide default batch size.

    ``REPRO_BATCH_SIZE`` overrides the built-in default so an entire
    test run can be pinned to the tuple-at-a-time compatibility path
    (``REPRO_BATCH_SIZE=1``) without touching any call site.  A
    malformed or out-of-range value falls back to the default — with a
    structured warning, so a typo'd environment cannot silently run a
    whole suite at the wrong batch size.
    """
    raw = os.environ.get("REPRO_BATCH_SIZE")
    if not raw:
        return DEFAULT_BATCH_SIZE
    try:
        size = int(raw)
    except ValueError:
        _LOG.warning(
            "ignoring malformed REPRO_BATCH_SIZE",
            extra={"value": raw, "default": DEFAULT_BATCH_SIZE},
        )
        return DEFAULT_BATCH_SIZE
    if size < 1:
        _LOG.warning(
            "ignoring out-of-range REPRO_BATCH_SIZE",
            extra={"value": raw, "default": DEFAULT_BATCH_SIZE},
        )
        return DEFAULT_BATCH_SIZE
    return size


def default_batch_layout() -> str:
    """The engine-wide default batch layout.

    ``REPRO_BATCH_LAYOUT`` overrides the built-in default so an entire
    test run can be pinned to the row-list compatibility path
    (``REPRO_BATCH_LAYOUT=row``) without touching any call site; an
    unknown value falls back to the default with a structured warning.
    """
    raw = os.environ.get("REPRO_BATCH_LAYOUT")
    if not raw:
        return DEFAULT_BATCH_LAYOUT
    if raw not in BATCH_LAYOUTS:
        _LOG.warning(
            "ignoring unknown REPRO_BATCH_LAYOUT",
            extra={"value": raw, "default": DEFAULT_BATCH_LAYOUT},
        )
        return DEFAULT_BATCH_LAYOUT
    return raw


class Batch:
    """One unit of exchange between plan operators.

    ``node_id`` identifies the plan node that produced the batch (the
    same stable pre-order id that keys per-node tuple counters and
    profiler records).  Operators never emit empty batches; a consumer
    may therefore treat every received batch as carrying at least one
    binding.

    Row-constructed batches behave exactly as before.  Columnar batches
    (:meth:`from_columns`) hold their bindings as uniform-schema
    columns; ``.rows`` materializes (and caches) the binding dicts on
    first touch, preserving binding order and the column-insertion
    field order, so row-oriented consumers never see the difference.
    """

    __slots__ = ("_rows", "_columns", "_length", "node_id")

    def __init__(self, rows: List[dict], node_id: Optional[str] = None) -> None:
        self._rows = rows
        self._columns: Optional[Dict[str, list]] = None
        self._length = len(rows)
        self.node_id = node_id

    @classmethod
    def from_columns(
        cls,
        columns: Dict[str, list],
        node_id: Optional[str] = None,
        length: Optional[int] = None,
    ) -> "Batch":
        """A columnar batch over ``columns`` (column name → value list,
        all the same length; the dict's insertion order is the field
        order of the materialized bindings)."""
        batch = cls.__new__(cls)
        batch._rows = None
        batch._columns = columns
        if length is None:
            length = len(next(iter(columns.values()))) if columns else 0
        batch._length = length
        batch.node_id = node_id
        return batch

    @property
    def is_columnar(self) -> bool:
        """Whether this batch natively carries columns (materialized
        rows, if any, are a cache — the columns stay authoritative)."""
        return self._columns is not None

    @property
    def columns(self) -> Dict[str, list]:
        """The column store (column name → value list).

        Columnar batches return their native store; row batches build
        one on the fly from the first row's field order (the rows of
        one batch share a schema — every operator emits uniform
        bindings).  Callers must not mutate the returned lists.
        """
        if self._columns is not None:
            return self._columns
        rows = self._rows
        if not rows:
            return {}
        return {name: [row[name] for row in rows] for name in rows[0]}

    @property
    def rows(self) -> List[dict]:
        """The binding dicts (lazily materialized for columnar batches,
        then cached — repeated consumers pay the build once)."""
        rows = self._rows
        if rows is None:
            rows = self._materialize()
            self._rows = rows
        return rows

    def _materialize(self) -> List[dict]:
        columns = self._columns
        names = list(columns)
        # Dict-literal comprehensions for the dominant narrow schemas;
        # they beat dict(zip(...)) by a constant factor that matters at
        # scan speed.
        if len(names) == 1:
            name = names[0]
            return [{name: value} for value in columns[name]]
        if len(names) == 2:
            first, second = names
            return [
                {first: a, second: b}
                for a, b in zip(columns[first], columns[second])
            ]
        if not names:
            return [{} for _ in range(self._length)]
        return [dict(zip(names, values)) for values in zip(*columns.values())]

    def __len__(self) -> int:
        return self._length

    def __iter__(self):
        return iter(self.rows)

    def __bool__(self) -> bool:
        return self._length > 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        layout = "columnar" if self._columns is not None else "row"
        return (
            f"Batch({self._length} rows, {layout}, node_id={self.node_id!r})"
        )


def rebatch(
    batches: Iterable[Batch], size: int, node_id: Optional[str] = None
) -> Iterator[Batch]:
    """Re-slice a stream of batches to ``size`` rows per batch.

    Used by operators that legitimately change batch granularity (a
    high-fanout join may hold output rows until a full batch
    accumulates, a selective filter may merge the survivors of several
    input batches).  The relative row order is preserved.
    """
    pending: List[dict] = []
    for batch in batches:
        pending.extend(batch.rows)
        while len(pending) >= size:
            yield Batch(pending[:size], node_id)
            pending = pending[size:]
    if pending:
        yield Batch(pending, node_id)
