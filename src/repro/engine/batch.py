"""The batch abstraction of the vectorized execution engine.

The engine's operators exchange :class:`Batch` objects — a list of
bindings plus per-batch metadata — instead of single bindings.  One
generator resumption, one cancellation poll and one metering probe then
cover ``batch_size`` tuples, so the Python dispatch overhead that
tuple-at-a-time pipelines pay per binding is amortized across the
whole batch (the batch-at-a-time runtime substrate transformation-based
recursive optimizers assume; see ``docs/architecture.md`` for the
operator ABI).

``batch_size=1`` degenerates to the exact tuple-at-a-time semantics:
every batch carries one binding, and all per-batch bookkeeping happens
per tuple — the compatibility path CI pins with ``REPRO_BATCH_SIZE=1``.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator, List, Optional

__all__ = ["Batch", "DEFAULT_BATCH_SIZE", "default_batch_size", "rebatch"]

#: Default number of bindings per batch.  Large enough to amortize the
#: per-batch generator hop / cancellation poll / metering probe down to
#: noise, small enough that a batch of music-schema bindings stays well
#: inside a few cache lines of pointers.
DEFAULT_BATCH_SIZE = 256


def default_batch_size() -> int:
    """The engine-wide default batch size.

    ``REPRO_BATCH_SIZE`` overrides the built-in default so an entire
    test run can be pinned to the tuple-at-a-time compatibility path
    (``REPRO_BATCH_SIZE=1``) without touching any call site.
    """
    raw = os.environ.get("REPRO_BATCH_SIZE")
    if not raw:
        return DEFAULT_BATCH_SIZE
    try:
        size = int(raw)
    except ValueError:
        return DEFAULT_BATCH_SIZE
    return size if size >= 1 else DEFAULT_BATCH_SIZE


class Batch:
    """One unit of exchange between plan operators.

    ``rows`` is the list of bindings; ``node_id`` identifies the plan
    node that produced the batch (the same stable pre-order id that
    keys per-node tuple counters and profiler records).  Operators
    never emit empty batches; a consumer may therefore treat every
    received batch as carrying at least one binding.
    """

    __slots__ = ("rows", "node_id")

    def __init__(self, rows: List[dict], node_id: Optional[str] = None) -> None:
        self.rows = rows
        self.node_id = node_id

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Batch({len(self.rows)} rows, node_id={self.node_id!r})"


def rebatch(
    batches: Iterable[Batch], size: int, node_id: Optional[str] = None
) -> Iterator[Batch]:
    """Re-slice a stream of batches to ``size`` rows per batch.

    Used by operators that legitimately change batch granularity (a
    high-fanout join may hold output rows until a full batch
    accumulates, a selective filter may merge the survivors of several
    input batches).  The relative row order is preserved.
    """
    pending: List[dict] = []
    for batch in batches:
        pending.extend(batch.rows)
        while len(pending) >= size:
            yield Batch(pending[:size], node_id)
            pending = pending[size:]
    if pending:
        yield Batch(pending, node_id)
