"""Execution engine: plan evaluator, semi-naive fixpoint (serial and
hash-partitioned parallel), reference (ground-truth) evaluator and
runtime metrics."""

from repro.engine.batch import Batch, DEFAULT_BATCH_SIZE, default_batch_size
from repro.engine.cancel import CancellationToken
from repro.engine.context import ExecutionContext
from repro.engine.eval_expr import (
    Binding,
    ExpressionEvaluator,
    canonical_row,
    normalize_value,
)
from repro.engine.evaluator import Engine, ExecutionResult
from repro.engine.fixpoint import flatten_union, partition_parts
from repro.engine.metrics import RuntimeMetrics
from repro.engine.parallel import (
    parallel_safe,
    partition_delta,
    partitionable,
    run_fixpoint_parallel,
)
from repro.engine.reference import ReferenceEvaluator

__all__ = [
    "Batch",
    "DEFAULT_BATCH_SIZE",
    "default_batch_size",
    "Binding",
    "CancellationToken",
    "ExecutionContext",
    "ExpressionEvaluator",
    "canonical_row",
    "normalize_value",
    "Engine",
    "ExecutionResult",
    "flatten_union",
    "partition_parts",
    "parallel_safe",
    "partition_delta",
    "partitionable",
    "run_fixpoint_parallel",
    "RuntimeMetrics",
    "ReferenceEvaluator",
]
