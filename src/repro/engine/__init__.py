"""Execution engine: plan evaluator, semi-naive fixpoint, reference
(ground-truth) evaluator and runtime metrics."""

from repro.engine.cancel import CancellationToken
from repro.engine.eval_expr import (
    Binding,
    ExpressionEvaluator,
    canonical_row,
    normalize_value,
)
from repro.engine.evaluator import Engine, ExecutionResult
from repro.engine.fixpoint import flatten_union, partition_parts
from repro.engine.metrics import RuntimeMetrics
from repro.engine.reference import ReferenceEvaluator

__all__ = [
    "Binding",
    "CancellationToken",
    "ExpressionEvaluator",
    "canonical_row",
    "normalize_value",
    "Engine",
    "ExecutionResult",
    "flatten_union",
    "partition_parts",
    "RuntimeMetrics",
    "ReferenceEvaluator",
]
