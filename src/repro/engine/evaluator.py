"""The plan executor (batch-at-a-time).

Evaluates processing trees against the simulated object store with
faithful I/O behaviour: scans touch each page once, implicit joins
fetch referenced objects through the buffer, nested-loop explicit joins
honestly re-scan their inner operand per outer tuple (the behaviour the
``EJ`` cost formula of Figure 5 models), path-index joins charge index
page reads of ``nblevels + nbleaves/||C1||`` per lookup (the ``PIJ``
formula), and fixpoints run semi-naively (the ``Fix`` formula).

Operator ABI: every operator is a *generator of* :class:`Batch`
*objects* (:meth:`Engine.iterate_batches`), each carrying up to
``batch_size`` bindings.  One generator resumption, one cancellation
poll and one profiler probe cover a whole batch, so the Python dispatch
overhead that a tuple-at-a-time pipeline pays per binding is amortized
across ``batch_size`` tuples.  The I/O-visible order of operations is
unchanged — batching only groups *emissions*, never reorders fetches —
so page-read and predicate-eval counters are identical at every batch
size, and ``batch_size=1`` reproduces the exact tuple-at-a-time
semantics.  The full contract (when operators may hold or split
batches) is documented in ``docs/architecture.md``.

The executor doubles as the cost model's ground truth: benchmarks
compare its measured page I/O + predicate evaluations against the model
estimates.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.errors import ExecutionError
from repro.engine.batch import (
    BATCH_LAYOUTS,
    Batch,
    default_batch_layout,
    default_batch_size,
)
from repro.engine.cancel import CancellationToken
from repro.engine.columns import (
    column_kinds,
    gather,
    gather_columns,
    has_structured_kinds,
)
from repro.engine.context import (
    ExecutionContext,
    validate_choice,
    validate_knob,
)
from repro.engine.eval_expr import (
    Binding,
    ExpressionEvaluator,
    canonical_row,
    normalize_value,
)
from repro.engine.fixpoint import run_fixpoint
from repro.engine.metrics import RuntimeMetrics
from repro.obs.profile import PlanProfiler, assign_node_ids
from repro.obs.trace import NULL_TRACER
from repro.physical.buffer import BufferStats
from repro.physical.schema import PhysicalSchema
from repro.physical.storage import Oid, StoredRecord
from repro.plans.nodes import (
    EJ,
    IJ,
    INDEX_JOIN,
    PIJ,
    EntityLeaf,
    Fix,
    Materialize,
    PlanNode,
    Proj,
    RecLeaf,
    Sel,
    TempLeaf,
    UnionOp,
)
from repro.plans.validate import validate_plan
from repro.querygraph.predicates import (
    Comparison,
    Const,
    PathRef,
    conjuncts,
)

__all__ = ["ExecutionResult", "Engine"]


class ExecutionResult:
    """Rows and metrics from one plan evaluation."""

    def __init__(self, rows: List[Binding], metrics: RuntimeMetrics) -> None:
        self.rows = rows
        self.metrics = metrics

    def answer_set(self) -> frozenset:
        """Canonical set of rows, for plan-equivalence assertions."""
        return frozenset(canonical_row(row) for row in self.rows)

    def answer_bag(self) -> Dict[tuple, int]:
        """Canonical rows with multiplicities (bag semantics)."""
        bag: Dict[tuple, int] = {}
        for row in self.rows:
            key = canonical_row(row)
            bag[key] = bag.get(key, 0) + 1
        return bag

    def __len__(self) -> int:
        return len(self.rows)


class Engine:
    """Evaluates processing trees against a physical schema."""

    def __init__(
        self,
        physical: PhysicalSchema,
        max_fix_iterations: int = 256,
        keep_temps: bool = False,
        parallelism: int = 1,
        batch_size: Optional[int] = None,
        shards: int = 1,
        cluster=None,
        batch_layout: Optional[str] = None,
    ) -> None:
        self.physical = physical
        self.store = physical.store
        #: Safety cap on semi-naive iterations per Fix; exceeding it
        #: raises :class:`repro.errors.FixpointLimitError` instead of
        #: looping unbounded on pathological cyclic data.
        self.max_fix_iterations = max_fix_iterations
        self.keep_temps = keep_temps
        validate_knob("parallelism", parallelism)
        #: Worker threads a fixpoint may use; >1 routes Fix evaluation
        #: through :mod:`repro.engine.parallel`.
        self.parallelism = parallelism
        if batch_size is None:
            batch_size = default_batch_size()
        validate_knob("batch_size", batch_size)
        #: Bindings per :class:`Batch` exchanged between operators;
        #: 1 = exact tuple-at-a-time compatibility semantics.
        self.batch_size = batch_size
        if batch_layout is None:
            batch_layout = default_batch_layout()
        validate_choice("batch_layout", batch_layout, BATCH_LAYOUTS)
        #: Operator exchange layout: ``"columnar"`` (the default) moves
        #: column-major batches through the pipeline so filters and
        #: projections run as column kernels; ``"row"`` reproduces the
        #: row-list semantics bit-for-bit.
        self.batch_layout = batch_layout
        validate_knob("shards", shards)
        #: Shard fan-out for distributed fixpoints; >1 (with a
        #: ``cluster``) routes Fix evaluation through
        #: :mod:`repro.dist.coordinator`.
        self.shards = shards
        #: A :class:`repro.dist.ShardCluster` (or None).  ``shards > 1``
        #: without a cluster silently falls back to single-store
        #: evaluation — the knob asks, the cluster enables.
        self.cluster = cluster
        self.cancel_token: Optional["CancellationToken"] = None
        self.metrics = RuntimeMetrics()
        #: Optional per-node runtime profiler (EXPLAIN ANALYZE); when
        #: None the generators are returned unwrapped — no overhead.
        self.profiler: Optional[PlanProfiler] = None
        #: Stable pre-order node ids of the plan being executed; keys
        #: the per-node tuple counters and the profiler's records.
        self._node_ids: Dict[int, str] = {}
        self._evaluator: Optional[ExpressionEvaluator] = None
        self._temps_created: List[str] = []
        self._consumed_vars: Set[str] = set()
        #: Within one execute(): structurally identical Fix bodies are
        #: evaluated once and share their materialized temporary (a
        #: self-join of a recursion must not recompute the closure).
        self._fix_cache: Dict[object, str] = {}
        #: I/O charged by shard sessions during this execution (their
        #: buffers are private, so the coordinator-store delta misses
        #: them); folded into ``metrics.buffer`` at the end of execute.
        self._shard_buffer = BufferStats()
        #: Optional execution tracer (:class:`repro.obs.trace.Tracer`).
        #: The distributed fixpoint records its coordinator spans here
        #: and stitches one child lane per shard; NULL_TRACER = off.
        self.tracer = NULL_TRACER
        #: Request id of the owning service request (or "" outside the
        #: service); threaded into shard thread names, dist/ log lines
        #: and trace span attributes.
        self.request_id = ""
        #: Optional live-progress handle
        #: (:class:`repro.obs.progress.QueryProgress`): fixpoints call
        #: ``round_update`` per semi-naive round when set.
        self.progress = None

    # -- public API -------------------------------------------------------------

    def execute(
        self,
        plan: PlanNode,
        validate: bool = True,
        cancel: Optional["CancellationToken"] = None,
        profiler: Optional[PlanProfiler] = None,
        context: Optional["ExecutionContext"] = None,
    ) -> ExecutionResult:
        """Evaluate a plan; returns rows plus runtime metrics.

        ``cancel`` is an optional :class:`~repro.engine.cancel.CancellationToken`
        polled at safe points; when it fires, the evaluation raises
        :class:`~repro.errors.ExecutionCancelled` (or
        :class:`~repro.errors.ExecutionTimeout`) after dropping the
        temporaries it created — the store stays consistent.

        ``profiler`` is an optional
        :class:`~repro.obs.profile.PlanProfiler`; when given, every
        node's batch stream is metered (per-node tuples, wall time,
        page reads, predicate evals, per-Fix-iteration deltas).

        ``context`` is an optional
        :class:`~repro.engine.context.ExecutionContext` bundling the
        per-run knobs; its fields win over the individual keywords
        (and its ``parallelism``/``batch_size`` over the engine
        defaults).
        """
        if context is not None:
            cancel = context.cancel if context.cancel is not None else cancel
            if context.profiler is not None:
                profiler = context.profiler
            self.parallelism = context.parallelism
            if context.batch_size is not None:
                self.batch_size = context.batch_size
            if context.batch_layout is not None:
                self.batch_layout = context.batch_layout
            self.shards = context.shards
        if validate:
            validate_plan(plan, self.physical)
        self.cancel_token = cancel
        self.metrics = RuntimeMetrics()
        self._node_ids = assign_node_ids(plan)
        self.profiler = profiler
        if profiler is not None:
            profiler.attach(
                plan, self._node_ids, self.store.buffer.stats, self.metrics
            )
        self._evaluator = ExpressionEvaluator(
            self.store, self.metrics, self._resolve_method, charged=True
        )
        self._temps_created = []
        self._fix_cache = {}
        self._shard_buffer = BufferStats()
        from repro.plans.patterns import consumed_variables

        self._consumed_vars = consumed_variables(plan)
        buffer_before = self.store.buffer.stats.snapshot()
        rows: List[Binding] = []
        try:
            for batch in self.iterate_batches(plan, {}):
                rows.extend(batch.rows)
        finally:
            if not self.keep_temps:
                for temp_name in self._temps_created:
                    if self.physical.has_entity(temp_name):
                        self.physical.drop_temp(temp_name)
                        if self.tracer.enabled:
                            self.tracer.event("temp_cleanup", temp=temp_name)
        local = self.store.buffer.stats.delta_since(buffer_before)
        shard = self._shard_buffer
        self.metrics.buffer = BufferStats(
            local.logical_reads + shard.logical_reads,
            local.physical_reads + shard.physical_reads,
            local.evictions + shard.evictions,
        )
        if profiler is not None:
            # Includes worker/shard views merged during the fixpoint —
            # the overhead governor charges its budget against this.
            self.metrics.obs_probes = profiler.probe_count()
        return ExecutionResult(rows, self.metrics)

    # -- engine services used by the fixpoint modules -------------------------------

    def worker_clone(self) -> "Engine":
        """A thread-confined view of this engine for parallel fixpoint
        workers: shares the store, schema, plan metadata, temp ledger
        and cancellation token, but owns its metrics, expression
        evaluator and profiler view so counter updates never race.
        The owned counters are flushed back via :meth:`absorb_worker`.
        """
        clone = Engine.__new__(Engine)
        clone.physical = self.physical
        clone.store = self.store
        clone.max_fix_iterations = self.max_fix_iterations
        clone.keep_temps = self.keep_temps
        clone.parallelism = 1  # workers never nest pools
        clone.batch_size = self.batch_size
        clone.batch_layout = self.batch_layout
        clone.shards = 1
        clone.cluster = None
        clone.cancel_token = self.cancel_token
        clone.metrics = RuntimeMetrics()
        clone._node_ids = self._node_ids
        clone._temps_created = self._temps_created
        clone._consumed_vars = self._consumed_vars
        clone._fix_cache = {}
        clone._shard_buffer = BufferStats()
        clone.tracer = NULL_TRACER  # worker spans would race; lanes are
        clone.request_id = self.request_id  # a shard-session concept
        clone.progress = None
        clone.profiler = (
            self.profiler.worker_view(clone.metrics)
            if self.profiler is not None
            else None
        )
        clone._evaluator = ExpressionEvaluator(
            self.store, clone.metrics, clone._resolve_method, charged=True
        )
        return clone

    def shard_view(self, physical: PhysicalSchema) -> "Engine":
        """A shard-session view of this engine for distributed fixpoint
        evaluation: like :meth:`worker_clone`, but bound to a *shard's*
        replica schema/store (``physical``), so every scan, fetch and
        index probe it makes reads through the shard's own buffer pool.
        Temps it registers (delta staging extents) land in the session's
        private ledger — the session, not the coordinator's execute,
        cleans them up.  Counters flush back via :meth:`absorb_shard`.
        """
        clone = Engine.__new__(Engine)
        clone.physical = physical
        clone.store = physical.store
        clone.max_fix_iterations = self.max_fix_iterations
        clone.keep_temps = self.keep_temps
        clone.parallelism = 1  # shard-local evaluation is serial
        clone.batch_size = self.batch_size
        clone.batch_layout = self.batch_layout
        clone.shards = 1
        clone.cluster = None
        clone.cancel_token = self.cancel_token
        clone.metrics = RuntimeMetrics()
        clone._node_ids = self._node_ids
        clone._temps_created = []  # session-private staging ledger
        clone._consumed_vars = self._consumed_vars
        clone._fix_cache = {}
        clone._shard_buffer = BufferStats()
        clone.tracer = NULL_TRACER  # shard lanes record via the
        clone.request_id = self.request_id  # coordinator's child tracers
        clone.progress = None
        clone.profiler = (
            self.profiler.worker_view(clone.metrics, clone.store.buffer.stats)
            if self.profiler is not None
            else None
        )
        clone._evaluator = ExpressionEvaluator(
            clone.store, clone.metrics, clone._resolve_method, charged=True
        )
        return clone

    def absorb_worker(self, worker: "Engine") -> None:
        """Flush a worker clone's thread-confined counters into this
        engine (called from the coordinating thread after the pool has
        quiesced)."""
        self.metrics.merge(worker.metrics)
        worker.metrics = RuntimeMetrics()
        if self.profiler is not None and worker.profiler is not None:
            self.profiler.merge_from(worker.profiler)
            worker.profiler = None

    def absorb_shard(
        self, shard_index: int, session_engine: "Engine", io: "BufferStats"
    ) -> None:
        """Flush one shard session's counters into this engine,
        attributing the work to ``shard_index``: the session's tuples
        and its private buffer reads land in the per-shard breakdowns,
        and the reads are folded into this execution's I/O totals
        (the coordinator-store delta cannot see them)."""
        tuples = session_engine.metrics.total_tuples
        self.absorb_worker(session_engine)
        self.metrics.tuples_by_shard[shard_index] = (
            self.metrics.tuples_by_shard.get(shard_index, 0) + tuples
        )
        self.metrics.reads_by_shard[shard_index] = (
            self.metrics.reads_by_shard.get(shard_index, 0) + io.logical_reads
        )
        self._shard_buffer.logical_reads += io.logical_reads
        self._shard_buffer.physical_reads += io.physical_reads
        self._shard_buffer.evictions += io.evictions

    def note_temp(self, name: str) -> None:
        """Record a temporary created during this execution so it can
        be dropped afterwards (unless ``keep_temps``)."""
        self._temps_created.append(name)

    def check_cancelled(self) -> None:
        """Poll the cancellation token (no-op when none is set)."""
        if self.cancel_token is not None:
            self.cancel_token.check()

    def _resolve_method(self, entity: str, attribute: str):
        if self.physical.catalog is None or not self.physical.has_entity(entity):
            return None
        conceptual = self.physical.entity(entity).conceptual_name
        if conceptual is None or conceptual not in self.physical.catalog:
            return None
        method = self.physical.catalog.method(conceptual, attribute)
        if method is None:
            return None
        return (method.compute, method.eval_weight)

    # -- dispatch -----------------------------------------------------------------

    def iterate_batches(
        self, node: PlanNode, delta_env: Dict[str, List[StoredRecord]]
    ) -> Iterator[Batch]:
        """Stream the batches a plan node produces (operator dispatch;
        ``delta_env`` carries semi-naive deltas).  When a profiler is
        active the stream is metered per node, one probe per batch."""
        batches = self._batches(node, delta_env)
        if self.profiler is not None:
            return self.profiler.wrap_batches(node, batches)
        return batches

    def iterate(
        self, node: PlanNode, delta_env: Dict[str, List[StoredRecord]]
    ) -> Iterator[Binding]:
        """Tuple-at-a-time view of :meth:`iterate_batches` (flattens
        each batch); kept for callers that consume single bindings."""
        for batch in self.iterate_batches(node, delta_env):
            yield from batch.rows

    def _batches(
        self, node: PlanNode, delta_env: Dict[str, List[StoredRecord]]
    ) -> Iterator[Batch]:
        evaluator = self._evaluator
        if evaluator is None:
            raise ExecutionError("iterate_batches() called outside execute()")
        node_id = self._node_ids.get(id(node))
        if isinstance(node, (EntityLeaf, TempLeaf)):
            yield from self._scan_batches(node.entity, node.var, "scan", node_id)
            return
        if isinstance(node, RecLeaf):
            delta = delta_env.get(node.name)
            if delta is None:
                raise ExecutionError(
                    f"recursion reference {node.name!r} evaluated outside "
                    "its fixpoint"
                )
            yield from self._scan_delta_batches(node, delta, node_id)
            return
        if isinstance(node, Sel):
            indexed = self._indexed_selection_access(node, node_id)
            if indexed is not None:
                yield from indexed
                return
            yield from self._sel_batches(node, delta_env, node_id)
            return
        if isinstance(node, Proj):
            yield from self._proj_batches(node, delta_env, node_id)
            return
        if isinstance(node, IJ):
            yield from self._ij_batches(node, delta_env)
            return
        if isinstance(node, PIJ):
            yield from self._pij_batches(node, delta_env)
            return
        if isinstance(node, EJ):
            if node.algorithm == INDEX_JOIN:
                yield from self._index_join_batches(node, delta_env)
            else:
                yield from self._nested_loop_batches(node, delta_env)
            return
        if isinstance(node, UnionOp):
            yield from self.iterate_batches(node.left, delta_env)
            yield from self.iterate_batches(node.right, delta_env)
            return
        if isinstance(node, Fix):
            # The out_var does not affect the computed content: cache
            # by (name, body) so rebound instances share the result.
            # A body referencing an *enclosing* recursion's delta is
            # iteration-dependent and must not be cached.
            cacheable = all(
                leaf.name == node.name
                for leaf in node.body.walk()
                if isinstance(leaf, RecLeaf)
            )
            cache_key = ("fix", node.name, node.body._key())
            temp_name = (
                self._fix_cache.get(cache_key) if cacheable else None
            )
            if temp_name is None or not self.physical.has_entity(temp_name):
                temp_name = run_fixpoint(self, node, delta_env)
                if cacheable:
                    self._fix_cache[cache_key] = temp_name
            yield from self._scan_batches(temp_name, node.out_var, "fix", node_id)
            return
        if isinstance(node, Materialize):
            temp_info = self.physical.register_temp(node.name)
            self.note_temp(temp_info.name)
            insert = self.store.insert
            for batch in self.iterate_batches(node.child, delta_env):
                for binding in batch.rows:
                    insert(
                        temp_info.name,
                        {
                            key: normalize_value(value)
                            for key, value in binding.items()
                        },
                    )
            yield from self._scan_batches(
                temp_info.name, node.out_var, "materialize", node_id
            )
            return
        raise ExecutionError(f"unknown plan node {type(node).__name__}")

    # -- operator implementations ------------------------------------------------------

    def _make_scan_batch(
        self, var: str, records: List[StoredRecord], node_id: Optional[str]
    ) -> Batch:
        """One scan output batch in the engine's layout: a single
        ``{var: records}`` column, or the equivalent row dicts."""
        if self.batch_layout == "columnar":
            return Batch.from_columns({var: records}, node_id)
        return Batch([{var: record} for record in records], node_id)

    def _scan_batches(
        self, entity: str, var: str, kind: str, node_id: Optional[str]
    ) -> Iterator[Batch]:
        """Scan an extent into batches.  One cancellation poll and one
        ``batches`` increment per batch; the page-touch order of the
        underlying scan is untouched."""
        batch_size = self.batch_size
        metrics = self.metrics
        produced = 0
        records: List[StoredRecord] = []
        try:
            for record in self.store.scan(entity):
                records.append(record)
                if len(records) >= batch_size:
                    self.check_cancelled()
                    produced += len(records)
                    metrics.batches += 1
                    yield self._make_scan_batch(var, records, node_id)
                    records = []
            if records:
                self.check_cancelled()
                produced += len(records)
                metrics.batches += 1
                yield self._make_scan_batch(var, records, node_id)
        finally:
            metrics.add_tuples(kind, node_id, produced)

    def _scan_delta_batches(
        self, node: RecLeaf, delta: List[StoredRecord], node_id: Optional[str]
    ) -> Iterator[Batch]:
        """Scan the current delta in slices of ``batch_size``, charging
        each distinct page once."""
        batch_size = self.batch_size
        metrics = self.metrics
        touch = self.store.buffer.touch
        var = node.var
        touched = set()
        produced = 0
        records: List[StoredRecord] = []
        try:
            for record in delta:
                page_id = record.page_id
                if page_id is not None and page_id not in touched:
                    touched.add(page_id)
                    touch(page_id)
                records.append(record)
                if len(records) >= batch_size:
                    produced += len(records)
                    metrics.batches += 1
                    yield self._make_scan_batch(var, records, node_id)
                    records = []
            if records:
                produced += len(records)
                metrics.batches += 1
                yield self._make_scan_batch(var, records, node_id)
        finally:
            metrics.add_tuples("delta", node_id, produced)

    def _sel_batches(
        self,
        node: Sel,
        delta_env: Dict[str, List[StoredRecord]],
        node_id: Optional[str],
    ) -> Iterator[Batch]:
        """Unindexed selection.  Columnar layout filters through the
        compiled column kernel (index-list selection + column gather,
        with the all-pass gather forwarding the input columns
        unchanged); row layout keeps the row-list batch filter.  The
        survivors of one input batch travel as one (possibly smaller)
        output batch: merging across input batches would delay emission
        behind a selective filter for no measured gain."""
        evaluator = self._evaluator
        assert evaluator is not None
        metrics = self.metrics
        touch_width = len(node.predicate.variables())
        produced = 0
        if self.batch_layout == "columnar":
            kernel = evaluator.compile_filter_kernel(node.predicate)
            try:
                for batch in self.iterate_batches(node.child, delta_env):
                    metrics.column_touches += touch_width * len(batch)
                    selected = kernel(batch)
                    if selected:
                        produced += len(selected)
                        metrics.batches += 1
                        yield Batch.from_columns(
                            gather_columns(
                                batch.columns, selected, len(batch)
                            ),
                            node_id,
                            len(selected),
                        )
            finally:
                metrics.add_tuples("sel", node_id, produced)
            return
        batch_filter = evaluator.compile_filter(node.predicate)
        try:
            for batch in self.iterate_batches(node.child, delta_env):
                metrics.column_touches += touch_width * len(batch)
                rows = batch_filter(batch.rows)
                if rows:
                    produced += len(rows)
                    metrics.batches += 1
                    yield Batch(rows, node_id)
        finally:
            metrics.add_tuples("sel", node_id, produced)

    def _proj_batches(
        self,
        node: Proj,
        delta_env: Dict[str, List[StoredRecord]],
        node_id: Optional[str],
    ) -> Iterator[Batch]:
        """Projection.  Columnar layout builds the output columns
        field-by-field when every field has a column recipe and the
        batch's needed columns extract cleanly; any batch (or field
        shape) that would need the generic walk is projected row-wise
        through the same compiled closures the row layout uses, so
        evaluation counting and buffer charging stay in row order."""
        evaluator = self._evaluator
        assert evaluator is not None
        fields = [
            (field.name, evaluator.compile_expr(field.expr))
            for field in node.fields.fields
        ]
        touched: Set[str] = set()
        for field in node.fields.fields:
            touched |= field.expr.variables()
        touch_width = len(touched)
        metrics = self.metrics
        specs = (
            self._proj_column_specs(node)
            if self.batch_layout == "columnar"
            else None
        )
        produced = 0
        try:
            for batch in self.iterate_batches(node.child, delta_env):
                metrics.column_touches += touch_width * len(batch)
                if specs is not None and batch.is_columnar:
                    out = self._proj_columns(batch, specs)
                    if out is not None:
                        columns, length = out
                        if length:
                            produced += length
                            metrics.batches += 1
                            yield Batch.from_columns(
                                columns, node_id, length
                            )
                        continue
                rows = self._proj_rows(batch.rows, fields)
                if rows:
                    produced += len(rows)
                    metrics.batches += 1
                    yield Batch(rows, node_id)
        finally:
            metrics.add_tuples("proj", node_id, produced)

    @staticmethod
    def _proj_rows(rows: List[Binding], fields) -> List[Binding]:
        out: List[Binding] = []
        for binding in rows:
            row: Binding = {}
            suppressed = False
            for name, value_fn in fields:
                values = value_fn(binding)
                if not values:
                    # Path semantics: a traversal over a null
                    # reference yields nothing, so the output
                    # tuple is suppressed (like the paper's base
                    # rule, which emits no Influencer tuple for a
                    # composer without a master).
                    suppressed = True
                    break
                if len(values) > 1:
                    raise ExecutionError(
                        f"output field {name!r} is multivalued"
                    )
                row[name] = values[0]
            if not suppressed:
                out.append(row)
        return out

    @staticmethod
    def _proj_column_specs(node: Proj):
        """Per-field column recipes of a Proj — ``(name, kind,
        payload)`` triples for constants, whole-variable references and
        single-attribute paths — or None when any field needs the
        generic row evaluator (multi-hop paths, function applications,
        methods)."""
        specs = []
        for field in node.fields.fields:
            expr = field.expr
            if isinstance(expr, Const):
                specs.append((field.name, "const", expr.value))
            elif isinstance(expr, PathRef) and len(expr.attrs) == 0:
                specs.append((field.name, "var", expr.var))
            elif isinstance(expr, PathRef) and len(expr.attrs) == 1:
                specs.append((field.name, "attr", (expr.var, expr.attrs[0])))
            else:
                return None
        return specs

    def _proj_columns(self, batch: Batch, specs):
        """``(output columns, row count)`` of one columnar batch, or
        None when a needed column is not uniformly extractable (a
        non-record binding, a missing attribute, a collection value) —
        the caller then projects that batch row-wise.

        The ``expr_evals`` accounting replicates the row loop exactly:
        each field counts one evaluation per row still alive when it is
        reached, and a null single-attribute value suppresses its row
        from every output column (the projection short-circuit)."""
        columns = batch.columns
        extracted: Dict[str, Tuple[list, frozenset]] = {}
        for name, kind, payload in specs:
            if kind == "const":
                continue
            if kind == "var":
                if payload not in columns:
                    return None
                continue
            var, attr = payload
            column = columns.get(var)
            if column is None or column_kinds(column) != {StoredRecord}:
                return None
            try:
                raws = [record.values[attr] for record in column]
            except KeyError:
                return None
            kinds = column_kinds(raws)
            if has_structured_kinds(kinds):
                return None
            extracted[name] = (raws, kinds)
        metrics = self.metrics
        length = len(batch)
        alive: Optional[List[int]] = None  # None = every row alive
        out: List[Tuple[str, list]] = []
        for name, kind, payload in specs:
            count = length if alive is None else len(alive)
            metrics.expr_evals += count
            if kind == "const":
                out.append((name, [payload] * count))
                continue
            if kind == "var":
                # Batches are immutable after emission, so an all-alive
                # variable column is forwarded without copying.
                column = columns[payload]
                out.append(
                    (name, column if alive is None else gather(column, alive))
                )
                continue
            raws, kinds = extracted[name]
            values = raws if alive is None else gather(raws, alive)
            if type(None) in kinds:
                survivors = [
                    j for j, value in enumerate(values) if value is not None
                ]
                if len(survivors) != len(values):
                    values = gather(values, survivors)
                    out = [
                        (prev_name, gather(col, survivors))
                        for prev_name, col in out
                    ]
                    alive = (
                        survivors
                        if alive is None
                        else gather(alive, survivors)
                    )
            out.append((name, values))
        final = length if alive is None else len(alive)
        return dict(out), final

    def _indexed_selection_access(self, node: Sel, node_id: Optional[str] = None):
        """Index-assisted selection over a base entity
        (``access_cost(Ci, P)`` with an index, Section 3.2):

        * an equality conjunct on a directly indexed attribute descends
          the selection B⁺-tree;
        * an equality conjunct on a whole *path* matching a path
          index's attribute sequence + terminal attribute uses the
          index's **reverse** direction ([MS86]): the terminal value
          keys the lookup and only the qualifying head objects are
          fetched — no navigation at all.

        Returns None when inapplicable."""
        if not isinstance(node.child, EntityLeaf):
            return None
        leaf = node.child
        evaluator = self._evaluator
        assert evaluator is not None
        from repro.querygraph.predicates import Const

        for conjunct in conjuncts(node.predicate):
            if not isinstance(conjunct, Comparison) or conjunct.op != "=":
                continue
            for path_side, const_side in (
                (conjunct.left, conjunct.right),
                (conjunct.right, conjunct.left),
            ):
                if not (
                    isinstance(path_side, PathRef)
                    and path_side.var == leaf.var
                    and isinstance(const_side, Const)
                ):
                    continue
                # The index guarantees the matched conjunct; only the
                # *residual* conjuncts are re-evaluated on the fetched
                # records (re-checking a whole-path conjunct would
                # navigate the very path the index exists to skip).
                from repro.querygraph.predicates import conjoin

                residual = conjoin(
                    [c for c in conjuncts(node.predicate) if c != conjunct]
                )
                if len(path_side.attrs) == 1:
                    index = self.physical.selection_index(
                        leaf.entity, path_side.attrs[0]
                    )
                    if index is None:
                        continue

                    def generate(index=index, key=const_side.value,
                                 residual=residual, node_id=node_id):
                        self.metrics.index_lookups += 1
                        self.metrics.index_page_reads += index.nblevels
                        residual_fn = evaluator.compile_predicate(residual)
                        batch_size = self.batch_size
                        produced = 0
                        rows: List[Binding] = []
                        try:
                            for oid in index.lookup(key):
                                record = self.store.fetch(oid)
                                binding = {leaf.var: record}
                                if residual_fn(binding):
                                    rows.append(binding)
                                    if len(rows) >= batch_size:
                                        produced += len(rows)
                                        self.metrics.batches += 1
                                        yield Batch(rows, node_id)
                                        rows = []
                            if rows:
                                produced += len(rows)
                                self.metrics.batches += 1
                                yield Batch(rows, node_id)
                        finally:
                            self.metrics.add_tuples("sel", node_id, produced)

                    return generate()
                if len(path_side.attrs) >= 2:
                    path_index = self.physical.path_index(
                        leaf.entity, path_side.attrs[:-1]
                    )
                    if (
                        path_index is None
                        or path_index.terminal_attribute != path_side.attrs[-1]
                    ):
                        continue

                    def generate_reverse(
                        index=path_index, key=const_side.value,
                        residual=residual, node_id=node_id,
                    ):
                        self.metrics.index_lookups += 1
                        self.metrics.index_page_reads += index.nblevels
                        residual_fn = evaluator.compile_predicate(residual)
                        batch_size = self.batch_size
                        seen = set()
                        produced = 0
                        rows: List[Binding] = []
                        try:
                            for path_tuple in index.reverse(key):
                                head = path_tuple[0]
                                if head in seen:
                                    continue
                                seen.add(head)
                                record = self.store.fetch(head)
                                binding = {leaf.var: record}
                                if residual_fn(binding):
                                    rows.append(binding)
                                    if len(rows) >= batch_size:
                                        produced += len(rows)
                                        self.metrics.batches += 1
                                        yield Batch(rows, node_id)
                                        rows = []
                            if rows:
                                produced += len(rows)
                                self.metrics.batches += 1
                                yield Batch(rows, node_id)
                        finally:
                            self.metrics.add_tuples("sel", node_id, produced)

                    return generate_reverse()
        return None

    def _ij_batches(
        self, node: IJ, delta_env: Dict[str, List[StoredRecord]]
    ) -> Iterator[Batch]:
        evaluator = self._evaluator
        assert evaluator is not None
        node_id = self._node_ids.get(id(node))
        fetch = self.store.fetch
        out_var = node.out_var
        batch_size = self.batch_size
        metrics = self.metrics
        produced = 0
        if self.batch_layout == "columnar":
            # Column form: walk the head column in row order (the
            # fetch/charge order is identical to the row loop), gather
            # the surviving input columns by expansion index and append
            # the joined records as one new column.
            walk_from = evaluator.compile_path_from_value(node.source)
            src_var = node.source.var
            emitter = _ColumnEmitter(batch_size, node_id)
            try:
                for batch in self.iterate_batches(node.child, delta_env):
                    metrics.column_touches += len(batch)
                    columns = batch.columns
                    source = columns.get(src_var)
                    if source is None:
                        # Unbound head variable: the row walk raises
                        # the canonical error.
                        evaluator.compile_path(node.source)(
                            batch.rows[0] if len(batch) else {}
                        )
                        continue
                    indices: List[int] = []
                    records: List[StoredRecord] = []
                    for position, value in enumerate(source):
                        for reached in walk_from(value):
                            if isinstance(reached, Oid):
                                record = fetch(reached)
                            elif isinstance(reached, StoredRecord):
                                record = reached
                            else:
                                # null or non-reference: inner-join
                                # drops it
                                continue
                            indices.append(position)
                            records.append(record)
                    if not indices:
                        continue
                    out_columns = {
                        name: gather(column, indices)
                        for name, column in columns.items()
                    }
                    out_columns[out_var] = records
                    for emitted in emitter.add(out_columns, len(indices)):
                        produced += len(emitted)
                        metrics.batches += 1
                        yield emitted
                final = emitter.flush()
                if final is not None:
                    produced += len(final)
                    metrics.batches += 1
                    yield final
            finally:
                metrics.add_tuples("ij", node_id, produced)
            return
        path_fn = evaluator.compile_path(node.source)
        rows: List[Binding] = []
        try:
            for batch in self.iterate_batches(node.child, delta_env):
                metrics.column_touches += len(batch)
                for binding in batch.rows:
                    for value in path_fn(binding):
                        if isinstance(value, Oid):
                            record = fetch(value)
                        elif isinstance(value, StoredRecord):
                            record = value
                        else:
                            continue  # null or non-reference: inner-join drops it
                        merged = dict(binding)
                        merged[out_var] = record
                        rows.append(merged)
                        if len(rows) >= batch_size:
                            produced += len(rows)
                            metrics.batches += 1
                            yield Batch(rows, node_id)
                            rows = []
            if rows:
                produced += len(rows)
                metrics.batches += 1
                yield Batch(rows, node_id)
        finally:
            metrics.add_tuples("ij", node_id, produced)

    def _pij_batches(
        self, node: PIJ, delta_env: Dict[str, List[StoredRecord]]
    ) -> Iterator[Batch]:
        evaluator = self._evaluator
        assert evaluator is not None
        node_id = self._node_ids.get(id(node))
        index = self.physical.find_path_index(node.attributes)
        if index is None:
            raise ExecutionError(
                f"no path index on {node.path_name!r} at execution time"
            )
        stats = self.physical.statistics
        head_count = max(1, stats.instances(index.root_entity))
        per_lookup = index.nblevels + index.nbleaves / head_count
        fetch = self.store.fetch
        consumed_vars = self._consumed_vars
        batch_size = self.batch_size
        metrics = self.metrics
        produced = 0
        if self.batch_layout == "columnar":
            walk_from = evaluator.compile_path_from_value(node.source)
            src_var = node.source.var
            out_vars = list(node.out_vars)
            # Only fetch objects somebody consumes; the others stay as
            # oids (dereferenced on demand if a predicate surprises us)
            # — the whole point of a path index is skipping the
            # intermediate objects ([MS86]).
            consumed_flags = [var in consumed_vars for var in out_vars]
            emitter = _ColumnEmitter(batch_size, node_id)
            try:
                for batch in self.iterate_batches(node.child, delta_env):
                    metrics.column_touches += len(batch)
                    columns = batch.columns
                    source = columns.get(src_var)
                    if source is None:
                        evaluator.compile_path(node.source)(
                            batch.rows[0] if len(batch) else {}
                        )
                        continue
                    indices: List[int] = []
                    out_lists: List[list] = [[] for _ in out_vars]
                    for position, head_value in enumerate(source):
                        for value in walk_from(head_value):
                            if isinstance(value, StoredRecord):
                                head = value.oid
                            elif isinstance(value, Oid):
                                head = value
                            else:
                                continue
                            metrics.index_lookups += 1
                            metrics.index_page_reads += per_lookup
                            for path_tuple in index.forward(head):
                                indices.append(position)
                                for slot, wanted in enumerate(
                                    consumed_flags
                                ):
                                    oid = path_tuple[slot + 1]
                                    out_lists[slot].append(
                                        fetch(oid) if wanted else oid
                                    )
                    if not indices:
                        continue
                    out_columns = {
                        name: gather(column, indices)
                        for name, column in columns.items()
                    }
                    for slot, out_var in enumerate(out_vars):
                        out_columns[out_var] = out_lists[slot]
                    for emitted in emitter.add(out_columns, len(indices)):
                        produced += len(emitted)
                        metrics.batches += 1
                        yield emitted
                final = emitter.flush()
                if final is not None:
                    produced += len(final)
                    metrics.batches += 1
                    yield final
            finally:
                metrics.add_tuples("pij", node_id, produced)
            return
        path_fn = evaluator.compile_path(node.source)
        rows: List[Binding] = []
        try:
            for batch in self.iterate_batches(node.child, delta_env):
                metrics.column_touches += len(batch)
                for binding in batch.rows:
                    for value in path_fn(binding):
                        if isinstance(value, StoredRecord):
                            head = value.oid
                        elif isinstance(value, Oid):
                            head = value
                        else:
                            continue
                        metrics.index_lookups += 1
                        metrics.index_page_reads += per_lookup
                        for path_tuple in index.forward(head):
                            merged = dict(binding)
                            for position, out_var in enumerate(node.out_vars):
                                oid = path_tuple[position + 1]
                                # Only fetch objects somebody consumes; the
                                # others stay as oids (dereferenced on demand
                                # if a predicate surprises us) — the whole
                                # point of a path index is skipping the
                                # intermediate objects ([MS86]).
                                if out_var in consumed_vars:
                                    merged[out_var] = fetch(oid)
                                else:
                                    merged[out_var] = oid
                            rows.append(merged)
                            if len(rows) >= batch_size:
                                produced += len(rows)
                                metrics.batches += 1
                                yield Batch(rows, node_id)
                                rows = []
            if rows:
                produced += len(rows)
                metrics.batches += 1
                yield Batch(rows, node_id)
        finally:
            metrics.add_tuples("pij", node_id, produced)

    def _nested_loop_batches(
        self, node: EJ, delta_env: Dict[str, List[StoredRecord]]
    ) -> Iterator[Batch]:
        """Nested-loop join: the inner operand is honestly re-scanned
        for every outer *binding* — not per outer batch — re-charging
        its I/O exactly as the EJ cost formula of Figure 5 prices it
        (rescanning per batch would make measured I/O depend on the
        batch size, which the parity contract forbids)."""
        evaluator = self._evaluator
        assert evaluator is not None
        node_id = self._node_ids.get(id(node))
        predicate = evaluator.compile_predicate(node.predicate)
        batch_size = self.batch_size
        metrics = self.metrics
        produced = 0
        rows: List[Binding] = []
        try:
            for left_batch in self.iterate_batches(node.left, delta_env):
                for left_binding in left_batch.rows:
                    for right_batch in self.iterate_batches(
                        node.right, delta_env
                    ):
                        for right_binding in right_batch.rows:
                            merged = dict(left_binding)
                            merged.update(right_binding)
                            if predicate(merged):
                                rows.append(merged)
                                if len(rows) >= batch_size:
                                    produced += len(rows)
                                    metrics.batches += 1
                                    yield Batch(rows, node_id)
                                    rows = []
            if rows:
                produced += len(rows)
                metrics.batches += 1
                yield Batch(rows, node_id)
        finally:
            metrics.add_tuples("ej", node_id, produced)

    def _index_join_batches(
        self, node: EJ, delta_env: Dict[str, List[StoredRecord]]
    ) -> Iterator[Batch]:
        evaluator = self._evaluator
        assert evaluator is not None
        node_id = self._node_ids.get(id(node))
        leaf, residual_wrap = self._index_join_inner(node.right)
        equality = self._index_join_key(node, leaf)
        if equality is None:
            raise ExecutionError(
                "index_join requires an equality conjunct on an indexed "
                "attribute of the inner entity"
            )
        outer_expr, attribute = equality
        index = self.physical.selection_index(leaf.entity, attribute)
        assert index is not None
        key_fn = evaluator.compile_expr(outer_expr)
        residual_fn = (
            evaluator.compile_predicate(residual_wrap)
            if residual_wrap is not None
            else None
        )
        predicate = evaluator.compile_predicate(node.predicate)
        fetch = self.store.fetch
        inner_var = leaf.var
        batch_size = self.batch_size
        metrics = self.metrics
        produced = 0
        rows: List[Binding] = []
        try:
            for left_batch in self.iterate_batches(node.left, delta_env):
                for left_binding in left_batch.rows:
                    for key in key_fn(left_binding):
                        metrics.index_lookups += 1
                        metrics.index_page_reads += index.nblevels
                        for oid in index.lookup(normalize_value(key)):
                            record = fetch(oid)
                            merged = dict(left_binding)
                            merged[inner_var] = record
                            if residual_fn is not None and not residual_fn(
                                merged
                            ):
                                continue
                            if predicate(merged):
                                rows.append(merged)
                                if len(rows) >= batch_size:
                                    produced += len(rows)
                                    metrics.batches += 1
                                    yield Batch(rows, node_id)
                                    rows = []
            if rows:
                produced += len(rows)
                metrics.batches += 1
                yield Batch(rows, node_id)
        finally:
            metrics.add_tuples("ej", node_id, produced)

    def _index_join_inner(self, right: PlanNode):
        """The inner entity leaf and any residual selection around it."""
        if isinstance(right, EntityLeaf):
            return right, None
        if isinstance(right, Sel) and isinstance(right.child, EntityLeaf):
            return right.child, right.predicate
        raise ExecutionError(
            "index_join inner operand must be an entity (optionally under "
            "a selection)"
        )

    def _index_join_key(self, node: EJ, leaf: EntityLeaf):
        """Find ``outer_expr = leaf.attr`` with an index on (entity, attr)."""
        for conjunct in conjuncts(node.predicate):
            if not isinstance(conjunct, Comparison) or conjunct.op != "=":
                continue
            for inner, outer in (
                (conjunct.right, conjunct.left),
                (conjunct.left, conjunct.right),
            ):
                if (
                    isinstance(inner, PathRef)
                    and inner.var == leaf.var
                    and len(inner.attrs) == 1
                    and not (outer.variables() & {leaf.var})
                    and self.physical.has_selection_index(
                        leaf.entity, inner.attrs[0]
                    )
                ):
                    return outer, inner.attrs[0]
        return None


class _ColumnEmitter:
    """Accumulates join output across input batches and slices it into
    ``batch_size`` emissions — the same greedy chunk boundaries the
    row-path accumulator produces (every full chunk as soon as it is
    available, one remainder at the end), so ``metrics.batches`` parity
    across layouts holds.  Chunks accumulate column-wise; if the output
    schema ever changes mid-stream (heterogeneous union branches) the
    pending columns are materialized once and accumulation continues
    row-wise — correctness over speed for that rare shape."""

    __slots__ = ("batch_size", "node_id", "columns", "rows", "count")

    def __init__(self, batch_size: int, node_id: Optional[str]) -> None:
        self.batch_size = batch_size
        self.node_id = node_id
        self.columns: Optional[Dict[str, list]] = None
        self.rows: Optional[List[Binding]] = None
        self.count = 0

    def add(
        self, columns: Dict[str, list], length: int
    ) -> Iterator[Batch]:
        """Append one chunk of output columns (owned by the emitter
        afterwards); yields every full batch the chunk completes."""
        if self.rows is not None:
            self.rows.extend(Batch.from_columns(columns, None, length).rows)
        elif self.columns is None:
            self.columns = columns
        elif list(self.columns) == list(columns):
            for name, column in columns.items():
                self.columns[name].extend(column)
        else:
            self._to_rows()
            self.rows.extend(Batch.from_columns(columns, None, length).rows)
        self.count += length
        while self.count >= self.batch_size:
            yield self._slice(self.batch_size)

    def flush(self) -> Optional[Batch]:
        """The final partial batch (None when nothing is pending)."""
        if self.count:
            return self._slice(self.count)
        return None

    def _slice(self, size: int) -> Batch:
        self.count -= size
        if self.rows is not None:
            head, self.rows = self.rows[:size], self.rows[size:]
            return Batch(head, self.node_id)
        columns = self.columns
        head = {name: column[:size] for name, column in columns.items()}
        self.columns = {
            name: column[size:] for name, column in columns.items()
        }
        return Batch.from_columns(head, self.node_id, size)

    def _to_rows(self) -> None:
        self.rows = list(
            Batch.from_columns(self.columns, None, self.count).rows
        )
        self.columns = None
