"""Reference evaluator: ground-truth semantics for query graphs.

Evaluates a query graph *directly at the conceptual level* — nested
loops over the incoming arcs, tree-label enumeration for variable
bindings, naive fixpoint for recursive names — using unmetered store
access.  It is deliberately simple and obviously correct; the test
suite uses it to prove that every plan the optimizer emits (before or
after any transformation) computes the same answer as the query it came
from.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import ExecutionError
from repro.engine.eval_expr import (
    Binding,
    ExpressionEvaluator,
    canonical_row,
    normalize_value,
)
from repro.engine.metrics import RuntimeMetrics
from repro.physical.schema import PhysicalSchema
from repro.physical.storage import Oid, StoredRecord
from repro.querygraph.graph import (
    Arc,
    FixNode,
    GraphNode,
    QueryGraph,
    SPJNode,
    UnionNode,
)
from repro.querygraph.tree_labels import TreeLabel

__all__ = ["ReferenceEvaluator"]

MAX_NAIVE_ROUNDS = 512


class ReferenceEvaluator:
    """Evaluates query graphs naively against the store."""

    def __init__(self, physical: PhysicalSchema) -> None:
        self.physical = physical
        self.store = physical.store
        self.metrics = RuntimeMetrics()
        self._evaluator = ExpressionEvaluator(
            self.store, self.metrics, self._resolve_method, charged=False
        )

    def _resolve_method(self, entity: str, attribute: str):
        if self.physical.catalog is None or not self.physical.has_entity(entity):
            return None
        conceptual = self.physical.entity(entity).conceptual_name
        if conceptual is None or conceptual not in self.physical.catalog:
            return None
        method = self.physical.catalog.method(conceptual, attribute)
        if method is None:
            return None
        return (method.compute, method.eval_weight)

    # -- public API -----------------------------------------------------------

    def evaluate(self, graph: QueryGraph) -> List[Binding]:
        """All answer tuples of the graph (reference values normalized
        to oids)."""
        env = self._evaluate_all(graph)
        return env[graph.answer]

    def answer_set(self, graph: QueryGraph) -> frozenset:
        """Canonical answer set of the graph (ground truth)."""
        return frozenset(canonical_row(row) for row in self.evaluate(graph))

    # -- graph evaluation ---------------------------------------------------------

    def _evaluate_all(self, graph: QueryGraph) -> Dict[str, List[Binding]]:
        env: Dict[str, List[Binding]] = {}
        order = graph.stratification_order()
        for name in order:
            if name in env:
                continue
            stratum = self._stratum_of(graph, name, order)
            self._evaluate_stratum(graph, stratum, env)
        return env

    def _stratum_of(
        self, graph: QueryGraph, name: str, order: Sequence[str]
    ) -> List[str]:
        """The mutually recursive group containing ``name``."""
        group = [name]
        for other in order:
            if other == name or other in group:
                continue
            if name in graph.depends_on(other) and other in graph.depends_on(name):
                group.append(other)
        return group

    def _evaluate_stratum(
        self,
        graph: QueryGraph,
        stratum: List[str],
        env: Dict[str, List[Binding]],
    ) -> None:
        recursive = any(graph.is_recursive_name(name) for name in stratum)
        for name in stratum:
            env[name] = []
        if not recursive:
            for name in stratum:
                rows: List[Binding] = []
                for produced_rule in graph.producers_of(name):
                    rows.extend(self._eval_node(produced_rule.node, env))
                env[name] = _dedup(rows)
            return
        # Naive fixpoint over the whole stratum.
        seen: Dict[str, Set[tuple]] = {name: set() for name in stratum}
        for _round in range(MAX_NAIVE_ROUNDS):
            changed = False
            for name in stratum:
                fresh: List[Binding] = []
                for produced_rule in graph.producers_of(name):
                    fresh.extend(self._eval_node(produced_rule.node, env))
                for row in fresh:
                    key = canonical_row(row)
                    if key not in seen[name]:
                        seen[name].add(key)
                        env[name].append(row)
                        changed = True
            if not changed:
                return
        raise ExecutionError(
            f"naive fixpoint over {stratum} did not converge within "
            f"{MAX_NAIVE_ROUNDS} rounds"
        )

    def _eval_node(
        self, node: GraphNode, env: Dict[str, List[Binding]]
    ) -> List[Binding]:
        if isinstance(node, SPJNode):
            return list(self._eval_spj(node, env))
        if isinstance(node, UnionNode):
            rows: List[Binding] = []
            for part in node.parts:
                rows.extend(self._eval_node(part, env))
            return rows
        if isinstance(node, FixNode):
            # The rewrite step wraps recursion; naive evaluation handles
            # the recursion itself, so evaluate the body.
            return self._eval_node(node.body, env)
        raise ExecutionError(f"unknown graph node {type(node).__name__}")

    # -- SPJ evaluation ----------------------------------------------------------------

    def _eval_spj(
        self, node: SPJNode, env: Dict[str, List[Binding]]
    ) -> Iterator[Binding]:
        for binding in self._bind_arcs(node.inputs, 0, {}, env):
            if not self._evaluator.holds(binding, node.predicate):
                continue
            row: Binding = {}
            suppressed = False
            for field in node.output.fields:
                values = self._evaluator.expr_values(binding, field.expr)
                if not values:
                    # Path semantics: traversing a null reference
                    # yields no value, so the tuple is suppressed.
                    suppressed = True
                    break
                if len(values) > 1:
                    raise ExecutionError(
                        f"output field {field.name!r} is multivalued"
                    )
                row[field.name] = normalize_value(values[0])
            if not suppressed:
                yield row

    def _bind_arcs(
        self,
        arcs: Sequence[Arc],
        position: int,
        binding: Binding,
        env: Dict[str, List[Binding]],
    ) -> Iterator[Binding]:
        if position == len(arcs):
            yield dict(binding)
            return
        arc = arcs[position]
        for instance in self._instances_of(arc.name, env):
            for assignment in self._bind_tree(instance, arc.tree):
                merged = dict(binding)
                merged.update(assignment)
                yield from self._bind_arcs(arcs, position + 1, merged, env)

    def _instances_of(
        self, name: str, env: Dict[str, List[Binding]]
    ) -> Iterator[object]:
        if name in env:
            yield from env[name]
            return
        info = self.physical.primary_entity(name)
        for record in self.store.extent(info.name).records:
            yield record

    # -- tree-label enumeration --------------------------------------------------------

    def _bind_tree(self, value: object, tree: TreeLabel) -> Iterator[Binding]:
        """All variable assignments of a tree label over one instance."""
        partials: List[Binding] = [{}]
        if tree.variable is not None:
            partials = [{tree.variable: value}]
        for name, child in tree.children:
            expansions: List[Binding] = []
            if name is not None:
                for attr_value in self._attribute_values(value, name):
                    for child_binding in self._bind_tree(attr_value, child):
                        expansions.append(child_binding)
            else:
                for element in self._elements(value):
                    for child_binding in self._bind_tree(element, child):
                        expansions.append(child_binding)
            partials = [
                {**existing, **expansion}
                for existing in partials
                for expansion in expansions
            ]
            if not partials:
                return
        yield from partials

    def _attribute_values(self, value: object, attribute: str) -> List[object]:
        if isinstance(value, Oid):
            value = self.store.peek(value)
        if isinstance(value, StoredRecord):
            if attribute in value.values:
                raw = value.values[attribute]
            else:
                resolved = self._resolve_method(value.entity, attribute)
                if resolved is None:
                    raise ExecutionError(
                        f"{value.entity!r} has no attribute {attribute!r}"
                    )
                compute, _weight = resolved
                raw = compute(value.values)
        elif isinstance(value, dict):
            raw = value.get(attribute)
        else:
            raise ExecutionError(
                f"cannot access {attribute!r} on atomic value {value!r}"
            )
        if raw is None:
            return []
        return [raw]

    def _elements(self, value: object) -> List[object]:
        if value is None:
            return []
        if isinstance(value, (tuple, list)):
            return [self._maybe_deref(v) for v in value]
        return [self._maybe_deref(value)]

    def _maybe_deref(self, value: object) -> object:
        if isinstance(value, Oid):
            return self.store.peek(value)
        return value


def _dedup(rows: List[Binding]) -> List[Binding]:
    seen: Set[tuple] = set()
    unique: List[Binding] = []
    for row in rows:
        key = canonical_row(row)
        if key not in seen:
            seen.add(key)
            unique.append(row)
    return unique
