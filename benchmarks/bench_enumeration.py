"""CLAIM-ENUM — memoized enumeration vs. the randomized strategies.

The transformation-based enumerator (``--strategy enum``) explores the
same move graph as II/SA/2PO but deterministically, costing each
canonical subplan once (memo table) and pruning against the incumbent.
The claim this benchmark gates, per fig7 configuration (fig3 recursive
query and the join-push query, under the serial / parallel-4 /
shards-4 cost variants):

  * **optimality** — the enum plan costs no more than the best plan
    any randomized strategy finds on the same configuration, and
  * **comparable optimization time** — enum finishes within 3x the
    median II optimization time.

Both claims are re-checked from the committed
``BENCH_enumeration.json`` by ``check_regression.py``, so a strategy
or cost-model change that silently degrades either fails the
bench-regression gate.
"""

import statistics
import time

import pytest

from repro.core.optimizer import Optimizer, OptimizerConfig
from repro.cost import CostParameters, DetailedCostModel
from repro.workloads import (
    MusicConfig,
    fig3_query,
    generate_music_database,
    join_push_query,
)

QUERIES = {
    "fig3": fig3_query,
    "join_push": join_push_query,
}

CONFIGS = {
    "serial": {},
    "parallel4": {"parallelism": 4},
    "shards4": {"shards": 4},
}

RANDOMIZED = ("ii", "sa", "2po")

#: Acceptance bound: enum must finish within this multiple of the
#: median II optimization time.
REQUIRED_TIME_FACTOR = 3.0

#: Randomized-strategy repeats per configuration (median/best over
#: these — II/SA/2PO are seeded but this keeps the timing stable).
REPEATS = 5


def build_db():
    db = generate_music_database(
        MusicConfig(
            lineages=8,
            generations=8,
            works_per_composer=3,
            selective_fraction=0.15,
            seed=6,
        )
    )
    db.build_paper_indexes()
    return db


@pytest.fixture(scope="module")
def setup():
    return build_db()


def _model(db, overrides):
    params = CostParameters()
    for name, value in overrides.items():
        setattr(params, name, value)
    return DetailedCostModel(db.physical, params)


def _timed_optimize(db, make_query, strategy, model):
    optimizer = Optimizer(
        db.physical, model, OptimizerConfig(strategy=strategy)
    )
    start = time.perf_counter()
    result = optimizer.optimize(make_query())
    elapsed_ms = (time.perf_counter() - start) * 1e3
    return result, elapsed_ms


def test_enumeration_vs_randomized(setup, benchmark, report, table):
    db = setup

    measurements = []
    for query_name, make_query in sorted(QUERIES.items()):
        for config_name, overrides in sorted(CONFIGS.items()):
            model = _model(db, overrides)

            enum_result, enum_ms = _timed_optimize(
                db, make_query, "enum", model
            )
            stats = enum_result.strategy_stats or {}

            randomized = {}
            for strategy in RANDOMIZED:
                costs, times = [], []
                for _ in range(REPEATS):
                    result, elapsed = _timed_optimize(
                        db, make_query, strategy, model
                    )
                    costs.append(result.cost)
                    times.append(elapsed)
                randomized[strategy] = {
                    "best_cost": min(costs),
                    "median_ms": statistics.median(times),
                }

            best_randomized = min(
                row["best_cost"] for row in randomized.values()
            )
            ii_median_ms = randomized["ii"]["median_ms"]
            time_budget_factor = (
                REQUIRED_TIME_FACTOR * ii_median_ms / enum_ms
                if enum_ms > 0
                else float("inf")
            )
            # The tentpole claims, asserted here and re-gated from the
            # committed JSON by check_regression.py.
            assert enum_result.cost <= best_randomized * (1 + 1e-9), (
                f"enum cost {enum_result.cost} worse than best "
                f"randomized {best_randomized} on "
                f"{query_name}/{config_name}"
            )
            assert time_budget_factor >= 1.0, (
                f"enum took {enum_ms:.1f}ms on {query_name}/"
                f"{config_name}, over {REQUIRED_TIME_FACTOR}x the "
                f"median II time {ii_median_ms:.1f}ms"
            )

            measurements.append(
                {
                    "query": query_name,
                    "config": config_name,
                    "enum_cost": round(enum_result.cost, 4),
                    "best_randomized_cost": round(best_randomized, 4),
                    "cost_advantage": round(
                        best_randomized / enum_result.cost, 4
                    ),
                    "enum_ms": round(enum_ms, 3),
                    "ii_median_ms": round(ii_median_ms, 3),
                    "time_budget_factor": round(time_budget_factor, 3),
                    "subplans_memoized": stats.get("subplans_memoized"),
                    "memo_hits": stats.get("memo_hits"),
                    "pruned_branches": stats.get("pruned_branches"),
                    "candidates_costed": stats.get("candidates_costed"),
                    "randomized": {
                        name: round(row["best_cost"], 4)
                        for name, row in sorted(randomized.items())
                    },
                }
            )

    # pytest-benchmark row: the enumerator's end-to-end optimization
    # time on the headline fig3/serial configuration.
    serial_model = _model(db, {})

    def optimize_enum():
        return _timed_optimize(db, fig3_query, "enum", serial_model)[0]

    benchmark(optimize_enum)

    report(
        "enumeration",
        table(
            [
                "query",
                "config",
                "enum cost",
                "best II/SA/2PO",
                "enum ms",
                "II median ms",
                "memo (size/hits)",
            ],
            [
                [
                    m["query"],
                    m["config"],
                    f"{m['enum_cost']:.4f}",
                    f"{m['best_randomized_cost']:.4f}",
                    f"{m['enum_ms']:.1f}",
                    f"{m['ii_median_ms']:.1f}",
                    f"{m['subplans_memoized']}/{m['memo_hits']}",
                ]
                for m in measurements
            ],
        ),
        data={
            "required_time_factor": REQUIRED_TIME_FACTOR,
            "repeats": REPEATS,
            "measurements": measurements,
        },
    )
