"""CLAIM-JOINPUSH — pushing a *join* through recursion (Section 4.5).

"Our cost-based approach enables us to investigate solutions where
join is pushed through recursion, not proposed before.  A join may be
very selective, making it worth to push it through recursion. [...]
For example, a query that retrieves the composers that were influenced
by the masters of Bach."

Two variants of the join query are swept over growing databases:

* the *selective* join (``Composer.name = 'Bach'`` restricts the inner
  operand to one object) — pushing it restricts the whole fixpoint to
  Bach-master tuples and should win by a growing factor;
* an *unselective* variant (the name filter dropped, every composer
  joins) — pushing duplicates a full-extent join into every semi-naive
  iteration and should lose.

The cost-controlled optimizer must pick the winner on both variants;
the deductive heuristic pushes both and gets the second one wrong.
"""

import pytest

from repro.core import (
    cost_controlled_optimizer,
    deductive_optimizer,
    naive_optimizer,
)
from repro.cost import CostParameters, DetailedCostModel
from repro.engine import Engine, ReferenceEvaluator
from repro.querygraph.builder import and_, arc, const, eq, out, path, query, rule, spj
from repro.querygraph.graph import QueryGraph
from repro.workloads import MusicConfig, generate_music_database, join_push_query
from repro.workloads.queries import influencer_rules

SIZES = [4, 8, 14]


def unselective_join_query() -> QueryGraph:
    """Like the Section 4.5 query, but joining on *every* master.

    The projection avoids dereferencing ``disciple`` so the join sits
    directly above the fixpoint — the shape where pushing is possible
    (and, here, harmful)."""
    p1, p2 = influencer_rules()
    p3 = rule(
        "Answer",
        spj(
            [arc("Influencer", i="."), arc("Composer", c=".")],
            where=eq(path("i", "master"), path("c", "master")),
            select=out(disciple=path("i", "disciple"), gen=path("i", "gen")),
        ),
    )
    return query(p1, p2, p3)


def build_db(lineages):
    db = generate_music_database(
        MusicConfig(
            lineages=lineages,
            generations=8,
            works_per_composer=2,
            buffer_pages=4,
            seed=31,
        )
    )
    db.build_paper_indexes()
    return db


def run_cold(db, plan):
    db.store.buffer.clear()
    return Engine(db.physical).execute(plan)


@pytest.fixture(scope="module")
def sweep():
    points = []
    for lineages in SIZES:
        db = build_db(lineages)
        model = DetailedCostModel(db.physical, CostParameters(buffer_pages=4))
        for variant, graph in (
            ("selective", join_push_query()),
            ("unselective", unselective_join_query()),
        ):
            unpushed = naive_optimizer(db.physical, model).optimize(graph)
            pushed = deductive_optimizer(db.physical, model).optimize(graph)
            chosen = cost_controlled_optimizer(db.physical, model).optimize(graph)
            run_unpushed = run_cold(db, unpushed.plan)
            run_pushed = run_cold(db, pushed.plan)
            run_chosen = run_cold(db, chosen.plan)
            want = ReferenceEvaluator(db.physical).answer_set(graph)
            assert run_unpushed.answer_set() == want
            assert run_pushed.answer_set() == want
            assert run_chosen.answer_set() == want
            points.append(
                {
                    "variant": variant,
                    "lineages": lineages,
                    "meas_unpushed": run_unpushed.metrics.measured_cost(),
                    "meas_pushed": run_pushed.metrics.measured_cost(),
                    "meas_chosen": run_chosen.metrics.measured_cost(),
                    "chose_push": chosen.chose_push(),
                }
            )
    return points


def test_join_push_report(sweep, benchmark, report, table):
    def summarize():
        rows = []
        for point in sweep:
            winner = (
                "push"
                if point["meas_pushed"] < point["meas_unpushed"]
                else "no-push"
            )
            rows.append(
                [
                    point["variant"],
                    point["lineages"],
                    f"{point['meas_unpushed']:.0f}",
                    f"{point['meas_pushed']:.0f}",
                    winner,
                    "push" if point["chose_push"] else "no-push",
                    f"{point['meas_chosen']:.0f}",
                ]
            )
        return rows

    rows = benchmark(summarize)
    report(
        "claim_join_push",
        table(
            [
                "variant",
                "lineages",
                "meas no-push",
                "meas push",
                "measured winner",
                "optimizer chose",
                "optimizer meas.",
            ],
            rows,
        ),
    )


def test_selective_join_push_wins_and_grows(sweep, benchmark):
    def ratios():
        return [
            point["meas_unpushed"] / max(point["meas_pushed"], 1e-9)
            for point in sweep
            if point["variant"] == "selective"
        ]

    speedups = benchmark(ratios)
    assert all(ratio > 1.0 for ratio in speedups), (
        f"the selective join push must win at every size ({speedups})"
    )
    assert speedups[-1] > speedups[0], (
        "the payoff should grow with database size"
    )


def test_unselective_join_push_loses(sweep, benchmark):
    def losses():
        return [
            point["meas_pushed"] / max(point["meas_unpushed"], 1e-9)
            for point in sweep
            if point["variant"] == "unselective"
        ]

    ratios = benchmark(losses)
    assert ratios[-1] > 1.0, "pushing an unselective join must lose at scale"


def test_optimizer_never_worse_than_either_heuristic(sweep, benchmark):
    def check():
        bad = []
        for point in sweep:
            best = min(point["meas_unpushed"], point["meas_pushed"])
            if point["meas_chosen"] > best * 1.25:
                bad.append(point)
        return bad

    offenders = benchmark(check)
    assert not offenders, f"cost-controlled choice far off best: {offenders}"
