"""Shared helpers for the reproduction benchmarks.

Each benchmark regenerates one of the paper's figures/claims (see the
experiment index in DESIGN.md).  Tables are written to
``benchmarks/results/<name>.txt`` (and echoed to stdout) so the
regenerated artifacts survive the pytest run; the pytest-benchmark
table itself carries the timing comparisons.  Passing structured rows
via ``data=`` additionally emits
``benchmarks/results/BENCH_<name>.json`` — the machine-readable twin
of the text table, for dashboards and regression tooling that should
not scrape fixed-width text.
"""

import io
import json
import os
from typing import List, Optional, Sequence

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_json(name: str, payload) -> str:
    """Persist a machine-readable benchmark result."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"BENCH_{name}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    return path


def write_report(name: str, text: str, data=None) -> str:
    """Persist a regenerated table and echo it; with ``data``, also
    write the ``BENCH_<name>.json`` machine-readable twin."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text)
    if data is not None:
        write_json(name, data)
    print(f"\n===== {name} =====")
    print(text)
    return path


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a fixed-width text table."""
    columns = [list(map(str, column)) for column in zip(headers, *rows)]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []

    def render(cells):
        return "  ".join(
            str(cell).ljust(width) for cell, width in zip(cells, widths)
        )

    lines.append(render(headers))
    lines.append(render(["-" * width for width in widths]))
    for row in rows:
        lines.append(render(row))
    return "\n".join(lines) + "\n"


@pytest.fixture(scope="session")
def report():
    return write_report


@pytest.fixture(scope="session")
def json_report():
    return write_json


@pytest.fixture(scope="session")
def table():
    return format_table
