"""Shared helpers for the reproduction benchmarks.

Each benchmark regenerates one of the paper's figures/claims (see the
experiment index in DESIGN.md).  Tables are written to
``benchmarks/results/<name>.txt`` (and echoed to stdout) so the
regenerated artifacts survive the pytest run; the pytest-benchmark
table itself carries the timing comparisons.
"""

import io
import os
from typing import List, Sequence

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_report(name: str, text: str) -> str:
    """Persist a regenerated table and echo it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text)
    print(f"\n===== {name} =====")
    print(text)
    return path


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a fixed-width text table."""
    columns = [list(map(str, column)) for column in zip(headers, *rows)]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []

    def render(cells):
        return "  ".join(
            str(cell).ljust(width) for cell, width in zip(cells, widths)
        )

    lines.append(render(headers))
    lines.append(render(["-" * width for width in widths]))
    for row in rows:
        lines.append(render(row))
    return "\n".join(lines) + "\n"


@pytest.fixture(scope="session")
def report():
    return write_report


@pytest.fixture(scope="session")
def table():
    return format_table
