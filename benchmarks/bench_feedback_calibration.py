"""FEEDBACK-CALIBRATION — closing the cost-model loop from production.

The paper calibrates its cost model offline against micro-benchmarks
(Section 4.6 / our ``bench_calibration``).  The query service records
estimated vs. measured cost *per executed query and per operator*, so
the same NNLS fit can run online, from production actuals.  This
benchmark demonstrates the full loop on two workloads (the music
lineage database and the parts bill-of-materials):

1. serve a skewed workload and record the mean per-operator
   misestimate (q-error of estimated vs. measured operator cost);
2. ``recalibrate(apply=True)`` — refit the unit weights from the
   accumulated telemetry and hot-swap them into the serving path;
3. serve the workload again: the misestimate must strictly shrink.

It also drives the plan-regression detector end to end: a deliberately
worse plan (no push into the recursion) is swapped into the cache, the
detector flags it after ``regression_min_runs`` executions — both
fingerprints land in the event — and pinning reverts to the prior
plan.  Finally, the feedback-off throughput guard: with
``feedback_enabled=False`` the serving path must stay within a few
percent of the feedback-on path (and of the pre-feedback baseline).

``results/BENCH_feedback_calibration.json`` carries all of it for the
CI regression gate (``benchmarks/check_regression.py``).
"""

import time

import pytest

from repro.core.baselines import naive_optimizer
from repro.lang import compile_text
from repro.service import QueryService, ServiceConfig
from repro.workloads import (
    MusicConfig,
    PartsConfig,
    generate_music_database,
    generate_parts_database,
)

MUSIC_PUSHABLE = """
view Influencer as
  select [master: x.master, disciple: x, gen: 1] from x in Composer
  union
  select [master: i.master, disciple: x, gen: i.gen + 1]
  from i in Influencer, x in Composer where i.disciple = x.master;
select [name: i.disciple.name, gen: i.gen]
from i in Influencer
where i.master.works.instruments.name = "harpsichord" and i.gen >= 3;
"""

MUSIC_RECURSIVE = """
view Influencer as
  select [master: x.master, disciple: x, gen: 1] from x in Composer
  union
  select [master: i.master, disciple: x, gen: i.gen + 1]
  from i in Influencer, x in Composer where i.disciple = x.master;
select [name: i.disciple.name, gen: i.gen]
from i in Influencer
where i.gen >= 4;
"""

MUSIC_SCAN = (
    "select [name: x.name] from x in Composer where x.birthyear >= 1700;"
)
MUSIC_LOOKUP = (
    'select [name: x.name] from x in Composer where x.name = "Bach";'
)

PARTS_RECURSIVE = """
view Contained as
  select [root: p, part: s, depth: 1]
  from p in Part, s in Part where p.subparts = s
  union
  select [root: c.root, part: s, depth: c.depth + 1]
  from c in Contained, s in Part where c.part.subparts = s;
select [name: c.part.pname, depth: c.depth]
from c in Contained
where c.root.pname = "assembly_root_0" and c.depth >= 2;
"""

PARTS_SCAN = "select [name: p.pname] from p in Part where p.mass >= 5.0;"


def build_music():
    db = generate_music_database(
        MusicConfig(lineages=4, generations=6, works_per_composer=2, seed=92)
    )
    db.build_paper_indexes()
    return db


def build_music_skewed():
    """The calibration workload's deployment: data outgrew the buffer
    pool (scans really hit disk, as the model assumes) and the paper
    indexes were never built.  Here the default unit costs — not the
    cardinality model — dominate the misestimate, which is exactly the
    error online recalibration can remove."""
    return generate_music_database(
        MusicConfig(
            lineages=16,
            generations=8,
            works_per_composer=3,
            buffer_pages=4,
            seed=92,
        )
    )


def build_parts():
    return generate_parts_database(
        PartsConfig(assemblies=3, depth=4, fanout=3, seed=7)
    )


WORKLOADS = [
    (
        "music",
        build_music_skewed,
        [MUSIC_RECURSIVE, MUSIC_SCAN, MUSIC_LOOKUP],
    ),
    ("parts", build_parts, [PARTS_RECURSIVE, PARTS_SCAN]),
]

ROUNDS = 6


def feedback_config():
    return ServiceConfig(
        # Small ring: the post-recalibration rounds fully replace the
        # pre-recalibration observations, so before/after are clean.
        history_window=ROUNDS,
        recalibrate_min_samples=6,
        profile_sample_every=1,
    )


def mean_misestimates(service):
    summary = service.feedback.misestimate_by_query()
    cost = [
        entry["cost_misestimate"]
        for entry in summary.values()
        if entry["cost_misestimate"] is not None
    ]
    ops = [
        entry["operator_misestimate"]
        for entry in summary.values()
        if entry["operator_misestimate"] is not None
    ]
    return (
        sum(cost) / len(cost) if cost else None,
        sum(ops) / len(ops) if ops else None,
    )


@pytest.fixture(scope="module")
def calibration_rows():
    rows = []
    for name, build, queries in WORKLOADS:
        service = QueryService(build(), feedback_config())
        try:
            for _round in range(ROUNDS):
                for text in queries:
                    service.run_query(text)
            before_cost, before_ops = mean_misestimates(service)
            fit = service.recalibrate(apply=True)
            for _round in range(ROUNDS):
                for text in queries:
                    service.run_query(text)
            after_cost, after_ops = mean_misestimates(service)
        finally:
            service.close()
        rows.append(
            {
                "workload": name,
                "queries": len(queries),
                "samples": fit["samples"],
                "weights": fit["weights"],
                "before_cost_q": round(before_cost, 4),
                "after_cost_q": round(after_cost, 4),
                "before_operator_q": round(before_ops, 4),
                "after_operator_q": round(after_ops, 4),
                "operator_improvement": round(before_ops / after_ops, 4),
                "cost_improvement": round(before_cost / after_cost, 4),
            }
        )
    return rows


@pytest.fixture(scope="module")
def regression_row():
    service = QueryService(
        build_music(),
        ServiceConfig(
            history_window=16,
            regression_min_runs=3,
            regression_ratio=0.01,  # deterministic: flag any new median
        ),
    )
    try:
        for _run in range(4):
            service.run_query(MUSIC_PUSHABLE)
        with service._store_lock:
            key = service.cache.key_for(MUSIC_PUSHABLE, service.physical)
            old_entry = service.cache.entry(key)
            graph = compile_text(MUSIC_PUSHABLE, service.database.catalog)
            worse = naive_optimizer(service.physical).optimize(graph)
            new_entry = service.cache.store(
                key, worse.plan, worse.cost, service.physical
            )
            new_entry.fingerprint = service.feedback.register_plan(
                key[0], worse.plan, worse.cost
            )
            service.feedback.plan_changed(
                key[0],
                old_entry.plan,
                old_entry.cost,
                worse.plan,
                worse.cost,
                "cost_drift",
            )
        for _run in range(3):
            service.run_query(MUSIC_PUSHABLE)
        events = [
            event
            for event in service.feedback.store.events
            if event["event"] == "plan_regression"
        ]
        pinned = service.pin_query(MUSIC_PUSHABLE, revert=True)
        entry = service.cache.entry(key)
        return {
            "detected": len(events),
            "old_fingerprint": events[0]["old_fingerprint"],
            "new_fingerprint": events[0]["new_fingerprint"],
            "latency_ratio": events[0]["latency_ratio"],
            "reverted_by_pin": bool(
                pinned["reverted"]
                and entry.pinned
                and entry.fingerprint == events[0]["old_fingerprint"]
            ),
        }
    finally:
        service.close()


REQUESTS = 40
REPEATS = 5


def timed_round(service, text):
    started = time.perf_counter()
    for _ in range(REQUESTS):
        service.run_query(text)
    return time.perf_counter() - started


@pytest.fixture(scope="module")
def throughput_row():
    # Interleave the two modes round by round (best-of per mode) so a
    # scheduler hiccup or cache-warming drift penalises both equally
    # instead of whichever mode happened to run second.
    services = {
        label: QueryService(
            build_music(), ServiceConfig(feedback_enabled=enabled)
        )
        for label, enabled in (("enabled", True), ("disabled", False))
    }
    best = {label: None for label in services}
    try:
        for service in services.values():
            service.run_query(MUSIC_PUSHABLE)  # prime cache + allocator
        for _ in range(REPEATS):
            for label, service in services.items():
                elapsed = timed_round(service, MUSIC_PUSHABLE)
                if best[label] is None or elapsed < best[label]:
                    best[label] = elapsed
    finally:
        for service in services.values():
            service.close()
    qps = {label: REQUESTS / elapsed for label, elapsed in best.items()}
    return {
        "feedback_enabled_qps": round(qps["enabled"], 1),
        "feedback_disabled_qps": round(qps["disabled"], 1),
        "disabled_over_enabled": round(qps["disabled"] / qps["enabled"], 4),
    }


def test_feedback_calibration_report(
    calibration_rows, regression_row, throughput_row, report, table
):
    for row in calibration_rows:
        # The acceptance claim: the mean per-operator misestimate
        # strictly improves after online recalibration, per workload.
        assert row["after_operator_q"] < row["before_operator_q"], row
        assert row["after_cost_q"] < row["before_cost_q"], row
    assert regression_row["detected"] >= 1
    assert regression_row["reverted_by_pin"]
    assert regression_row["old_fingerprint"] != regression_row[
        "new_fingerprint"
    ]
    # Feedback bookkeeping must not tax the serving path measurably;
    # 0.90 leaves slack for scheduler noise (the recorded ratio in the
    # JSON is the actual guard the CI gate watches).
    assert throughput_row["disabled_over_enabled"] >= 0.90

    text = table(
        [
            "workload",
            "cost q before",
            "cost q after",
            "op q before",
            "op q after",
            "op improvement",
        ],
        [
            [
                row["workload"],
                f"{row['before_cost_q']:.3f}",
                f"{row['after_cost_q']:.3f}",
                f"{row['before_operator_q']:.3f}",
                f"{row['after_operator_q']:.3f}",
                f"{row['operator_improvement']:.2f}x",
            ]
            for row in calibration_rows
        ],
    )
    text += "\nregression: old={old} new={new} ratio={ratio}x pin={pin}\n".format(
        old=regression_row["old_fingerprint"],
        new=regression_row["new_fingerprint"],
        ratio=regression_row["latency_ratio"],
        pin="reverted" if regression_row["reverted_by_pin"] else "FAILED",
    )
    text += (
        "throughput guard: feedback off {off:.1f} qps / on {on:.1f} qps "
        "= {ratio:.3f}\n".format(
            off=throughput_row["feedback_disabled_qps"],
            on=throughput_row["feedback_enabled_qps"],
            ratio=throughput_row["disabled_over_enabled"],
        )
    )
    report(
        "feedback_calibration",
        text,
        data={
            "calibration": calibration_rows,
            "regression": regression_row,
            "throughput_guard": throughput_row,
        },
    )
