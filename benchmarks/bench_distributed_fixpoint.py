"""DISTRIBUTED-FIXPOINT — speedup of the scatter-gather semi-naive loop.

The distributed fixpoint (``repro.dist``) hash-partitions each round's
delta across shard workers, each a zero-copy replica of the store
behind its **own buffer pool**; a physical page miss sleeps outside
the pool lock, so misses on different shards overlap.  This benchmark
makes the paper's Figure 3 ``Influencer`` closure I/O-bound the same
way the parallel-fixpoint bench does — one record per page, a buffer
pool far smaller than the working set, a fixed per-miss device
latency — and runs the optimizer's own plan at shard widths 1, 2
and 4.

Width 1 is the serial engine (the shards knob bypasses the dist layer
entirely at 1), so the speedups compare the distributed rounds —
including their real line-JSON exchange legs, whose tuple/byte volume
is reported per width — against exact single-process execution.

Reported per width: wall time (best of N), speedup over serial, the
exchange volume, and the answer-set / tuple-count invariants
(identical across widths — the differential harness in ``tests/``
enforces this on randomized queries; the bench re-checks it on its own
workload).  The machine-readable twin
``results/BENCH_distributed_fixpoint.json`` carries ``speedup@4``,
which the regression gate holds to the >=1.5x claim.

The bench also re-runs width 4 with the full observability stack on —
stitched tracer, plan profiler, request id — and reports the obs-on /
obs-off throughput ratio (``obs_throughput_ratio``); the gate holds it
to >=0.95, the <5% overhead claim for distributed tracing.
"""

import time

from repro.core import cost_controlled_optimizer
from repro.dist import ShardCluster
from repro.engine import Engine
from repro.obs import PlanProfiler, Tracer
from repro.workloads import MusicConfig, generate_music_database
from repro.workloads.queries import fig3_query

WIDTHS = (1, 2, 4)

#: Best-of-N per shard width; discards scheduler noise.
REPEATS = 3

#: Simulated latency of one physical page miss — large relative to the
#: per-tuple CPU cost, so the fixpoint is I/O-bound and shard overlap
#: is what the bench measures (the honest regime for a GIL build).
IO_LATENCY = 0.0004

#: Far smaller than the working set (one record per page), so pointer
#: dereferences miss; every shard worker gets a pool of this size.
BUFFER_PAGES = 16

REQUIRED_SPEEDUP_AT_4 = 1.5

#: Observability on (tracer + profiler + request id) may cost at most
#: 5% of the obs-off throughput at width 4.
REQUIRED_OBS_RATIO = 0.95


def build_database():
    db = generate_music_database(
        MusicConfig(
            lineages=8,
            generations=8,
            works_per_composer=1,
            instruments=4,
            instruments_per_work=1,
            records_per_page=1,
            buffer_pages=BUFFER_PAGES,
            seed=1992,
        )
    )
    db.build_paper_indexes()
    db.physical.refresh_statistics()
    db.store.buffer.io_latency = IO_LATENCY
    return db


def run_once(db, plan, shards, cluster, observed=False):
    engine = Engine(
        db.physical,
        shards=shards,
        cluster=cluster if shards > 1 else None,
    )
    profiler = None
    if observed:
        engine.request_id = "bench-obs"
        engine.tracer = Tracer(trace_id="bench-obs")
        profiler = PlanProfiler()
    started = time.perf_counter()
    result = engine.execute(plan, profiler=profiler)
    elapsed = time.perf_counter() - started
    return elapsed, result


def test_distributed_fixpoint_speedup(report, table):
    db = build_database()
    plan = cost_controlled_optimizer(db.physical).optimize(fig3_query()).plan

    measurements = []
    answers = {}
    with ShardCluster(db.physical, max(WIDTHS)) as cluster:
        for width in WIDTHS:
            best = None
            for _ in range(REPEATS):
                elapsed, result = run_once(db, plan, width, cluster)
                if best is None or elapsed < best[0]:
                    best = (elapsed, result)
            answers[width] = best[1].answer_set()
            metrics = best[1].metrics
            measurements.append(
                {
                    "shards": width,
                    "elapsed_s": round(best[0], 4),
                    "rows": len(best[1].rows),
                    "total_tuples": metrics.total_tuples,
                    "fix_iterations": metrics.fix_iterations,
                    "exchange_rounds": metrics.exchange_rounds,
                    "exchange_tuples": metrics.exchange_tuples,
                    "exchange_bytes": metrics.exchange_bytes,
                }
            )

    # Same answers and same tuple counts at every width — the bench
    # must not claim speed for an engine that drops tuples.
    serial = measurements[0]
    for row, width in zip(measurements, WIDTHS):
        assert answers[width] == answers[1]
        assert row["total_tuples"] == serial["total_tuples"]
        assert row["fix_iterations"] == serial["fix_iterations"]

    # Width 4 again with observability on: full stitched trace, plan
    # profiler, request id.  Same answers, bounded overhead.
    obs_best = None
    with ShardCluster(db.physical, max(WIDTHS)) as cluster:
        for _ in range(REPEATS):
            elapsed, result = run_once(
                db, plan, max(WIDTHS), cluster, observed=True
            )
            if obs_best is None or elapsed < obs_best[0]:
                obs_best = (elapsed, result)
    assert obs_best[1].answer_set() == answers[1]

    by_width = {row["shards"]: row for row in measurements}
    obs_ratio = by_width[max(WIDTHS)]["elapsed_s"] / obs_best[0]
    speedups = {
        width: by_width[1]["elapsed_s"] / by_width[width]["elapsed_s"]
        for width in WIDTHS
    }
    for row in measurements:
        row["speedup"] = round(speedups[row["shards"]], 3)

    text = table(
        (
            "shards",
            "elapsed_s",
            "speedup",
            "rows",
            "total_tuples",
            "exchange_tuples",
            "exchange_bytes",
        ),
        [
            (
                row["shards"],
                f"{row['elapsed_s']:.4f}",
                f"{row['speedup']:.2f}x",
                row["rows"],
                row["total_tuples"],
                row["exchange_tuples"],
                row["exchange_bytes"],
            )
            for row in measurements
        ],
    )
    text += (
        f"\nobservability on @4: {obs_best[0]:.4f}s "
        f"(throughput ratio {obs_ratio:.3f}, floor {REQUIRED_OBS_RATIO})\n"
    )
    report(
        "distributed_fixpoint",
        text,
        data={
            "io_latency_s": IO_LATENCY,
            "buffer_pages": BUFFER_PAGES,
            "repeats": REPEATS,
            "measurements": measurements,
            "speedup@2": round(speedups[2], 3),
            "speedup@4": round(speedups[4], 3),
            "required_speedup@4": REQUIRED_SPEEDUP_AT_4,
            "obs_elapsed_s@4": round(obs_best[0], 4),
            "obs_throughput_ratio": round(obs_ratio, 3),
            "required_obs_ratio": REQUIRED_OBS_RATIO,
        },
    )

    assert speedups[4] >= REQUIRED_SPEEDUP_AT_4, (
        f"shards-4 speedup {speedups[4]:.2f}x fell below the "
        f"{REQUIRED_SPEEDUP_AT_4}x claim"
    )
    assert obs_ratio >= REQUIRED_OBS_RATIO, (
        f"observability-on throughput ratio {obs_ratio:.3f} fell below "
        f"the {REQUIRED_OBS_RATIO} floor (>5% tracing overhead)"
    )
