"""CLAIM-STRATEGY — cost-controlled optimization vs exhaustive search.

Section 4.1: exhaustive enumeration ([KZ88]) guarantees optimality
"but the optimization time may become unacceptably high"; the paper's
strategy reaches comparable plan quality while costing far fewer
plans, because it optimizes *subproblems* (one spj, one path) and only
transforms the final PT.

For queries of growing join count we compare, per strategy:

* the number of plans costed (the optimizer's work currency),
* wall-clock optimization time (the pytest-benchmark timings),
* the cost of the chosen plan (quality).
"""

import pytest

from repro.core import (
    Optimizer,
    OptimizerConfig,
    cost_controlled_optimizer,
    exhaustive_optimizer,
)
from repro.cost import DetailedCostModel
from repro.querygraph.builder import and_, arc, const, eq, out, path, query, rule, spj, var
from repro.querygraph.graph import QueryGraph
from repro.workloads import MusicConfig, fig3_query, generate_music_database


def chain_join_query(joins: int, dense: bool = False) -> QueryGraph:
    """A master-chain query with ``joins`` explicit joins:
    c1.master = c0, c2.master = c1, ..., anchored at Bach.

    ``dense=True`` adds skip-level comparison predicates so arcs become
    pairwise joinable — a richer join-order space, which is what makes
    exhaustive enumeration blow up."""
    from repro.querygraph.builder import ge

    arcs = [arc("Composer", **{f"c{i}": "."}) for i in range(joins + 1)]
    conjuncts = [eq(path("c0", "name"), const("Bach"))]
    for i in range(1, joins + 1):
        conjuncts.append(eq(path(f"c{i}", "master"), var(f"c{i-1}")))
    if dense:
        for i in range(2, joins + 1):
            conjuncts.append(
                ge(path(f"c{i}", "birthyear"), path(f"c{i-2}", "birthyear"))
            )
    node = spj(
        arcs,
        where=and_(*conjuncts),
        select=out(name=path(f"c{joins}", "name")),
    )
    return query(rule("Answer", node))


def build_db():
    db = generate_music_database(
        MusicConfig(lineages=8, generations=8, seed=41)
    )
    db.build_paper_indexes()
    return db


@pytest.fixture(scope="module")
def db():
    return build_db()


@pytest.fixture(scope="module")
def comparison(db):
    model = DetailedCostModel(db.physical)
    rows = []
    for label, graph in (
        ("join-3 (dense)", chain_join_query(3, dense=True)),
        ("join-4 (dense)", chain_join_query(4, dense=True)),
        ("fig3 (recursive)", fig3_query()),
    ):
        controlled = cost_controlled_optimizer(db.physical, model).optimize(graph)
        exhaustive = exhaustive_optimizer(
            db.physical, model, max_plans=800
        ).optimize(graph)
        rows.append((label, controlled, exhaustive))
    return rows


def test_strategy_report(comparison, benchmark, report, table):
    def summarize():
        out_rows = []
        for label, controlled, exhaustive in comparison:
            out_rows.append(
                [
                    label,
                    controlled.plans_costed,
                    exhaustive.plans_costed,
                    f"{controlled.cost:.1f}",
                    f"{exhaustive.cost:.1f}",
                    f"{controlled.elapsed_seconds * 1000:.0f}ms",
                    f"{exhaustive.elapsed_seconds * 1000:.0f}ms",
                ]
            )
        return out_rows

    rows = benchmark(summarize)
    report(
        "claim_strategy_time",
        table(
            [
                "query",
                "plans (controlled)",
                "plans (exhaustive)",
                "cost (controlled)",
                "cost (exhaustive)",
                "time (controlled)",
                "time (exhaustive)",
            ],
            rows,
        ),
        data={
            "comparisons": [
                {
                    "query": label,
                    "controlled": {
                        "plans_costed": controlled.plans_costed,
                        "cost": round(controlled.cost, 2),
                        "elapsed_ms": round(
                            controlled.elapsed_seconds * 1000, 1
                        ),
                    },
                    "exhaustive": {
                        "plans_costed": exhaustive.plans_costed,
                        "cost": round(exhaustive.cost, 2),
                        "elapsed_ms": round(
                            exhaustive.elapsed_seconds * 1000, 1
                        ),
                    },
                }
                for label, controlled, exhaustive in comparison
            ],
        },
    )


def test_exhaustive_costs_many_more_plans(comparison, benchmark):
    """The join-order space drives the blow-up: the exhaustive
    baseline's plan count must exceed the controlled optimizer's on
    the join queries and *grow* with join count — "the optimization
    time may become unacceptably high".  (The recursive query has few
    arcs, so its transformation space alone stays small — the paper's
    complexity argument is about enumerative join optimization.)"""

    def check():
        return [
            exhaustive.plans_costed / max(1, controlled.plans_costed)
            for label, controlled, exhaustive in comparison
            if label.startswith("join")
        ]

    ratios = benchmark(check)
    assert all(ratio > 1.5 for ratio in ratios), (
        f"exhaustive search should cost substantially more plans: {ratios}"
    )
    assert ratios[-1] > ratios[0], (
        f"the blow-up should grow with join count: {ratios}"
    )


def test_controlled_quality_near_exhaustive(comparison, benchmark):
    def check():
        return [
            controlled.cost / max(exhaustive.cost, 1e-9)
            for _label, controlled, exhaustive in comparison
        ]

    ratios = benchmark(check)
    assert all(ratio <= 1.2 for ratio in ratios), (
        "the cost-controlled plan should be within 20% of the "
        f"exhaustive optimum (got {ratios})"
    )


def test_time_controlled_optimize(db, benchmark):
    model = DetailedCostModel(db.physical)
    benchmark(
        lambda: cost_controlled_optimizer(db.physical, model).optimize(
            fig3_query()
        )
    )


def test_time_exhaustive_optimize(db, benchmark):
    model = DetailedCostModel(db.physical)
    benchmark(
        lambda: exhaustive_optimizer(db.physical, model, max_plans=800).optimize(
            fig3_query()
        )
    )
