"""FIG6 — structural audit of the optimization steps.

Figure 6 summarizes the four steps: their granularity, strategy and
the PT node types each generates::

    rewrite      | entire query (graph) | irrevocable       | Fix, Union
    translate    | one arc              | cost-based        | IJ, PIJ
    generatePT   | one predicate node   | cost-based (gen.) | EJ, Sel
    transformPT  | entire query (PT)    | cost-based (tr.)  | none

The audit runs the pipeline over a query corpus and verifies each row:
rewrite introduces only Fix/Union operators at the graph level;
translation's hops realize only IJ/PIJ nodes; generatePT adds only
EJ/Sel (and the output Proj); and transformPT introduces **no new node
types** — it only repositions existing operators.
"""

import pytest

from repro.core import Optimizer, OptimizerConfig, rewrite
from repro.core.generate import SPJGenerator
from repro.core.transform import transform_candidates
from repro.core.translate import Translator
from repro.cost import DetailedCostModel
from repro.plans import (
    EJ,
    IJ,
    PIJ,
    EntityLeaf,
    Fix,
    Materialize,
    Proj,
    RecLeaf,
    Sel,
    TempLeaf,
    UnionOp,
)
from repro.querygraph.graph import FixNode, SPJNode, UnionNode
from repro.workloads import (
    MusicConfig,
    fig2_query,
    fig3_query,
    generate_music_database,
    join_push_query,
)


def corpus():
    return [fig2_query(), fig3_query(), join_push_query()]


@pytest.fixture(scope="module")
def db():
    database = generate_music_database(
        MusicConfig(lineages=6, generations=7, seed=61)
    )
    database.build_paper_indexes()
    return database


def node_types(plan):
    return {type(node).__name__ for node in plan.walk()}


def test_rewrite_row(db, benchmark, report, table):
    """rewrite: granule = whole graph; generates Fix and Union only."""

    def audit():
        introduced = set()
        for graph in corpus():
            before = {type(r.node).__name__ for r in graph.rules}
            rewritten = rewrite(graph)

            def walk_types(node):
                yield type(node).__name__
                if isinstance(node, UnionNode):
                    for part in node.parts:
                        yield from walk_types(part)
                if isinstance(node, FixNode):
                    yield from walk_types(node.body)

            after = set()
            for produced_rule in rewritten.rules:
                after |= set(walk_types(produced_rule.node))
            introduced |= after - before
        return introduced

    introduced = benchmark(audit)
    assert introduced <= {"FixNode", "UnionNode"}, introduced


def test_translate_row(db, benchmark):
    """translate: granule = one arc; hops realize IJ/PIJ only."""
    translator = Translator(
        db.physical,
        {"Influencer": {"master": "Composer", "disciple": "Composer", "gen": None}},
    )

    def audit():
        hop_counts = []
        for graph in corpus():
            for produced_rule in graph.rules:
                node = produced_rule.node
                if not isinstance(node, SPJNode):
                    continue
                translated = translator.translate_node(node)
                for translated_arc in translated.arcs:
                    hop_counts.append(len(translated_arc.hops))
        return hop_counts

    hop_counts = benchmark(audit)
    assert any(count > 0 for count in hop_counts)


def test_generate_row(db, benchmark):
    """generatePT: granule = one predicate node; adds EJ/Sel (+Proj)."""
    translator = Translator(db.physical)
    model = DetailedCostModel(db.physical)
    generator = SPJGenerator(db.physical, model)
    graph = fig2_query()
    node = graph.producers_of("Answer")[0].node
    translated = translator.translate_node(node)
    sources = [
        EntityLeaf(a.entity, a.root_var) for a in translated.arcs
    ]

    def audit():
        generated = generator.generate(translated, sources)
        return node_types(generated.plan)

    types = benchmark(audit)
    allowed = {"Proj", "Sel", "IJ", "PIJ", "EJ", "EntityLeaf"}
    assert types <= allowed, types


def test_transform_row(db, benchmark, report, table):
    """transformPT: granule = whole PT; introduces NO new node types."""
    model = DetailedCostModel(db.physical)

    def audit():
        rows = []
        for graph in corpus():
            base = Optimizer(
                db.physical,
                model,
                OptimizerConfig(push_policy="never", reoptimize=False),
            ).optimize(graph)
            before_types = node_types(base.plan)
            for description, candidate in transform_candidates(base.plan):
                new_types = node_types(candidate) - before_types
                rows.append((description[:40], sorted(new_types)))
                assert not new_types, (
                    f"transformPT introduced node types {new_types}"
                )
        return rows

    rows = benchmark(audit)
    report(
        "fig6_step_audit",
        table(
            ["transform candidate", "new node types"],
            [[description, types or "none"] for description, types in rows],
        ),
    )
