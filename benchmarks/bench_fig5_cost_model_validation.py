"""FIG5 — validating the cost formulas against the executor.

Figure 5 gives per-operator cost formulas; our reproduction is only
usable if those formulas *track reality*.  For a corpus of plans
(selection, implicit join, path-index join, explicit join, fixpoint)
over databases of increasing size, we compare the detailed model's
estimate against the engine's measured cost (physical page reads +
index pages + weighted predicate evaluations, priced with the same unit
weights).

We do not require absolute agreement — the model is analytic — but the
*shape* must hold: Spearman rank correlation between estimated and
measured cost across the corpus must be high, and per-operator costs
must grow monotonically with database size.
"""

import pytest
from scipy import stats as scipy_stats

from repro.cost import CostParameters, DetailedCostModel
from repro.engine import Engine
from repro.plans import EJ, IJ, PIJ, EntityLeaf, Fix, Proj, RecLeaf, Sel, UnionOp
from repro.querygraph.builder import add, const, eq, ge, out, path, var
from repro.workloads import MusicConfig, generate_music_database

SIZES = [2, 4, 8, 12]


def build_db(lineages):
    db = generate_music_database(
        MusicConfig(
            lineages=lineages,
            generations=6,
            works_per_composer=3,
            selective_fraction=0.2,
            buffer_pages=8,
            seed=11,
        )
    )
    db.build_paper_indexes()
    return db


def corpus():
    fix_body = UnionOp(
        Proj(
            EntityLeaf("Composer", "x"),
            out(master=path("x", "master"), disciple=var("x"), gen=const(1)),
        ),
        Proj(
            EJ(
                RecLeaf("Influencer", "i"),
                EntityLeaf("Composer", "x"),
                eq(path("i", "disciple"), path("x", "master")),
            ),
            out(
                master=path("i", "master"),
                disciple=var("x"),
                gen=add(path("i", "gen"), const(1)),
            ),
        ),
    )
    return [
        (
            "Sel(scan)",
            Sel(
                EntityLeaf("Composer", "x"),
                ge(path("x", "birthyear"), const(1700)),
            ),
        ),
        (
            "Sel(indexed)",
            Sel(
                EntityLeaf("Composer", "x"),
                eq(path("x", "name"), const("Bach")),
            ),
        ),
        (
            "IJ(works)",
            IJ(
                EntityLeaf("Composer", "x"),
                EntityLeaf("Composition", "w"),
                path("x", "works"),
                "w",
            ),
        ),
        (
            "PIJ(works.instruments)",
            PIJ(
                EntityLeaf("Composer", "x"),
                [EntityLeaf("Composition", "w"), EntityLeaf("Instrument", "i")],
                ["works", "instruments"],
                var("x"),
                ["w", "i"],
            ),
        ),
        (
            "EJ(nested loop)",
            EJ(
                Sel(
                    EntityLeaf("Composer", "a"),
                    eq(path("a", "name"), const("Bach")),
                ),
                EntityLeaf("Composer", "b"),
                eq(path("b", "master"), var("a")),
            ),
        ),
        (
            "Fix(Influencer)",
            Fix("Influencer", fix_body, "i", "Composer", "master", {"master"}),
        ),
    ]


@pytest.fixture(scope="module")
def measurements():
    rows = []
    for lineages in SIZES:
        db = build_db(lineages)
        model = DetailedCostModel(
            db.physical, CostParameters(buffer_pages=8)
        )
        engine = Engine(db.physical)
        for name, plan in corpus():
            estimated = model.cost(plan)
            db.store.buffer.clear()  # cold start per measurement
            result = engine.execute(plan)
            measured = result.metrics.measured_cost(
                page_read_cost=model.params.page_read,
                eval_cost=model.params.eval_per_tuple,
            )
            rows.append((name, lineages, estimated, measured))
    return rows


def test_fig5_rank_correlation(measurements, benchmark, report, table):
    estimates = [row[2] for row in measurements]
    measured = [row[3] for row in measurements]

    def correlate():
        return scipy_stats.spearmanr(estimates, measured)

    correlation = benchmark(correlate)
    rho = correlation.statistic if hasattr(correlation, "statistic") else correlation[0]
    table_rows = [
        [name, lineages, f"{est:.1f}", f"{meas:.1f}"]
        for name, lineages, est, meas in measurements
    ]
    table_rows.append(["Spearman rho", "", "", f"{rho:.3f}"])
    report(
        "fig5_cost_model_validation",
        table(["operator", "lineages", "estimated", "measured"], table_rows),
        data={
            "spearman_rho": round(float(rho), 4),
            "measurements": [
                {
                    "operator": name,
                    "lineages": lineages,
                    "estimated": round(est, 2),
                    "measured": round(meas, 2),
                }
                for name, lineages, est, meas in measurements
            ],
        },
    )
    assert rho > 0.8, f"cost model does not track measurements (rho={rho:.3f})"


def test_fig5_monotone_in_size(measurements, benchmark):
    """Per operator, estimated cost is non-decreasing in database size
    (the formulas scale with |C| and ||C||)."""

    def check():
        by_operator = {}
        for name, lineages, estimated, _measured in measurements:
            by_operator.setdefault(name, []).append((lineages, estimated))
        violations = []
        for name, series in by_operator.items():
            series.sort()
            values = [value for _size, value in series]
            if any(b < a * 0.999 for a, b in zip(values, values[1:])):
                violations.append(name)
        return violations

    violations = benchmark(check)
    assert not violations, f"non-monotone estimates for {violations}"
