"""FIG7 — the comprehensive example's cost table (Section 4.6).

Regenerates Figure 7: the per-operation symbolic cost rows of the two
Figure 4 plans over the constants ``pr``, ``ev``, ``lea``, ``lev`` and
the entity sizes (``|Cpr|``, ``||Cpr||``, delta sizes ``|Inf_i|``), and
the paper's verdict:

    "The sketched costs clearly show that the PT of Figure 4.(ii) is
    more costly than that of Figure 4.(i).  Pushing selection through
    recursion in this example is not worthwhile."

The numeric evaluation uses the Section 4.6 assumptions *verbatim* —
in particular ``nbtuples(Ci, P) = ||Ci||``: no selectivity discount.
Under those assumptions a pushed plan repeats the selection pipeline
every iteration with no cardinality payoff, so it always loses — which
is the paper's point: only a richer model (selectivities, buffering)
can ever justify a push, and benchmarks CLAIM-SELPUSH/CLAIM-JOINPUSH
explore exactly that with the detailed model.
"""

import pytest

from repro.core import deductive_optimizer, naive_optimizer
from repro.cost import SimplifiedCostModel, SimplifiedParameters
from repro.workloads import MusicConfig, fig3_query, generate_music_database

ABBREVIATIONS = {
    "Composer": "Cpr",
    "Composition": "Cpn",
    "Instrument": "Ins",
    "Influencer": "Inf",
}


def build_db():
    db = generate_music_database(
        MusicConfig(
            lineages=8,
            generations=8,
            works_per_composer=3,
            selective_fraction=0.15,
            seed=6,
        )
    )
    db.build_paper_indexes()
    return db


@pytest.fixture(scope="module")
def setup():
    db = build_db()
    graph = fig3_query()
    # The paper's setting: only path indices, no clustering, no
    # materialization — i.e. plans chosen under the simplified model
    # (under which the PIJ always beats the raw IJ chain, giving
    # exactly the Figure 4 shapes).
    model = SimplifiedCostModel(db.physical)
    unpushed = naive_optimizer(db.physical, model).optimize(graph)
    pushed = deductive_optimizer(db.physical, model).optimize(graph)
    return db, unpushed.plan, pushed.plan


def render_rows(rows):
    lines = []
    for row in rows:
        marker = {"main": " ", "fix-base": "b", "fix-rec": "r"}[row.section]
        lines.append(f"  {row.label:>4} [{marker}]  {row.formula!r}")
        lines.append(f"          ({row.operator})")
    return "\n".join(lines) + "\n"


def test_fig7_symbolic_tables(setup, benchmark, report):
    db, unpushed, pushed = setup
    model = SimplifiedCostModel(db.physical)

    def build_tables():
        return (
            model.table(unpushed, symbolic=True, entity_abbreviations=ABBREVIATIONS),
            model.table(pushed, symbolic=True, entity_abbreviations=ABBREVIATIONS),
        )

    rows_i, rows_ii = benchmark(build_tables)

    # Structural checks against the paper's table: the unpushed plan's
    # pipeline is Fix -> Sel(gen) -> IJ(master) -> PIJ -> Sel -> IJ(disc).
    main_i = [r.operator.split("[")[0] for r in rows_i if r.section == "main"]
    assert main_i == ["Fix", "Sel", "IJ", "PIJ", "Sel", "IJ"]
    # The pushed plan repeats IJ/PIJ/Sel inside base and recursive parts
    # (the paper's T7..T13) and keeps only Sel(gen)/IJ(disc) outside.
    base_ops = [r.operator.split("[")[0] for r in rows_ii if r.section == "fix-base"]
    rec_ops = [r.operator.split("[")[0] for r in rows_ii if r.section == "fix-rec"]
    assert base_ops == ["IJ", "PIJ", "Sel"]
    assert rec_ops == ["EJ", "IJ", "PIJ", "Sel"]
    main_ii = [r.operator.split("[")[0] for r in rows_ii if r.section == "main"]
    assert main_ii == ["Fix", "Sel", "IJ"]

    # Figure 5 formula spot checks.
    fix_row_i = [r for r in rows_i if r.operator.startswith("Fix")][0]
    assert "n_1" in repr(fix_row_i.formula)
    pij_rows = [r for r in rows_i if r.operator.startswith("PIJ")]
    assert "lea/||Cpr||" in repr(pij_rows[0].formula)

    report(
        "fig7_symbolic_pt_i",
        "Figure 7 (top): cost rows of PT 4(i)\n" + render_rows(rows_i),
    )
    report(
        "fig7_symbolic_pt_ii",
        "Figure 7 (bottom): cost rows of PT 4(ii)\n" + render_rows(rows_ii),
    )


def test_fig7_numeric_verdict(setup, benchmark, report, table):
    """The paper's verdict under its own assumptions: pushing loses."""
    db, unpushed, pushed = setup
    params = SimplifiedParameters(pr=1.0, ev=0.1, lea=50.0, lev=3.0)
    # Section 4.6: nbtuples(Ci, P) = ||Ci|| — no selectivity discount,
    # i.e. identity size propagation (the paper's sketch discipline).
    model = SimplifiedCostModel(db.physical, params, identity_sizes=True)

    def totals():
        return model.cost(unpushed), model.cost(pushed)

    cost_i, cost_ii = benchmark(totals)
    # The paper's verdict: "pushing selection through recursion in this
    # example is not worthwhile."  Under identity sizes the pushed plan
    # gains nothing (the duplicated pipeline does the same total work as
    # the single post-fixpoint pipeline, plus bookkeeping): it must not
    # be meaningfully cheaper.  (A strict loss needs magnitudes the
    # sketch leaves symbolic — see EXPERIMENTS.md.)
    assert cost_ii >= cost_i * 0.98, (
        "under the Section 4.6 assumptions the push must not pay off"
    )

    # For contrast: with real selectivities the comparison can flip —
    # the reason the decision must be cost-based.
    contrast = SimplifiedCostModel(db.physical, params)
    contrast_i, contrast_ii = contrast.cost(unpushed), contrast.cost(pushed)

    report(
        "fig7_numeric_verdict",
        table(
            ["model", "PT (i) unpushed", "PT (ii) pushed", "verdict"],
            [
                [
                    "Section 4.6 (no selectivity)",
                    f"{cost_i:.1f}",
                    f"{cost_ii:.1f}",
                    "push NOT worthwhile (paper's verdict)"
                    if cost_ii >= cost_i * 0.98
                    else "push wins",
                ],
                [
                    "with estimated selectivities",
                    f"{contrast_i:.1f}",
                    f"{contrast_ii:.1f}",
                    "push NOT worthwhile"
                    if contrast_ii > contrast_i
                    else "push wins",
                ],
            ],
        ),
    )
