"""ABLATE/extension — cost-model calibration quality.

The paper treats unit costs as given physical-schema parameters; a real
deployment measures them.  This benchmark fits per-event unit weights
from probe executions (`repro.cost.calibrate`) and checks:

* the fit reconstructs the probes' target costs with low residual;
* a detailed model re-based on the calibrated parameters still ranks a
  held-out plan pair (the Figure 4 push decision) the same way the
  measurements do.
"""

import pytest

from repro.core import deductive_optimizer, naive_optimizer
from repro.cost import CostParameters, DetailedCostModel, calibrate
from repro.plans import EJ, IJ, PIJ, EntityLeaf, Proj, Sel
from repro.querygraph.builder import const, eq, ge, out, path, var
from repro.workloads import MusicConfig, fig3_query, generate_music_database
from repro.engine import Engine


def build_db():
    db = generate_music_database(
        MusicConfig(
            lineages=8,
            generations=8,
            works_per_composer=3,
            selective_fraction=0.1,
            buffer_pages=4,
            seed=81,
        )
    )
    db.build_paper_indexes()
    return db


def probe_plans():
    return [
        ("scan+sel", Sel(EntityLeaf("Composer", "x"), ge(path("x", "birthyear"), const(1700)))),
        ("indexed", Sel(EntityLeaf("Composer", "x"), eq(path("x", "name"), const("Bach")))),
        ("ij", IJ(EntityLeaf("Composer", "x"), EntityLeaf("Composition", "w"), path("x", "works"), "w")),
        (
            "pij",
            PIJ(
                EntityLeaf("Composer", "x"),
                [EntityLeaf("Composition", "w"), EntityLeaf("Instrument", "i")],
                ["works", "instruments"],
                var("x"),
                ["w", "i"],
            ),
        ),
        (
            "ej",
            EJ(
                Sel(EntityLeaf("Composer", "a"), eq(path("a", "name"), const("Bach"))),
                EntityLeaf("Composer", "b"),
                eq(path("b", "master"), var("a")),
            ),
        ),
        ("proj", Proj(EntityLeaf("Instrument", "i"), out(n=path("i", "name")))),
        ("method", Sel(EntityLeaf("Composer", "x"), ge(path("x", "age"), const(250)))),
    ]


def test_calibration_fit_and_ranking(benchmark, report, table):
    db = build_db()

    def run():
        return calibrate(db.physical, probe_plans())

    fitted = benchmark(run)
    assert fitted.residual < 0.2, f"poor fit: residual {fitted.residual:.3f}"

    # Held-out ranking check: the push decision on Figure 3.
    params = fitted.to_parameters(CostParameters(buffer_pages=4))
    model = DetailedCostModel(db.physical, params)
    graph = fig3_query(min_generations=4)
    unpushed = naive_optimizer(db.physical, model).optimize(graph)
    pushed = deductive_optimizer(db.physical, model).optimize(graph)
    engine = Engine(db.physical)
    db.store.buffer.clear()
    measured_unpushed = engine.execute(unpushed.plan).metrics.measured_cost()
    db.store.buffer.clear()
    measured_pushed = engine.execute(pushed.plan).metrics.measured_cost()
    model_says_push = pushed.cost < unpushed.cost
    measurement_says_push = measured_pushed < measured_unpushed
    assert model_says_push == measurement_says_push

    rows = [[name, f"{weight:.4f}"] for name, weight in fitted.weights.items()]
    rows.append(["fit residual", f"{fitted.residual:.4f}"])
    rows.append(
        [
            "held-out push decision",
            "agrees with measurement"
            if model_says_push == measurement_says_push
            else "DISAGREES",
        ]
    )
    report("calibration", table(["quantity", "value"], rows))
