"""Ablations for the design choices DESIGN.md calls out.

Three knobs are switched off one at a time and their effect measured:

* **view folding** (the ``fold`` rewrite action) — without it a
  non-recursive view is materialized and the joint join space is lost;
* **multiclass clustering** ([VKC86], Section 3) — the static
  clustering of sub-objects near owners that ``access_cost(Ci, Cj)``
  models; declustered implicit joins pay a page read per dereference;
* **union-over-join distribution** (the Section 5 extension) — with
  the extended move set a randomized strategy can split a union join
  so one branch uses an index join.
"""

import pytest

from repro.core import Optimizer, OptimizerConfig, cost_controlled_optimizer
from repro.core.moves import neighbors
from repro.core.strategies import IterativeImprovement
from repro.cost import CostParameters, DetailedCostModel
from repro.engine import Engine
from repro.physical import ClusterTree, apply_clustering
from repro.plans import (
    EJ,
    IJ,
    EntityLeaf,
    Materialize,
    Proj,
    Sel,
    UnionOp,
    find_all,
)
from repro.querygraph.builder import (
    arc,
    const,
    eq,
    ge,
    out,
    path,
    query,
    rule,
    spj,
    var,
)
from repro.workloads import MusicConfig, generate_music_database


def view_graph():
    view = rule(
        "Late",
        spj(
            [arc("Composer", x=".")],
            where=ge(path("x", "birthyear"), const(1700)),
            select=out(n=path("x", "name"), m=path("x", "master")),
        ),
    )
    answer = rule(
        "Answer",
        spj(
            [arc("Late", v="."), arc("Composer", c=".")],
            where=eq(path("v", "m"), var("c")),
            select=out(n=path("v", "n"), master=path("c", "name")),
        ),
    )
    return query(view, answer)


def test_ablation_fold(benchmark, report, table):
    db = generate_music_database(MusicConfig(lineages=8, generations=8, seed=71))
    db.build_paper_indexes()
    model = DetailedCostModel(db.physical)

    def run():
        with_fold = Optimizer(
            db.physical, model, OptimizerConfig()
        ).optimize(view_graph())
        without_fold = Optimizer(
            db.physical,
            model,
            OptimizerConfig(fold_nonrecursive_views=False),
        ).optimize(view_graph())
        return with_fold, without_fold

    with_fold, without_fold = benchmark(run)
    assert not find_all(with_fold.plan, Materialize)
    assert find_all(without_fold.plan, Materialize)
    assert with_fold.cost <= without_fold.cost + 1e-9
    engine = Engine(db.physical)
    assert (
        engine.execute(with_fold.plan).answer_set()
        == engine.execute(without_fold.plan).answer_set()
    )
    report(
        "ablation_fold",
        table(
            ["configuration", "est. cost", "materialized views"],
            [
                ["fold on", f"{with_fold.cost:.1f}", 0],
                [
                    "fold off",
                    f"{without_fold.cost:.1f}",
                    len(find_all(without_fold.plan, Materialize)),
                ],
            ],
        ),
    )


def _scatter_extent(store, name, seed=0):
    """Re-place an extent's records in shuffled order: the layout a
    store degrades to after updates, where an owner's sub-objects sit
    on unrelated pages."""
    import random

    from repro.physical.pages import PagedSegment

    extent = store.extent(name)
    records = list(extent.records)
    random.Random(seed).shuffle(records)
    segment = PagedSegment(f"scattered({name})", extent.records_per_page)
    for record in records:
        segment.append_record(int(record.oid))
    store.replace_segment({name: segment}, {})


def test_ablation_clustering(benchmark, report, table):
    """Clustering sub-objects near owners turns implicit-join
    dereferences into same-page accesses.  The baseline layout has
    sub-objects *scattered* (the post-update state a static clustering
    strategy exists to repair)."""

    def run():
        results = {}
        for clustered in (False, True):
            db = generate_music_database(
                MusicConfig(
                    lineages=10,
                    generations=6,
                    works_per_composer=4,
                    records_per_page=10,
                    buffer_pages=2,
                    seed=72,
                )
            )
            _scatter_extent(db.store, "Composition", seed=5)
            if clustered:
                apply_clustering(
                    db.store, ClusterTree("Composer", {"works": None})
                )
            db.physical.refresh_statistics()
            plan = Proj(
                IJ(
                    EntityLeaf("Composer", "x"),
                    EntityLeaf("Composition", "w"),
                    path("x", "works"),
                    "w",
                ),
                out(t=path("w", "title")),
            )
            db.store.buffer.clear()
            run_result = Engine(db.physical).execute(plan)
            model = DetailedCostModel(
                db.physical, CostParameters(buffer_pages=2)
            )
            results[clustered] = (
                run_result.metrics.buffer.physical_reads,
                model.cost(plan),
                db.physical.statistics.clustered_fraction("Composer", "works"),
            )
        return results

    results = benchmark(run)
    unclustered_reads, unclustered_cost, fraction_before = results[False]
    clustered_reads, clustered_cost, fraction_after = results[True]
    assert fraction_after > fraction_before
    assert clustered_reads < unclustered_reads
    assert clustered_cost < unclustered_cost  # the model sees it too
    report(
        "ablation_clustering",
        table(
            ["layout", "clustered fraction", "physical reads", "model cost"],
            [
                [
                    "declustered",
                    f"{fraction_before:.2f}",
                    unclustered_reads,
                    f"{unclustered_cost:.1f}",
                ],
                [
                    "works clustered",
                    f"{fraction_after:.2f}",
                    clustered_reads,
                    f"{clustered_cost:.1f}",
                ],
            ],
        ),
    )


def test_ablation_union_distribution(benchmark, report, table):
    """The extended move set can improve a union join by giving one
    branch its own (index-joined) plan."""
    db = generate_music_database(
        MusicConfig(lineages=10, generations=8, buffer_pages=2, seed=73)
    )
    db.build_paper_indexes()
    model = DetailedCostModel(db.physical, CostParameters(buffer_pages=2))
    start = Proj(
        EJ(
            UnionOp(
                Proj(
                    Sel(
                        EntityLeaf("Composer", "a"),
                        ge(const(1650), path("a", "birthyear")),
                    ),
                    out(n=path("a", "name")),
                ),
                Proj(
                    Sel(
                        EntityLeaf("Composer", "b"),
                        ge(path("b", "birthyear"), const(1651)),
                    ),
                    out(n=path("b", "name")),
                ),
            ),
            EntityLeaf("Composer", "d"),
            eq(var("n"), path("d", "name")),
        ),
        out(name=path("d", "name")),
    )

    def run():
        plain = IterativeImprovement(seed=9, restarts=4)
        extended = IterativeImprovement(seed=9, restarts=4)
        extended.extended_moves = True
        return (
            plain.search(start, model.cost, db.physical),
            extended.search(start, model.cost, db.physical),
        )

    plain_result, extended_result = benchmark(run)
    assert extended_result.cost <= plain_result.cost + 1e-9
    engine = Engine(db.physical)
    assert (
        engine.execute(extended_result.plan).answer_set()
        == engine.execute(start).answer_set()
    )
    report(
        "ablation_union_distribution",
        table(
            ["move set", "plan cost", "plans costed", "moves taken"],
            [
                [
                    "standard",
                    f"{plain_result.cost:.1f}",
                    plain_result.plans_costed,
                    "; ".join(plain_result.moves_taken[:3]) or "none",
                ],
                [
                    "with union distribution",
                    f"{extended_result.cost:.1f}",
                    extended_result.plans_costed,
                    "; ".join(extended_result.moves_taken[:3]) or "none",
                ],
            ],
        ),
    )
