"""CLAIM-PIJ — the collapse action: a path index beats the IJ chain it
replaces when dereferences are cold (Section 4.3, [MS86]).

Sweeps the fan-out of the ``works``/``instruments`` references with a
starving buffer: the IJ chain pays one (mostly cold) page read per
dereference, while the PIJ answers each composer with one B⁺-tree
descent plus its share of the leaves — the PIJ cost formula of
Figure 5.  The collapse payoff must appear and grow; with a large
buffer both converge (which is why the optimizer treats collapse as a
cost-based choice, not a heuristic).
"""

import pytest

from repro.engine import Engine
from repro.plans import IJ, PIJ, EntityLeaf, Proj, Sel
from repro.querygraph.builder import const, eq, out, path, var
from repro.workloads import MusicConfig, generate_music_database

FANOUTS = [2, 4, 8]


def build_db(works_per_composer, buffer_pages):
    db = generate_music_database(
        MusicConfig(
            lineages=10,
            generations=6,
            works_per_composer=works_per_composer,
            instruments_per_work=3,
            instruments=24,
            records_per_page=10,
            buffer_pages=buffer_pages,
            seed=51,
        )
    )
    db.build_paper_indexes()
    return db


def ij_chain_plan():
    return Proj(
        Sel(
            IJ(
                IJ(
                    EntityLeaf("Composer", "x"),
                    EntityLeaf("Composition", "w"),
                    path("x", "works"),
                    "w",
                ),
                EntityLeaf("Instrument", "ins"),
                path("w", "instruments"),
                "ins",
            ),
            eq(path("ins", "name"), const("harpsichord")),
        ),
        out(n=path("x", "name")),
    )


def pij_plan():
    return Proj(
        Sel(
            PIJ(
                EntityLeaf("Composer", "x"),
                [EntityLeaf("Composition", "w"), EntityLeaf("Instrument", "ins")],
                ["works", "instruments"],
                var("x"),
                ["w", "ins"],
            ),
            eq(path("ins", "name"), const("harpsichord")),
        ),
        out(n=path("x", "name")),
    )


def run_cold(db, plan):
    db.store.buffer.clear()
    engine = Engine(db.physical)
    result = engine.execute(plan)
    return result


@pytest.fixture(scope="module")
def sweep():
    points = []
    for fanout in FANOUTS:
        db = build_db(fanout, buffer_pages=2)
        chain = run_cold(db, ij_chain_plan())
        collapsed = run_cold(db, pij_plan())
        assert chain.answer_set() == collapsed.answer_set()
        points.append(
            {
                "fanout": fanout,
                "chain_io": chain.metrics.buffer.physical_reads,
                "pij_io": collapsed.metrics.buffer.physical_reads
                + collapsed.metrics.index_page_reads,
                "chain_cost": chain.metrics.measured_cost(),
                "pij_cost": collapsed.metrics.measured_cost(),
            }
        )
    return points


def test_pij_beats_chain_when_cold(sweep, benchmark, report, table):
    def ratios():
        return [
            point["chain_cost"] / max(point["pij_cost"], 1e-9)
            for point in sweep
        ]

    speedups = benchmark(ratios)
    rows = [
        [
            point["fanout"],
            f"{point['chain_cost']:.0f}",
            f"{point['pij_cost']:.0f}",
            f"{ratio:.2f}x",
        ]
        for point, ratio in zip(sweep, speedups)
    ]
    report(
        "claim_path_index",
        table(
            ["works/composer", "IJ-chain cost", "PIJ cost", "PIJ speedup"],
            rows,
        ),
    )
    assert all(ratio > 1.0 for ratio in speedups), (
        f"the path index must win on a cold buffer ({speedups})"
    )


def test_optimizer_collapse_is_cost_based(benchmark):
    """With a generous buffer the chain's derefs are absorbed and the
    two variants are close — the optimizer may legitimately keep the
    chain.  With a starving buffer the PIJ must win by more.  (The
    collapse decision is therefore cost-based, not a heuristic.)"""

    def gaps():
        starving = build_db(4, buffer_pages=2)
        generous = build_db(4, buffer_pages=512)
        cold_gap = run_cold(starving, ij_chain_plan()).metrics.measured_cost() / max(
            run_cold(starving, pij_plan()).metrics.measured_cost(), 1e-9
        )
        warm_gap = run_cold(generous, ij_chain_plan()).metrics.measured_cost() / max(
            run_cold(generous, pij_plan()).metrics.measured_cost(), 1e-9
        )
        return cold_gap, warm_gap

    cold_gap, warm_gap = benchmark(gaps)
    assert cold_gap > warm_gap, (
        f"buffering must shrink the PIJ advantage ({cold_gap} vs {warm_gap})"
    )
