"""CLAIM-SELPUSH — pushing selection through recursion is sometimes a
win and sometimes a loss; only a cost model can tell (Sections 1, 3.1).

Sweeps the selectivity of the ``harpsichord`` predicate (the fraction
of works scored for the selective instrument).  For each point both
Figure 4 plans are executed cold and their *measured* costs compared,
alongside the detailed model's estimates:

* at very low selectivity the pushed plan shrinks every semi-naive
  delta and wins;
* as the predicate keeps more composers the pushed plan's per-iteration
  implicit joins stop paying for themselves and it loses — the
  deductive-DB heuristic ("always push") picks the wrong plan on that
  side of the crossover.

The benchmark asserts both regimes exist and that the cost-controlled
optimizer picks the measured winner at both extremes.
"""

import pytest

from repro.core import deductive_optimizer, naive_optimizer
from repro.cost import CostParameters, DetailedCostModel
from repro.engine import Engine
from repro.workloads import MusicConfig, fig3_query, generate_music_database

FRACTIONS = [0.02, 0.1, 0.3, 0.6, 1.0]


def build_db(fraction):
    db = generate_music_database(
        MusicConfig(
            lineages=10,
            generations=9,
            works_per_composer=3,
            instruments=20,
            selective_fraction=fraction,
            buffer_pages=4,
            seed=21,
        )
    )
    db.build_paper_indexes()
    return db


@pytest.fixture(scope="module")
def sweep():
    points = []
    for fraction in FRACTIONS:
        db = build_db(fraction)
        params = CostParameters(buffer_pages=4)
        model = DetailedCostModel(db.physical, params)
        graph = fig3_query(min_generations=4)
        unpushed = naive_optimizer(db.physical, model).optimize(graph)
        pushed = deductive_optimizer(db.physical, model).optimize(graph)
        engine = Engine(db.physical)
        db.store.buffer.clear()
        run_unpushed = engine.execute(unpushed.plan)
        db.store.buffer.clear()
        run_pushed = engine.execute(pushed.plan)
        assert run_unpushed.answer_set() == run_pushed.answer_set()
        points.append(
            {
                "fraction": fraction,
                "est_unpushed": unpushed.cost,
                "est_pushed": pushed.cost,
                "meas_unpushed": run_unpushed.metrics.measured_cost(),
                "meas_pushed": run_pushed.metrics.measured_cost(),
            }
        )
    return points


def test_crossover_exists(sweep, benchmark, report, table):
    def winners():
        return [
            (
                point["fraction"],
                "push" if point["meas_pushed"] < point["meas_unpushed"] else "no-push",
                "push" if point["est_pushed"] < point["est_unpushed"] else "no-push",
            )
            for point in sweep
        ]

    verdicts = benchmark(winners)
    rows = []
    for point, (fraction, measured_winner, model_winner) in zip(sweep, verdicts):
        rows.append(
            [
                f"{fraction:.2f}",
                f"{point['est_unpushed']:.0f}",
                f"{point['est_pushed']:.0f}",
                f"{point['meas_unpushed']:.0f}",
                f"{point['meas_pushed']:.0f}",
                measured_winner,
                model_winner,
            ]
        )
    report(
        "claim_selection_crossover",
        table(
            [
                "selectivity",
                "est no-push",
                "est push",
                "meas no-push",
                "meas push",
                "measured winner",
                "model winner",
            ],
            rows,
        ),
    )
    measured_winners = [winner for _f, winner, _m in verdicts]
    assert measured_winners[0] == "push", (
        "a highly selective predicate should reward pushing"
    )
    assert measured_winners[-1] == "no-push", (
        "an unselective predicate should punish pushing"
    )


def test_model_agrees_at_extremes(sweep, benchmark):
    def extremes():
        first, last = sweep[0], sweep[-1]
        model_first = first["est_pushed"] < first["est_unpushed"]
        measured_first = first["meas_pushed"] < first["meas_unpushed"]
        model_last = last["est_pushed"] < last["est_unpushed"]
        measured_last = last["meas_pushed"] < last["meas_unpushed"]
        return (model_first == measured_first) and (model_last == measured_last)

    assert benchmark(extremes), (
        "the cost model must pick the measured winner at both extremes "
        "(that is the whole point of cost-controlled pushing)"
    )
