"""BATCH-EXECUTION — throughput of batch-at-a-time vs tuple-at-a-time.

The batch refactor's speed claim is amortization: one generator
resumption, one cancellation poll, one ``add_tuples`` flush per batch
instead of per tuple.  This benchmark measures it where it is most
visible — a CPU-bound flat SPJ (scan + conjunctive filter +
projection) whose per-tuple work is a couple of compiled-closure
calls, so the per-tuple pipeline overhead dominates at batch size 1 —
and where it matters for the paper's workload, the ``Contains``
closure of a bill-of-materials assembly (the Section 5 recursive
query), whose semi-naive rounds feed delta batches through the same
operator pipeline.

Every run at every batch size must produce the identical answer set
and total tuple count; the bench must not claim speed for an engine
that drops tuples.  The machine-readable twin
``results/BENCH_batch_execution.json`` carries the speedups;
``check_regression.py`` holds the SPJ batched-over-tuple-at-a-time
ratio to the >=2x claim.
"""

import time

from repro.engine import Engine
from repro.plans.nodes import EntityLeaf, Fix, IJ, Proj, RecLeaf, Sel, UnionOp
from repro.querygraph.builder import add, and_, const, ge, le, out, path, var
from repro.querygraph.graph import OutputField, OutputSpec
from repro.querygraph.predicates import Comparison, Const, PathRef
from repro.workloads import MusicConfig, generate_music_database
from repro.workloads.parts import PartsConfig, generate_parts_database

BATCH_SIZES = (1, 64, 1024)

#: Best-of-N per batch size; discards scheduler noise.
REPEATS = 5

REQUIRED_SPJ_SPEEDUP = 2.0

ROOT = "assembly_root_0"


def build_music_db():
    """CPU-bound regime: everything fits in the buffer pool, so the
    measured time is pipeline overhead plus closure calls."""
    db = generate_music_database(
        MusicConfig(
            lineages=60,
            generations=40,
            works_per_composer=1,
            buffer_pages=65536,
            seed=1992,
        )
    )
    db.physical.refresh_statistics()
    return db


def build_parts_db():
    db = generate_parts_database(
        PartsConfig(
            assemblies=2,
            depth=5,
            fanout=3,
            sharing=0.0,
            buffer_pages=4096,
            seed=1992,
        )
    )
    db.physical.build_selection_index("Part", "pname")
    db.physical.refresh_statistics()
    return db


def scan_filter_plan():
    """Scan + conjunctive range filter over Composer (every record
    passes, so the full extent flows through both operators — maximum
    pipeline stress, the shape the >=2x claim is gated on)."""
    return Sel(
        EntityLeaf("Composer", "x"),
        and_(
            ge(path("x", "birthyear"), const(0)),
            le(path("x", "birthyear"), const(99999)),
        ),
    )


def spj_plan():
    """The full flat SPJ pipeline: scan + filter + project."""
    return Proj(
        scan_filter_plan(),
        out(name=path("x", "name"), year=path("x", "birthyear")),
    )


def contains_plan():
    """The ``Contains`` closure of one assembly as a pointer-join PT
    (same shape as the parallel-fixpoint bench: index-selected base
    part, one IJ hop ``r.component.subparts`` per delta tuple)."""
    base = Proj(
        IJ(
            Sel(
                EntityLeaf("Part", "p"),
                Comparison("=", PathRef("p", ("pname",)), Const(ROOT)),
            ),
            EntityLeaf("Part", "c"),
            PathRef("p", ("subparts",)),
            "c",
        ),
        OutputSpec(
            [
                OutputField("assembly", var("p")),
                OutputField("component", var("c")),
                OutputField("level", const(1)),
            ]
        ),
    )
    recursive = Proj(
        IJ(
            RecLeaf("Contains", "r"),
            EntityLeaf("Part", "c"),
            PathRef("r", ("component", "subparts")),
            "c",
        ),
        OutputSpec(
            [
                OutputField("assembly", path("r", "assembly")),
                OutputField("component", var("c")),
                OutputField("level", add(path("r", "level"), const(1))),
            ]
        ),
    )
    fix = Fix(
        "Contains",
        UnionOp(base, recursive),
        "k",
        recursion_entity="Part",
        recursion_attribute="subparts",
        invariant_fields=("assembly",),
    )
    return Proj(
        fix,
        OutputSpec(
            [
                OutputField("component", path("k", "component")),
                OutputField("level", path("k", "level")),
            ]
        ),
    )


def measure(db, plan, batch_size):
    best = None
    for _ in range(REPEATS):
        engine = Engine(db.physical, batch_size=batch_size)
        started = time.perf_counter()
        result = engine.execute(plan)
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best[0]:
            best = (elapsed, result)
    elapsed, result = best
    return {
        "batch_size": batch_size,
        "elapsed_s": round(elapsed, 4),
        "rows": len(result.rows),
        "rows_per_sec": round(len(result.rows) / elapsed) if elapsed else 0,
        "total_tuples": result.metrics.total_tuples,
        "batches": result.metrics.batches,
        "answers": result.answer_set(),
    }


def sweep(db, plan):
    measurements = [measure(db, plan, size) for size in BATCH_SIZES]
    serial = measurements[0]
    want = serial["answers"]
    for row in measurements:
        assert row["answers"] == want
        assert row["total_tuples"] == serial["total_tuples"]
        del row["answers"]
        row["speedup"] = round(serial["elapsed_s"] / row["elapsed_s"], 3)
    return measurements


def test_batch_execution_throughput(report, table):
    music_db = build_music_db()
    workloads = [
        ("spj_scan_filter", music_db, scan_filter_plan()),
        ("spj_full", music_db, spj_plan()),
        ("contains_closure", build_parts_db(), contains_plan()),
    ]
    results = {}
    rows = []
    for name, db, plan in workloads:
        measurements = sweep(db, plan)
        results[name] = measurements
        for row in measurements:
            rows.append(
                (
                    name,
                    row["batch_size"],
                    f"{row['elapsed_s']:.4f}",
                    f"{row['rows_per_sec']:,}",
                    f"{row['speedup']:.2f}x",
                    row["batches"],
                    row["total_tuples"],
                )
            )

    def speedup_at(name, size):
        for row in results[name]:
            if row["batch_size"] == size:
                return row["speedup"]
        raise KeyError(size)

    spj_speedup = max(
        speedup_at("spj_scan_filter", size) for size in BATCH_SIZES[1:]
    )
    text = table(
        (
            "workload",
            "batch_size",
            "elapsed_s",
            "rows/sec",
            "speedup",
            "batches",
            "total_tuples",
        ),
        rows,
    )
    report(
        "batch_execution",
        text,
        data={
            "batch_sizes": list(BATCH_SIZES),
            "repeats": REPEATS,
            "measurements": results,
            "spj_speedup@64": speedup_at("spj_scan_filter", 64),
            "spj_speedup@1024": speedup_at("spj_scan_filter", 1024),
            "spj_speedup@batched": spj_speedup,
            "spj_full_speedup@1024": speedup_at("spj_full", 1024),
            "contains_speedup@1024": speedup_at("contains_closure", 1024),
            "required_spj_speedup": REQUIRED_SPJ_SPEEDUP,
        },
    )

    assert spj_speedup >= REQUIRED_SPJ_SPEEDUP, (
        f"batched SPJ speedup {spj_speedup:.2f}x fell below the "
        f"{REQUIRED_SPJ_SPEEDUP}x tuple-at-a-time claim"
    )
