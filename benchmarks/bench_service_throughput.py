"""SERVICE-THROUGHPUT — plan-cache amortization of optimization cost.

The query service exists to amortize the paper's cost-controlled
search (rewrite → translate → generatePT → transformPT) across
repeated requests.  This benchmark serves the same workload twice
through an in-process :class:`~repro.service.QueryService`:

* **cold** — every request misses the plan cache (it is cleared before
  each request), paying full optimization + execution;
* **warm** — every request after the first hits the cache, paying
  execution only.

Reported per mode: queries/sec and p50/p95 request latency, plus the
cache hit ratio observed by the service's own metrics registry.  The
machine-readable twin (``results/BENCH_service_throughput.json``)
additionally carries the pre-observability baseline throughput, so the
zero-overhead claim of the tracing/profiling layer (both default-off
on the serving path) is demonstrated in the emitted numbers, not just
asserted in prose.
"""

import time

import pytest

from repro.service import QueryService, ServiceConfig
from repro.workloads import MusicConfig, generate_music_database

REQUESTS = 50
#: Each (query, mode) cell is driven this many times; the best run is
#: reported.  Best-of-N discards scheduler noise, which at
#: sub-millisecond request latencies otherwise dominates run-to-run
#: variance.
REPEATS = 5

FIG3 = """
view Influencer as
  select [master: x.master, disciple: x, gen: 1] from x in Composer
  union
  select [master: i.master, disciple: x, gen: i.gen + 1]
  from i in Influencer, x in Composer where i.disciple = x.master;
select [name: i.disciple.name, gen: i.gen] from i in Influencer where i.gen >= 3;
"""

SELECTIVE = 'select [name: c.name] from c in Composer where c.name = "Bach";'

WORKLOAD = [("fig3 recursive", FIG3), ("indexed selection", SELECTIVE)]

#: Throughput measured on the reference machine immediately before the
#: observability layer (tracer + profiler) was threaded through the
#: optimizer and engine.  The JSON report records current/baseline
#: ratios against these so overhead regressions are visible in the
#: artifact itself.  Absolute qps is machine-dependent; the ratios are
#: only meaningful when regenerated on comparable hardware.
BASELINE_QPS = {
    ("fig3 recursive", "cold"): 51.1,
    ("fig3 recursive", "warm"): 112.5,
    ("indexed selection", "cold"): 1938.6,
    ("indexed selection", "warm"): 5746.1,
}


def build_service():
    db = generate_music_database(
        MusicConfig(lineages=4, generations=7, works_per_composer=2, seed=92)
    )
    db.build_paper_indexes()
    return QueryService(db, ServiceConfig())


def percentile(values, fraction):
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5))
    return ordered[index]


def drive(service, text, requests, cold):
    latencies = []
    for _ in range(requests):
        if cold:
            service.cache.invalidate_all()
        started = time.perf_counter()
        service.run_query(text)
        latencies.append(time.perf_counter() - started)
    return latencies


@pytest.fixture(scope="module")
def measurements():
    rows = []
    for label, text in WORKLOAD:
        for cold in (True, False):
            service = build_service()
            drive(service, text, 5, cold)  # warm up caches + allocator
            best = None
            for _ in range(REPEATS):
                latencies = drive(service, text, REQUESTS, cold)
                if best is None or sum(latencies) < sum(best):
                    best = latencies
            hit_ratio = service.cache.stats.hit_ratio
            rows.append(
                {
                    "query": label,
                    "mode": "cold" if cold else "warm",
                    "qps": REQUESTS / sum(best),
                    "p50": percentile(best, 0.50),
                    "p95": percentile(best, 0.95),
                    "hit_ratio": hit_ratio,
                }
            )
    return rows


def test_throughput_report(measurements, benchmark, report, table):
    rows = benchmark(
        lambda: [
            [
                m["query"],
                m["mode"],
                f"{m['qps']:.1f}",
                f"{m['p50'] * 1000:.2f}ms",
                f"{m['p95'] * 1000:.2f}ms",
                f"{m['hit_ratio']:.2f}",
            ]
            for m in measurements
        ]
    )
    data = {
        "requests_per_mode": REQUESTS,
        "repeats_best_of": REPEATS,
        "measurements": [
            {
                "query": m["query"],
                "mode": m["mode"],
                "qps": round(m["qps"], 1),
                "p50_ms": round(m["p50"] * 1000, 3),
                "p95_ms": round(m["p95"] * 1000, 3),
                "hit_ratio": round(m["hit_ratio"], 3),
                "baseline_qps": BASELINE_QPS.get((m["query"], m["mode"])),
                "qps_over_baseline": (
                    round(m["qps"] / BASELINE_QPS[(m["query"], m["mode"])], 3)
                    if (m["query"], m["mode"]) in BASELINE_QPS
                    else None
                ),
            }
            for m in measurements
        ],
    }
    report(
        "service_throughput",
        table(
            ["query", "cache", "qps", "p50", "p95", "hit ratio"],
            rows,
        ),
        data=data,
    )


def test_warm_cache_is_faster(measurements, benchmark):
    """The whole point of the service layer: serving from the plan
    cache must beat re-optimizing every request."""

    def speedups():
        by_query = {}
        for m in measurements:
            by_query.setdefault(m["query"], {})[m["mode"]] = m
        return {
            query: modes["cold"]["p50"] / max(modes["warm"]["p50"], 1e-9)
            for query, modes in by_query.items()
        }

    ratios = benchmark(speedups)
    # The recursive query spends real time optimizing (strategy search
    # over transform candidates); caching must win clearly there.
    assert ratios["fig3 recursive"] > 1.5, ratios
    assert all(ratio > 0.8 for ratio in ratios.values()), ratios


def test_warm_hit_ratio_is_high(measurements):
    warm = [m for m in measurements if m["mode"] == "warm"]
    assert all(m["hit_ratio"] > 0.9 for m in warm), warm
