"""SERVICE-THROUGHPUT — plan-cache amortization of optimization cost.

The query service exists to amortize the paper's cost-controlled
search (rewrite → translate → generatePT → transformPT) across
repeated requests.  This benchmark serves the same workload twice
through an in-process :class:`~repro.service.QueryService`:

* **cold** — every request misses the plan cache (it is cleared before
  each request), paying full optimization + execution;
* **warm** — every request after the first hits the cache, paying
  execution only.

Reported per mode: queries/sec and p50/p95 request latency, plus the
cache hit ratio observed by the service's own metrics registry.
"""

import time

import pytest

from repro.service import QueryService, ServiceConfig
from repro.workloads import MusicConfig, generate_music_database

REQUESTS = 30

FIG3 = """
view Influencer as
  select [master: x.master, disciple: x, gen: 1] from x in Composer
  union
  select [master: i.master, disciple: x, gen: i.gen + 1]
  from i in Influencer, x in Composer where i.disciple = x.master;
select [name: i.disciple.name, gen: i.gen] from i in Influencer where i.gen >= 3;
"""

SELECTIVE = 'select [name: c.name] from c in Composer where c.name = "Bach";'

WORKLOAD = [("fig3 recursive", FIG3), ("indexed selection", SELECTIVE)]


def build_service():
    db = generate_music_database(
        MusicConfig(lineages=4, generations=7, works_per_composer=2, seed=92)
    )
    db.build_paper_indexes()
    return QueryService(db, ServiceConfig())


def percentile(values, fraction):
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5))
    return ordered[index]


def drive(service, text, requests, cold):
    latencies = []
    for _ in range(requests):
        if cold:
            service.cache.invalidate_all()
        started = time.perf_counter()
        service.run_query(text)
        latencies.append(time.perf_counter() - started)
    return latencies


@pytest.fixture(scope="module")
def measurements():
    rows = []
    for label, text in WORKLOAD:
        for cold in (True, False):
            service = build_service()
            service.run_query(text)  # settle: first miss is not timed in warm mode
            latencies = drive(service, text, REQUESTS, cold)
            hit_ratio = service.cache.stats.hit_ratio
            rows.append(
                {
                    "query": label,
                    "mode": "cold" if cold else "warm",
                    "qps": REQUESTS / sum(latencies),
                    "p50": percentile(latencies, 0.50),
                    "p95": percentile(latencies, 0.95),
                    "hit_ratio": hit_ratio,
                }
            )
    return rows


def test_throughput_report(measurements, benchmark, report, table):
    rows = benchmark(
        lambda: [
            [
                m["query"],
                m["mode"],
                f"{m['qps']:.1f}",
                f"{m['p50'] * 1000:.2f}ms",
                f"{m['p95'] * 1000:.2f}ms",
                f"{m['hit_ratio']:.2f}",
            ]
            for m in measurements
        ]
    )
    report(
        "service_throughput",
        table(
            ["query", "cache", "qps", "p50", "p95", "hit ratio"],
            rows,
        ),
    )


def test_warm_cache_is_faster(measurements, benchmark):
    """The whole point of the service layer: serving from the plan
    cache must beat re-optimizing every request."""

    def speedups():
        by_query = {}
        for m in measurements:
            by_query.setdefault(m["query"], {})[m["mode"]] = m
        return {
            query: modes["cold"]["p50"] / max(modes["warm"]["p50"], 1e-9)
            for query, modes in by_query.items()
        }

    ratios = benchmark(speedups)
    # The recursive query spends real time optimizing (strategy search
    # over transform candidates); caching must win clearly there.
    assert ratios["fig3 recursive"] > 1.5, ratios
    assert all(ratio > 0.8 for ratio in ratios.values()), ratios


def test_warm_hit_ratio_is_high(measurements):
    warm = [m for m in measurements if m["mode"] == "warm"]
    assert all(m["hit_ratio"] > 0.9 for m in warm), warm
