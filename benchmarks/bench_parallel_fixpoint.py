"""PARALLEL-FIXPOINT — speedup of the hash-partitioned semi-naive loop.

The parallel fixpoint overlaps the I/O stalls of concurrent delta
slices: each worker evaluates one hash partition of the round's delta,
and a physical page miss sleeps *outside* the buffer-pool lock, so
misses in different slices overlap instead of serializing.  This
benchmark makes the ``Contains`` closure I/O-bound the same way the
paper's cost model frames it — a buffer pool far smaller than the
working set, a fixed per-miss device latency, one record per page so
pointer chasing has no accidental locality — and runs it at
parallelism 1, 2 and 4.

The processing tree is built directly in the shape the paper's
optimizer targets (Figure 4): an index-selected root feeding the base
part, and an ``IJ`` pointer join (``r.component.subparts``) in the
recursive part, so each delta tuple costs a handful of page misses
rather than an extent scan.  Per-tuple CPU stays negligible, which is
the honest regime for a GIL build: the measured speedup is overlapped
I/O wait, the only parallelism a single-core thread pool can deliver.

Reported per level: wall time (best of N), speedup over serial, and
the answer-set / tuple-count invariants (identical across levels — the
differential harness in ``tests/`` enforces this on randomized
queries; the bench re-checks it on its own workload).  The
machine-readable twin ``results/BENCH_parallel_fixpoint.json`` carries
``speedup@4``, which the regression gate holds to the >=1.5x claim.
"""

import time

from repro.engine import Engine
from repro.plans.nodes import EntityLeaf, Fix, IJ, Proj, RecLeaf, Sel, UnionOp
from repro.querygraph.builder import add, const, path, var
from repro.querygraph.graph import OutputField, OutputSpec
from repro.querygraph.predicates import Comparison, Const, PathRef
from repro.workloads.parts import PartsConfig, generate_parts_database

LEVELS = (1, 2, 4)

#: Best-of-N per parallelism level; discards scheduler noise.
REPEATS = 3

#: Simulated latency of one physical page miss.  Large relative to the
#: per-tuple CPU cost, so the fixpoint is I/O-bound and worker overlap
#: is what the bench measures.
IO_LATENCY = 0.0004

#: Far smaller than the ~730-page working set (one record per page),
#: so nearly every pointer dereference is a physical miss.
BUFFER_PAGES = 16

REQUIRED_SPEEDUP_AT_4 = 1.5

ROOT = "assembly_root_0"


def build_database():
    db = generate_parts_database(
        PartsConfig(
            assemblies=2,
            depth=5,
            fanout=3,
            sharing=0.0,
            records_per_page=1,
            buffer_pages=BUFFER_PAGES,
            seed=1992,
        )
    )
    db.physical.build_selection_index("Part", "pname")
    db.physical.refresh_statistics()
    db.store.buffer.io_latency = IO_LATENCY
    return db


def build_plan():
    """The ``Contains`` closure of one assembly as a pointer-join PT.

    Base part: index-select the root by ``pname``, expand its
    ``subparts`` set with an IJ.  Recursive part: one IJ hop
    ``r.component.subparts`` per delta tuple.  ``assembly`` is declared
    invariant, so the delta is hash-partitioned on (component, level).
    """
    base = Proj(
        IJ(
            Sel(
                EntityLeaf("Part", "p"),
                Comparison("=", PathRef("p", ("pname",)), Const(ROOT)),
            ),
            EntityLeaf("Part", "c"),
            PathRef("p", ("subparts",)),
            "c",
        ),
        OutputSpec(
            [
                OutputField("assembly", var("p")),
                OutputField("component", var("c")),
                OutputField("level", const(1)),
            ]
        ),
    )
    recursive = Proj(
        IJ(
            RecLeaf("Contains", "r"),
            EntityLeaf("Part", "c"),
            PathRef("r", ("component", "subparts")),
            "c",
        ),
        OutputSpec(
            [
                OutputField("assembly", path("r", "assembly")),
                OutputField("component", var("c")),
                OutputField("level", add(path("r", "level"), const(1))),
            ]
        ),
    )
    fix = Fix(
        "Contains",
        UnionOp(base, recursive),
        "k",
        recursion_entity="Part",
        recursion_attribute="subparts",
        invariant_fields=("assembly",),
    )
    return Proj(
        fix,
        OutputSpec(
            [
                OutputField("component", path("k", "component")),
                OutputField("level", path("k", "level")),
            ]
        ),
    )


def run_once(db, plan, parallelism):
    engine = Engine(db.physical, parallelism=parallelism)
    started = time.perf_counter()
    result = engine.execute(plan)
    elapsed = time.perf_counter() - started
    return elapsed, result


def test_parallel_fixpoint_speedup(report, table):
    db = build_database()
    plan = build_plan()

    measurements = []
    answers = {}
    for level in LEVELS:
        best = None
        for _ in range(REPEATS):
            elapsed, result = run_once(db, plan, level)
            if best is None or elapsed < best[0]:
                best = (elapsed, result)
        answers[level] = best[1].answer_set()
        measurements.append(
            {
                "parallelism": level,
                "elapsed_s": round(best[0], 4),
                "rows": len(best[1].rows),
                "total_tuples": best[1].metrics.total_tuples,
                "fix_iterations": best[1].metrics.fix_iterations,
            }
        )

    # Same answers and same tuple counts at every level — the bench
    # must not claim speed for an engine that drops tuples.
    serial = measurements[0]
    for row, level in zip(measurements, LEVELS):
        assert answers[level] == answers[1]
        assert row["total_tuples"] == serial["total_tuples"]

    by_level = {row["parallelism"]: row for row in measurements}
    speedups = {
        level: by_level[1]["elapsed_s"] / by_level[level]["elapsed_s"]
        for level in LEVELS
    }
    for row in measurements:
        row["speedup"] = round(speedups[row["parallelism"]], 3)

    text = table(
        ("parallelism", "elapsed_s", "speedup", "rows", "total_tuples"),
        [
            (
                row["parallelism"],
                f"{row['elapsed_s']:.4f}",
                f"{row['speedup']:.2f}x",
                row["rows"],
                row["total_tuples"],
            )
            for row in measurements
        ],
    )
    report(
        "parallel_fixpoint",
        text,
        data={
            "io_latency_s": IO_LATENCY,
            "buffer_pages": BUFFER_PAGES,
            "repeats": REPEATS,
            "measurements": measurements,
            "speedup@2": round(speedups[2], 3),
            "speedup@4": round(speedups[4], 3),
            "required_speedup@4": REQUIRED_SPEEDUP_AT_4,
        },
    )

    assert speedups[4] >= REQUIRED_SPEEDUP_AT_4, (
        f"parallelism-4 speedup {speedups[4]:.2f}x fell below the "
        f"{REQUIRED_SPEEDUP_AT_4}x claim"
    )
