"""OBS-OVERHEAD — the cost-controlled observability claim, measured.

Three claims of the always-on observability layer, each emitted into
``results/BENCH_obs_overhead.json`` and gated by
``check_regression.py``:

* **overhead** — with the default 5% budget, serving throughput with
  the governor on stays within 3% of the same service with
  observability off (``ratio >= 0.97``).  The governor earns this by
  degrading the hot classes to deterministic head sampling the moment
  their modeled probe/span spend crosses the budget.

* **anomaly capture** — while a cheap hot class saturates the budget,
  queries of an *anomalous* class still yield complete tail-sampled
  artifacts (anomaly flagged + full detail committed) at a >= 95%
  rate: minor classes are never degraded, and the first anomaly pins
  its class to full detail.

* **replay** — a flight-recorder bundle captured during the anomaly
  storm re-executes deterministically (`matched` plan + answer
  fingerprints) on a store rebuilt from the bundle's recipe.
"""

import time
from statistics import median

from repro.obs.recorder import database_from_config, load_bundle, replay_bundle
from repro.service import QueryService, ServiceConfig

RECIPE = {"db": "music", "seed": 21, "lineages": 3, "generations": 6}

SCAN = "select [name: x.name] from x in Composer where x.birthyear >= 1700;"

FIG3 = """
view Influencer as
  select [master: x.master, disciple: x, gen: 1] from x in Composer
  union
  select [master: i.master, disciple: x, gen: i.gen + 1]
  from i in Influencer, x in Composer where i.disciple = x.master;
select [name: i.disciple.name, gen: i.gen] from i in Influencer where i.gen >= 2;
"""

WORKLOAD = [SCAN, FIG3]

#: Interleaved measurement passes (one off + one on request per query
#: per pass).
PASSES = 360

REQUIRED_RATIO = 0.97
REQUIRED_CAPTURE = 0.95


def build_service(obs_budget, **overrides):
    config = dict(
        obs_budget=obs_budget,
        database_config=RECIPE,
        slow_query_seconds=None,
    )
    config.update(overrides)
    return QueryService(database_from_config(RECIPE), ServiceConfig(**config))


def timed_request(service, text, samples) -> None:
    start = time.perf_counter()
    response = service.handle({"op": "query", "text": text})
    samples[text].append(time.perf_counter() - start)
    assert response["ok"], response


def measure_overhead() -> dict:
    off = build_service(obs_budget=None)
    on = build_service(obs_budget=0.05)
    # Warm plan caches, and let the governor settle into steady-state
    # sampling probabilities before the clock starts.
    for _ in range(10):
        for service in (off, on):
            for text in WORKLOAD:
                service.handle({"op": "query", "text": text})
    # Block qps on a shared box is hopeless for a 3% gate: machine
    # drift (turbo, cache residency, scheduler stalls) swings raw
    # throughput tens of percent between blocks seconds apart.  So the
    # two services are interleaved at *request* granularity — each
    # pass runs every workload query once on each service,
    # milliseconds apart, alternating which goes first — and compared
    # on per-query latency *medians*, which shrug off the multi-ms
    # stall outliers that wreck a mean.  Off-vs-off, this estimator
    # closes well within 1%.
    off_samples = {text: [] for text in WORKLOAD}
    on_samples = {text: [] for text in WORKLOAD}
    for index in range(PASSES):
        ordered = (
            ((off, off_samples), (on, on_samples))
            if index % 2 == 0
            else ((on, on_samples), (off, off_samples))
        )
        for text in WORKLOAD:
            for service, samples in ordered:
                timed_request(service, text, samples)
    off_cost = sum(median(times) for times in off_samples.values())
    on_cost = sum(median(times) for times in on_samples.values())
    return {
        "obs_off_qps": round(len(WORKLOAD) / off_cost, 1),
        "obs_on_qps": round(len(WORKLOAD) / on_cost, 1),
        "ratio": round(off_cost / on_cost, 4),
        "required_ratio": REQUIRED_RATIO,
        "budget": 0.05,
        "governor": on.governor.snapshot(),
    }


def measure_anomaly_capture(tmp_dir: str, injected: int = 30) -> dict:
    service = build_service(
        obs_budget=0.05, bundle_dir=tmp_dir, anomaly_min_samples=5
    )
    db_buffer = service.physical.store.buffer
    # Saturate the budget with the cheap hot class, and warm the
    # anomaly class's latency baseline.
    for _ in range(30):
        service.handle({"op": "query", "text": SCAN})
        service.handle({"op": "query", "text": FIG3})
    # The incident: page reads suddenly cost 20ms each.
    db_buffer.io_latency = 0.02
    captured = 0
    bundle_path = None
    for _ in range(injected):
        db_buffer.clear()
        response = service.handle({"op": "query", "text": FIG3})
        obs = response["obs"]
        if obs["sampled"] and obs.get("anomalies"):
            captured += 1
        bundle_path = obs.get("bundle", bundle_path)
    return {
        "injected": injected,
        "captured": captured,
        "rate": round(captured / injected, 4),
        "required_rate": REQUIRED_CAPTURE,
        "bundle": bundle_path,
    }


def test_obs_overhead(report, table, tmp_path):
    overhead = measure_overhead()
    capture = measure_anomaly_capture(str(tmp_path / "bundles"))

    replay = {"matched": False}
    if capture["bundle"]:
        bundle = load_bundle(capture["bundle"])
        report_dict = replay_bundle(bundle)
        replay = {
            "matched": report_dict["matched"],
            "plan_match": report_dict["plan_match"],
            "answer_match": report_dict["answer_match"],
            "row_count": report_dict["row_count"],
        }

    rows = [
        (
            "obs-on/off throughput",
            f"{overhead['ratio']:.3f}",
            f">= {REQUIRED_RATIO}",
            "ok" if overhead["ratio"] >= REQUIRED_RATIO else "FAIL",
        ),
        (
            "anomaly capture rate",
            f"{capture['rate']:.3f}",
            f">= {REQUIRED_CAPTURE}",
            "ok" if capture["rate"] >= REQUIRED_CAPTURE else "FAIL",
        ),
        (
            "bundle replay matched",
            str(replay["matched"]),
            "True",
            "ok" if replay["matched"] else "FAIL",
        ),
    ]
    text = table(("claim", "measured", "required", ""), rows)
    text += (
        f"\nobs-off {overhead['obs_off_qps']:.1f} qps, "
        f"obs-on {overhead['obs_on_qps']:.1f} qps "
        f"(budget {overhead['budget']:.0%}); "
        f"{capture['captured']}/{capture['injected']} injected anomalies "
        "yielded full tail-sampled artifacts\n"
    )
    report(
        "obs_overhead",
        text,
        data={
            "overhead": overhead,
            "anomaly_capture": {
                k: v for k, v in capture.items() if k != "bundle"
            },
            "replay": replay,
        },
    )

    assert overhead["ratio"] >= REQUIRED_RATIO
    assert capture["rate"] >= REQUIRED_CAPTURE
    assert replay["matched"]
