"""FIG2 — the Figure 2 query graph end to end.

"The title of the works of Bach including a harpsichord and a flute":
builds the query graph with its tree-shaped adornment (two instrument
variables under one ``works`` element), optimizes it, executes the
chosen plan, and cross-checks against the reference evaluator.  The
timed quantity is the full optimize+execute pipeline.
"""

from repro.core import cost_controlled_optimizer
from repro.engine import Engine, ReferenceEvaluator
from repro.plans import render_functional, validate_plan
from repro.workloads import MusicConfig, fig2_query, generate_music_database


def build_db():
    db = generate_music_database(
        MusicConfig(
            lineages=8,
            generations=8,
            works_per_composer=4,
            selective_fraction=0.3,
            seed=2,
        )
    )
    db.build_paper_indexes()
    return db


def test_fig2_pipeline(benchmark, report, table):
    db = build_db()
    graph = fig2_query()

    def pipeline():
        result = cost_controlled_optimizer(db.physical).optimize(graph)
        rows = Engine(db.physical).execute(result.plan)
        return result, rows

    result, rows = benchmark(pipeline)
    validate_plan(result.plan, db.physical)
    want = ReferenceEvaluator(db.physical).answer_set(graph)
    assert rows.answer_set() == want
    assert len(rows) >= 1  # the generator guarantees Bach has such a work

    report(
        "fig2_query_graph",
        table(
            ["quantity", "value"],
            [
                ["answers", len(rows)],
                ["plan cost (model)", f"{result.cost:.2f}"],
                ["plans costed", result.plans_costed],
                ["measured cost", f"{rows.metrics.measured_cost():.2f}"],
                ["plan", render_functional(result.plan)[:100]],
            ],
        ),
    )
