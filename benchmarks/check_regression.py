"""Bench-regression gate: fresh results vs. the committed baselines.

CI copies the committed ``benchmarks/results/`` aside, re-runs the
benchmarks, then calls::

    python benchmarks/check_regression.py \
        --fresh benchmarks/results --baseline /tmp/bench-baseline

Each ``BENCH_*.json`` the gate understands is compared metric by
metric; a check fails when fresh/baseline drops below the threshold
(default 0.90 — the same slack the service-throughput bench grants
itself against its hard-coded baselines).  The gate mirrors, in CI,
what the plan-regression detector does online: compare the measured
performance of the new code ("plan") against the recorded performance
of the old one and refuse silent slowdowns.

Exit status is 0 when every check passes, 1 otherwise.  Unknown
``BENCH_*.json`` files are ignored; a baseline file without a fresh
counterpart fails (the benchmark silently disappeared).
"""

import argparse
import json
import os
import sys


def load(path):
    with open(path) as handle:
        return json.load(handle)


class Gate:
    def __init__(self, threshold):
        self.threshold = threshold
        self.rows = []
        self.failed = False

    def check(self, bench, metric, fresh, baseline):
        """Record ``fresh/baseline`` and fail when it sags below the
        threshold.  ``baseline <= 0`` never fails: the ratio would be
        meaningless and a zero baseline carries no speed claim."""
        if baseline > 0:
            ratio = fresh / baseline
            ok = ratio >= self.threshold
        else:
            ratio = float("inf")
            ok = True
        self.note(bench, metric, f"{fresh:g}", f"{baseline:g}", ratio, ok)

    def absolute(self, bench, metric, value, floor):
        self.note(
            bench, metric, f"{value:g}", f">= {floor:g}", value, value >= floor
        )

    def boolean(self, bench, metric, value):
        self.note(bench, metric, str(bool(value)), "True", None, bool(value))

    def note(self, bench, metric, fresh, baseline, ratio, ok):
        self.rows.append(
            (
                bench,
                metric,
                fresh,
                baseline,
                "-" if ratio is None else f"{ratio:.3f}",
                "ok" if ok else "FAIL",
            )
        )
        if not ok:
            self.failed = True

    def render(self):
        headers = ("benchmark", "metric", "fresh", "baseline", "ratio", "")
        rows = [headers] + [tuple(row) for row in self.rows]
        widths = [max(len(row[i]) for row in rows) for i in range(len(headers))]
        lines = []
        for index, row in enumerate(rows):
            lines.append(
                "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
                .rstrip()
            )
            if index == 0:
                lines.append("  ".join("-" * w for w in widths).rstrip())
        return "\n".join(lines)


def check_service_throughput(gate, fresh, baseline):
    def by_key(doc):
        return {
            (m["query"], m["mode"]): m for m in doc.get("measurements", [])
        }

    fresh_rows, base_rows = by_key(fresh), by_key(baseline)
    for key, base in sorted(base_rows.items()):
        label = "qps[{}/{}]".format(*key)
        row = fresh_rows.get(key)
        if row is None:
            gate.note("service_throughput", label, "missing", "-", None, False)
            continue
        gate.check("service_throughput", label, row["qps"], base["qps"])


def check_strategy_time(gate, fresh, baseline):
    def advantages(doc):
        out = {}
        for comparison in doc.get("comparisons", []):
            controlled = comparison["controlled"]["elapsed_ms"]
            exhaustive = comparison["exhaustive"]["elapsed_ms"]
            if controlled > 0:
                out[comparison["query"]] = exhaustive / controlled
        return out

    fresh_adv, base_adv = advantages(fresh), advantages(baseline)
    for query, base in sorted(base_adv.items()):
        label = f"speedup[{query}]"
        if query not in fresh_adv:
            gate.note("claim_strategy_time", label, "missing", "-", None, False)
            continue
        gate.check("claim_strategy_time", label, fresh_adv[query], base)


def check_feedback_calibration(gate, fresh, baseline):
    base_rows = {r["workload"]: r for r in baseline.get("calibration", [])}
    fresh_rows = {r["workload"]: r for r in fresh.get("calibration", [])}
    for workload, base in sorted(base_rows.items()):
        row = fresh_rows.get(workload)
        if row is None:
            gate.note(
                "feedback_calibration",
                f"improvement[{workload}]",
                "missing",
                "-",
                None,
                False,
            )
            continue
        for metric in ("operator_improvement", "cost_improvement"):
            gate.check(
                "feedback_calibration",
                f"{metric}[{workload}]",
                row[metric],
                base[metric],
            )
    regression = fresh.get("regression", {})
    gate.absolute(
        "feedback_calibration",
        "regressions detected",
        regression.get("detected", 0),
        1,
    )
    gate.boolean(
        "feedback_calibration",
        "reverted by pin",
        regression.get("reverted_by_pin"),
    )
    guard = fresh.get("throughput_guard", {})
    gate.absolute(
        "feedback_calibration",
        "feedback-off/on qps",
        guard.get("disabled_over_enabled", 0.0),
        gate.threshold,
    )


def check_parallel_fixpoint(gate, fresh, baseline):
    floor = fresh.get("required_speedup@4", 1.5)
    gate.absolute(
        "parallel_fixpoint",
        "speedup@4 claim",
        fresh.get("speedup@4", 0.0),
        floor,
    )
    for metric in ("speedup@2", "speedup@4"):
        gate.check(
            "parallel_fixpoint",
            metric,
            fresh.get(metric, 0.0),
            baseline.get(metric, 0.0),
        )


def check_distributed_fixpoint(gate, fresh, baseline):
    floor = fresh.get("required_speedup@4", 1.5)
    gate.absolute(
        "distributed_fixpoint",
        "speedup@4 claim",
        fresh.get("speedup@4", 0.0),
        floor,
    )
    gate.absolute(
        "distributed_fixpoint",
        "obs on/off throughput",
        fresh.get("obs_throughput_ratio", 0.0),
        fresh.get("required_obs_ratio", 0.95),
    )
    for metric in ("speedup@2", "speedup@4"):
        gate.check(
            "distributed_fixpoint",
            metric,
            fresh.get(metric, 0.0),
            baseline.get(metric, 0.0),
        )


def check_batch_execution(gate, fresh, baseline):
    floor = fresh.get("required_spj_speedup", 2.0)
    gate.absolute(
        "batch_execution",
        "spj batched/tuple-at-a-time claim",
        fresh.get("spj_speedup@batched", 0.0),
        floor,
    )
    for metric in ("spj_speedup@batched", "contains_speedup@1024"):
        gate.check(
            "batch_execution",
            metric,
            fresh.get(metric, 0.0),
            baseline.get(metric, 0.0),
        )


def check_columnar_execution(gate, fresh, baseline):
    floor = fresh.get("required_spj_speedup", 1.5)
    # The claim is gated on the pure-Python kernels: columnar must beat
    # row on the scan+filter SPJ without numpy.  The numpy figures are
    # reported in the JSON but carry no floor.
    gate.absolute(
        "columnar_execution",
        "spj columnar/row claim (pure python)",
        fresh.get("spj_speedup@pure_python", 0.0),
        floor,
    )
    for metric in (
        "spj_speedup@pure_python",
        "contains_speedup@pure_python",
    ):
        gate.check(
            "columnar_execution",
            metric,
            fresh.get(metric, 0.0),
            baseline.get(metric, 0.0),
        )


def check_obs_overhead(gate, fresh, baseline):
    overhead = fresh.get("overhead", {})
    gate.absolute(
        "obs_overhead",
        "obs-on/off throughput claim",
        overhead.get("ratio", 0.0),
        overhead.get("required_ratio", 0.97),
    )
    capture = fresh.get("anomaly_capture", {})
    gate.absolute(
        "obs_overhead",
        "anomaly capture rate",
        capture.get("rate", 0.0),
        capture.get("required_rate", 0.95),
    )
    gate.boolean(
        "obs_overhead",
        "bundle replay matched",
        fresh.get("replay", {}).get("matched"),
    )


def check_enumeration(gate, fresh, baseline):
    def by_key(doc):
        return {
            (m["query"], m["config"]): m
            for m in doc.get("measurements", [])
        }

    fresh_rows, base_rows = by_key(fresh), by_key(baseline)
    for key, row in sorted(fresh_rows.items()):
        label = "{}/{}".format(*key)
        # The tentpole claims, re-checked from the committed JSON: the
        # enum plan costs no more than the best randomized plan
        # (cost_advantage = best_randomized/enum >= 1, with float
        # rounding slack), within the optimization-time budget
        # (time_budget_factor = required_factor*ii_median/enum >= 1).
        gate.absolute(
            "enumeration",
            f"cost advantage[{label}]",
            row["cost_advantage"],
            0.999,
        )
        gate.absolute(
            "enumeration",
            f"time budget[{label}]",
            row["time_budget_factor"],
            1.0,
        )
    for key, base in sorted(base_rows.items()):
        label = "{}/{}".format(*key)
        row = fresh_rows.get(key)
        if row is None:
            gate.note("enumeration", label, "missing", "-", None, False)
            continue
        # Plan quality must not silently drift relative to the
        # committed baseline (lower cost is better: baseline/fresh).
        gate.check(
            "enumeration",
            f"plan quality[{label}]",
            base["enum_cost"],
            row["enum_cost"],
        )


CHECKERS = {
    "BENCH_enumeration.json": check_enumeration,
    "BENCH_service_throughput.json": check_service_throughput,
    "BENCH_obs_overhead.json": check_obs_overhead,
    "BENCH_claim_strategy_time.json": check_strategy_time,
    "BENCH_feedback_calibration.json": check_feedback_calibration,
    "BENCH_parallel_fixpoint.json": check_parallel_fixpoint,
    "BENCH_distributed_fixpoint.json": check_distributed_fixpoint,
    "BENCH_batch_execution.json": check_batch_execution,
    "BENCH_columnar_execution.json": check_columnar_execution,
}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh",
        default="benchmarks/results",
        help="directory with freshly produced BENCH_*.json files",
    )
    parser.add_argument(
        "--baseline",
        required=True,
        help="directory with the committed baseline BENCH_*.json files",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.90,
        help="minimum fresh/baseline ratio (default 0.90)",
    )
    args = parser.parse_args(argv)

    gate = Gate(args.threshold)
    for name, checker in sorted(CHECKERS.items()):
        baseline_path = os.path.join(args.baseline, name)
        fresh_path = os.path.join(args.fresh, name)
        if not os.path.exists(baseline_path):
            continue  # benchmark newer than the baseline snapshot
        if not os.path.exists(fresh_path):
            gate.note(name, "fresh results", "missing", "-", None, False)
            continue
        checker(gate, load(fresh_path), load(baseline_path))

    if not gate.rows:
        print("no benchmark baselines found under", args.baseline)
        return 1
    print(gate.render())
    if gate.failed:
        print("\nbench-regression gate FAILED "
              f"(threshold {args.threshold:.2f})")
        return 1
    print(f"\nbench-regression gate passed (threshold {args.threshold:.2f})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
