"""COLUMNAR-EXECUTION — throughput of columnar vs. row-list batches.

The columnar refactor's speed claim is kernel amortization: a columnar
batch evaluates a predicate with one whole-column kernel call (a
C-level comprehension over a value list, or a numpy ufunc when the
``fast`` extra is active) instead of one compiled-closure call per
binding dict, and a projection gathers survivors by index instead of
rebuilding dicts row by row.  This benchmark measures it where the
claim is gated — a CPU-bound flat scan+filter SPJ whose per-tuple work
is exactly the kernelized part — plus the ``Contains`` closure of a
bill-of-materials assembly to show the recursive pipeline rides the
same substrate.

The headline number is measured with ``REPRO_NO_NUMPY=1``: the >=1.5x
columnar-over-row claim must hold on the pure-Python column kernels
alone, on a zero-dependency install.  The numpy-backed figures are
reported separately (the image ships numpy, so both are measured in
one run) but carry no floor of their own.

Every run at every (layout, backend) point must produce the identical
answer set, total tuple count and predicate_evals — the bench must
not claim speed for kernels that skip work.  The machine-readable twin
``results/BENCH_columnar_execution.json`` carries the speedups;
``check_regression.py`` holds the pure-Python scan+filter SPJ
columnar-over-row ratio to the >=1.5x claim.
"""

import os
import time

from repro.engine import Engine
from repro.plans.nodes import EntityLeaf, Fix, IJ, Proj, RecLeaf, Sel, UnionOp
from repro.querygraph.builder import add, and_, const, ge, le, out, path, var
from repro.querygraph.graph import OutputField, OutputSpec
from repro.querygraph.predicates import Comparison, Const, PathRef
from repro.workloads import MusicConfig, generate_music_database
from repro.workloads.parts import PartsConfig, generate_parts_database

BATCH_SIZE = 1024

#: Best-of-N per configuration; discards scheduler noise.
REPEATS = 7

REQUIRED_SPJ_SPEEDUP = 1.5

LAYOUTS = ("row", "columnar")


def build_music_db():
    """CPU-bound regime: everything fits in the buffer pool, so the
    measured time is pipeline overhead plus kernel/closure calls."""
    db = generate_music_database(
        MusicConfig(
            lineages=120,
            generations=50,
            works_per_composer=1,
            buffer_pages=65536,
            seed=1992,
        )
    )
    db.physical.refresh_statistics()
    return db


def build_parts_db():
    db = generate_parts_database(
        PartsConfig(
            assemblies=2,
            depth=6,
            fanout=4,
            sharing=0.0,
            buffer_pages=65536,
            seed=1992,
        )
    )
    db.physical.build_selection_index("Part", "pname")
    db.physical.refresh_statistics()
    return db


def scan_filter_spj_plan():
    """Scan + conjunctive range filter + projection over Composer
    (every record passes, so the full extent flows through all three
    operators — maximum kernel stress, the shape the >=1.5x claim is
    gated on)."""
    return Proj(
        Sel(
            EntityLeaf("Composer", "x"),
            and_(
                ge(path("x", "birthyear"), const(0)),
                le(path("x", "birthyear"), const(99999)),
            ),
        ),
        out(name=path("x", "name"), year=path("x", "birthyear")),
    )


ROOT = "assembly_root_0"


def contains_plan():
    """The ``Contains`` closure of one assembly as a pointer-join PT
    (the delta-driven recursive pipeline of the Section 5 workload:
    index-selected base part, one IJ hop ``r.component.subparts`` per
    delta tuple).  IJ expansion is inherently per-row, so the expected
    columnar result here is *parity*, not speedup — the workload pins
    that the recursive substrate pays no columnar tax."""
    base = Proj(
        IJ(
            Sel(
                EntityLeaf("Part", "p"),
                Comparison("=", PathRef("p", ("pname",)), Const(ROOT)),
            ),
            EntityLeaf("Part", "c"),
            PathRef("p", ("subparts",)),
            "c",
        ),
        OutputSpec(
            [
                OutputField("assembly", var("p")),
                OutputField("component", var("c")),
                OutputField("level", const(1)),
            ]
        ),
    )
    recursive = Proj(
        IJ(
            RecLeaf("Contains", "r"),
            EntityLeaf("Part", "c"),
            PathRef("r", ("component", "subparts")),
            "c",
        ),
        OutputSpec(
            [
                OutputField("assembly", path("r", "assembly")),
                OutputField("component", var("c")),
                OutputField("level", add(path("r", "level"), const(1))),
            ]
        ),
    )
    fix = Fix(
        "Contains",
        UnionOp(base, recursive),
        "k",
        recursion_entity="Part",
        recursion_attribute="subparts",
        invariant_fields=("assembly",),
    )
    return Proj(
        fix,
        OutputSpec(
            [
                OutputField("component", path("k", "component")),
                OutputField("level", path("k", "level")),
            ]
        ),
    )


def measure(db, plan, layout):
    best = None
    for _ in range(REPEATS):
        engine = Engine(db.physical, batch_size=BATCH_SIZE, batch_layout=layout)
        started = time.perf_counter()
        result = engine.execute(plan)
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best[0]:
            best = (elapsed, result)
    elapsed, result = best
    return {
        "layout": layout,
        "elapsed_s": round(elapsed, 4),
        "rows": len(result.rows),
        "rows_per_sec": round(len(result.rows) / elapsed) if elapsed else 0,
        "total_tuples": result.metrics.total_tuples,
        "predicate_evals": result.metrics.predicate_evals,
        "answers": result.answer_set(),
    }


def sweep(db, plan):
    """Row vs. columnar under one backend; asserts exact parity of
    answers and counters before claiming any speed."""
    measurements = [measure(db, plan, layout) for layout in LAYOUTS]
    row = measurements[0]
    want = row["answers"]
    for m in measurements:
        assert m["answers"] == want
        assert m["total_tuples"] == row["total_tuples"]
        assert m["predicate_evals"] == row["predicate_evals"]
        del m["answers"]
        m["speedup_vs_row"] = round(row["elapsed_s"] / m["elapsed_s"], 3)
    return measurements


def run_backend(workloads):
    return {
        name: sweep(db, plan) for name, db, plan in workloads
    }


def columnar_speedup(results, name):
    for m in results[name]:
        if m["layout"] == "columnar":
            return m["speedup_vs_row"]
    raise KeyError(name)


def test_columnar_execution_throughput(report, table):
    music_db = build_music_db()
    parts_db = build_parts_db()
    workloads = [
        ("spj_scan_filter", music_db, scan_filter_spj_plan()),
        ("contains_closure", parts_db, contains_plan()),
    ]

    had_no_numpy = os.environ.get("REPRO_NO_NUMPY")
    try:
        # Headline backend first: the claim is gated on pure Python.
        os.environ["REPRO_NO_NUMPY"] = "1"
        pure = run_backend(workloads)
    finally:
        if had_no_numpy is None:
            os.environ.pop("REPRO_NO_NUMPY", None)
        else:
            os.environ["REPRO_NO_NUMPY"] = had_no_numpy

    from repro.engine.columns import numpy_backend

    numpy_available = numpy_backend() is not None
    with_numpy = run_backend(workloads) if numpy_available else None

    rows = []
    backends = [("pure-python", pure)]
    if with_numpy is not None:
        backends.append(("numpy", with_numpy))
    for backend, results in backends:
        for name, _, _ in workloads:
            for m in results[name]:
                rows.append(
                    (
                        backend,
                        name,
                        m["layout"],
                        f"{m['elapsed_s']:.4f}",
                        f"{m['rows_per_sec']:,}",
                        f"{m['speedup_vs_row']:.2f}x",
                        m["total_tuples"],
                    )
                )

    spj_speedup = columnar_speedup(pure, "spj_scan_filter")
    data = {
        "batch_size": BATCH_SIZE,
        "repeats": REPEATS,
        "pure_python": pure,
        "spj_speedup@pure_python": spj_speedup,
        "contains_speedup@pure_python": columnar_speedup(
            pure, "contains_closure"
        ),
        "required_spj_speedup": REQUIRED_SPJ_SPEEDUP,
        "numpy_available": numpy_available,
    }
    if with_numpy is not None:
        data["numpy"] = with_numpy
        data["spj_speedup@numpy"] = columnar_speedup(
            with_numpy, "spj_scan_filter"
        )

    text = table(
        (
            "backend",
            "workload",
            "layout",
            "elapsed_s",
            "rows/sec",
            "vs row",
            "total_tuples",
        ),
        rows,
    )
    report("columnar_execution", text, data=data)

    assert spj_speedup >= REQUIRED_SPJ_SPEEDUP, (
        f"pure-Python columnar SPJ speedup {spj_speedup:.2f}x fell below "
        f"the {REQUIRED_SPJ_SPEEDUP}x over-row claim"
    )
