"""FIG4 — the two processing trees of Figure 4.

The optimizer materializes both plans for the Figure 3 query:

* PT (i) — selection *after* the fixpoint (push_policy="never");
* PT (ii) — selection (with its implicit joins) pushed *through* the
  fixpoint (push_policy="always", the deductive heuristic).

Both are executed; the benchmark asserts answer-set equality (the
transformation is semantics-preserving) and reports estimated and
measured costs side by side.  Which one wins depends on the physical
parameters — exactly the paper's point; the crossover benchmark sweeps
that dimension.
"""

import pytest

from repro.core import deductive_optimizer, naive_optimizer
from repro.cost import DetailedCostModel
from repro.engine import Engine, ReferenceEvaluator
from repro.plans import Fix, Sel, find_all, render_tree
from repro.workloads import MusicConfig, fig3_query, generate_music_database


def build_db():
    db = generate_music_database(
        MusicConfig(
            lineages=8,
            generations=8,
            works_per_composer=3,
            selective_fraction=0.15,
            seed=4,
        )
    )
    db.build_paper_indexes()
    return db


@pytest.fixture(scope="module")
def plans():
    db = build_db()
    graph = fig3_query()
    model = DetailedCostModel(db.physical)
    unpushed = naive_optimizer(db.physical, model).optimize(graph)
    pushed = deductive_optimizer(db.physical, model).optimize(graph)
    return db, graph, model, unpushed, pushed


def test_fig4_plans_shapes(plans, benchmark, report, table):
    db, graph, model, unpushed, pushed = plans
    # Timed quantity: re-deriving both plans from the query graph.
    from repro.workloads import fig3_query as fig3
    from repro.core import naive_optimizer as naive

    benchmark(lambda: naive(db.physical, model).optimize(fig3()))
    # PT (i): no selection inside the Fix body.
    fix_i = find_all(unpushed.plan, Fix)[0]
    assert not find_all(fix_i.body, Sel)
    # PT (ii): the harpsichord selection replicated into both parts.
    fix_ii = find_all(pushed.plan, Fix)[0]
    inner_sels = find_all(fix_ii.body, Sel)
    assert len(inner_sels) == 2
    # gen >= 6 stays outside the fixpoint in both (not pushable).
    for result in (unpushed, pushed):
        fix = find_all(result.plan, Fix)[0]
        outer = [
            s
            for s in find_all(result.plan, Sel)
            if "gen" in repr(s.predicate)
        ]
        assert outer
        assert not any(s in find_all(fix.body, Sel) for s in outer)
    report(
        "fig4_pt_i",
        render_tree(unpushed.plan) + "\n",
    )
    report(
        "fig4_pt_ii",
        render_tree(pushed.plan) + "\n",
    )


def test_fig4_execute_unpushed(plans, benchmark):
    db, _graph, _model, unpushed, _pushed = plans
    engine = Engine(db.physical)
    result = benchmark(lambda: engine.execute(unpushed.plan))
    assert len(result) >= 0


def test_fig4_execute_pushed(plans, benchmark):
    db, _graph, _model, _unpushed, pushed = plans
    engine = Engine(db.physical)
    result = benchmark(lambda: engine.execute(pushed.plan))
    assert len(result) >= 0


def test_fig4_equivalence_and_costs(plans, benchmark, report, table):
    db, graph, model, unpushed, pushed = plans
    engine = Engine(db.physical)

    def run_both():
        return engine.execute(unpushed.plan), engine.execute(pushed.plan)

    run_unpushed, run_pushed = benchmark(run_both)
    want = ReferenceEvaluator(db.physical).answer_set(graph)
    assert run_unpushed.answer_set() == want
    assert run_pushed.answer_set() == want

    rows = []
    for name, optimized, run in (
        ("PT (i) unpushed", unpushed, run_unpushed),
        ("PT (ii) pushed", pushed, run_pushed),
    ):
        rows.append(
            [
                name,
                f"{optimized.cost:.1f}",
                f"{run.metrics.measured_cost():.1f}",
                run.metrics.buffer.physical_reads,
                run.metrics.predicate_evals,
                f"{run.metrics.index_page_reads:.1f}",
                run.metrics.fix_iterations,
            ]
        )
    report(
        "fig4_costs",
        table(
            [
                "plan",
                "est. cost",
                "measured",
                "phys reads",
                "pred evals",
                "idx pages",
                "fix iters",
            ],
            rows,
        ),
    )
