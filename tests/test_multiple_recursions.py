"""Tests for queries involving more than one recursive view, and for
optimizer error paths on malformed recursion."""

import pytest

from repro.core import cost_controlled_optimizer
from repro.engine import Engine, ReferenceEvaluator
from repro.errors import QueryModelError
from repro.plans import Fix, find_all
from repro.querygraph.builder import (
    add,
    and_,
    arc,
    const,
    eq,
    ge,
    out,
    path,
    query,
    rule,
    spj,
    var,
)
from repro.workloads.queries import influencer_rules


def descendants_rules():
    """A second recursion: closure over works' authorship is silly, so
    close over master in the *opposite* direction — who a composer's
    (transitive) masters are, keyed by the disciple."""
    base = rule(
        "Ancestors",
        spj(
            [arc("Composer", x=".")],
            select=out(
                who=var("x"), ancestor=path("x", "master"), depth=const(1)
            ),
        ),
    )
    recursive = rule(
        "Ancestors",
        spj(
            [arc("Ancestors", a="."), arc("Composer", y=".")],
            where=eq(path("a", "ancestor"), var("y")),
            select=out(
                who=path("a", "who"),
                ancestor=path("y", "master"),
                depth=add(path("a", "depth"), const(1)),
            ),
        ),
    )
    return [base, recursive]


class TestTwoRecursions:
    def make_query(self):
        """Join the two closures: pairs where X influenced Y exactly as
        far down as Y has ancestors up (a contrived but well-defined
        cross-recursion join)."""
        p1, p2 = influencer_rules()
        a1, a2 = descendants_rules()
        answer = rule(
            "Answer",
            spj(
                [arc("Influencer", i="."), arc("Ancestors", a=".")],
                where=and_(
                    eq(path("i", "disciple"), path("a", "who")),
                    eq(path("i", "gen"), path("a", "depth")),
                ),
                select=out(
                    who=path("a", "who", "name"), gen=path("i", "gen")
                ),
            ),
        )
        return query(p1, p2, a1, a2, answer)

    def test_two_fix_nodes_generated(self, indexed_db):
        result = cost_controlled_optimizer(indexed_db.physical).optimize(
            self.make_query()
        )
        fixes = find_all(result.plan, Fix)
        assert {fix.name for fix in fixes} == {"Influencer", "Ancestors"}

    def test_answers_match_reference(self, indexed_db):
        graph = self.make_query()
        result = cost_controlled_optimizer(indexed_db.physical).optimize(graph)
        got = Engine(indexed_db.physical).execute(result.plan).answer_set()
        want = ReferenceEvaluator(indexed_db.physical).answer_set(graph)
        assert got == want
        assert want  # the join is non-empty on chain-structured data

    def test_both_invariant_analyses_independent(self, indexed_db):
        from repro.querygraph.views import analyze_recursion

        graph = self.make_query()
        influencer = analyze_recursion(graph, "Influencer")
        ancestors = analyze_recursion(graph, "Ancestors")
        assert influencer.invariant_fields == {"master"}
        assert ancestors.invariant_fields == {"who"}


class TestMalformedRecursion:
    def test_nonlinear_recursion_rejected(self, indexed_db):
        base = rule(
            "Pairs",
            spj(
                [arc("Composer", x=".")],
                select=out(a=var("x"), b=path("x", "master")),
            ),
        )
        nonlinear = rule(
            "Pairs",
            spj(
                [arc("Pairs", p="."), arc("Pairs", q=".")],
                where=eq(path("p", "b"), path("q", "a")),
                select=out(a=path("p", "a"), b=path("q", "b")),
            ),
        )
        answer = rule(
            "Answer",
            spj([arc("Pairs", r=".")], select=out(a=path("r", "a"))),
        )
        graph = query(base, nonlinear, answer)
        with pytest.raises(QueryModelError):
            cost_controlled_optimizer(indexed_db.physical).optimize(graph)

    def test_recursion_without_base_rejected(self, indexed_db):
        only_recursive = rule(
            "Loop",
            spj(
                [arc("Loop", l="."), arc("Composer", x=".")],
                where=eq(path("l", "a"), var("x")),
                select=out(a=path("x", "master")),
            ),
        )
        answer = rule(
            "Answer", spj([arc("Loop", v=".")], select=out(a=path("v", "a")))
        )
        graph = query(only_recursive, answer)
        with pytest.raises(QueryModelError):
            cost_controlled_optimizer(indexed_db.physical).optimize(graph)
