"""Tests for consumed-variable analysis, lazy PIJ fetching and the
simplified model's identity-size mode."""

import pytest

from repro.cost import SimplifiedCostModel
from repro.engine import Engine
from repro.plans import (
    EJ,
    IJ,
    PIJ,
    EntityLeaf,
    Fix,
    Proj,
    RecLeaf,
    Sel,
    UnionOp,
)
from repro.plans.patterns import consumed_variables
from repro.querygraph.builder import add, const, eq, ge, out, path, var


def pij_plan(project_intermediate: bool):
    fields = (
        out(n=path("x", "name"), title=path("w", "title"))
        if project_intermediate
        else out(n=path("x", "name"))
    )
    return Proj(
        Sel(
            PIJ(
                EntityLeaf("Composer", "x"),
                [EntityLeaf("Composition", "w"), EntityLeaf("Instrument", "i")],
                ["works", "instruments"],
                var("x"),
                ["w", "i"],
            ),
            eq(path("i", "name"), const("harpsichord")),
        ),
        fields,
    )


class TestConsumedVariables:
    def test_collects_from_all_operator_kinds(self):
        plan = pij_plan(project_intermediate=True)
        consumed = consumed_variables(plan)
        assert consumed == {"x", "w", "i"}

    def test_unused_intermediate_not_consumed(self):
        plan = pij_plan(project_intermediate=False)
        consumed = consumed_variables(plan)
        assert "w" not in consumed
        assert {"x", "i"} <= consumed

    def test_ej_and_ij_sources_counted(self):
        plan = Proj(
            IJ(
                EJ(
                    EntityLeaf("Composer", "a"),
                    EntityLeaf("Composer", "b"),
                    eq(path("a", "master"), path("b", "master")),
                ),
                EntityLeaf("Composer", "m"),
                path("a", "master"),
                "m",
            ),
            out(n=path("m", "name")),
        )
        assert consumed_variables(plan) == {"a", "b", "m"}


class TestLazyPIJFetch:
    def test_unconsumed_target_not_fetched(self, indexed_db):
        engine = Engine(indexed_db.physical)
        indexed_db.store.buffer.clear()
        lean = engine.execute(pij_plan(project_intermediate=False))
        lean_reads = lean.metrics.buffer.logical_reads
        indexed_db.store.buffer.clear()
        full = engine.execute(pij_plan(project_intermediate=True))
        full_reads = full.metrics.buffer.logical_reads
        # Fetching the Composition records costs strictly more reads.
        assert lean_reads < full_reads

    def test_answers_unaffected(self, indexed_db):
        engine = Engine(indexed_db.physical)
        lean = engine.execute(pij_plan(project_intermediate=False))
        names = {row["n"] for row in lean.rows}
        full = engine.execute(pij_plan(project_intermediate=True))
        assert names == {row["n"] for row in full.rows}


class TestIdentitySizes:
    def make_fix(self):
        base = Proj(
            EntityLeaf("Composer", "x"),
            out(master=path("x", "master"), disciple=var("x"), gen=const(1)),
        )
        recursive = Proj(
            EJ(
                RecLeaf("Influencer", "i"),
                EntityLeaf("Composer", "x"),
                eq(path("i", "disciple"), path("x", "master")),
            ),
            out(
                master=path("i", "master"),
                disciple=var("x"),
                gen=add(path("i", "gen"), const(1)),
            ),
        )
        return Fix(
            "Influencer",
            UnionOp(base, recursive),
            "i",
            "Composer",
            "master",
            {"master"},
        )

    def test_selection_does_not_shrink(self, indexed_db):
        """Under identity sizes a selective filter does not reduce the
        stream, so a *downstream* operator stays as expensive as the
        upstream one; under estimated sizes it gets cheaper."""
        plan = Sel(
            Sel(
                Proj(EntityLeaf("Composer", "x"), out(n=path("x", "name"))),
                eq(var("n"), const("Bach")),
            ),
            eq(var("n"), const("Bach")),
        )
        identity_rows = SimplifiedCostModel(
            indexed_db.physical, identity_sizes=True
        ).table(plan, symbolic=False)
        estimated_rows = SimplifiedCostModel(indexed_db.physical).table(
            plan, symbolic=False
        )
        # The second selection's input: unshrunk vs shrunk to ~1 tuple.
        assert identity_rows[-1].formula >= estimated_rows[-1].formula

    def test_fix_cost_finite_under_identity(self, indexed_db):
        model = SimplifiedCostModel(indexed_db.physical, identity_sizes=True)
        cost = model.cost(self.make_fix())
        estimated = SimplifiedCostModel(indexed_db.physical).cost(self.make_fix())
        assert 0 < cost < 1e9
        assert 0 < estimated < 1e9

    def test_identity_mode_costs_more_for_filtered_fix(self, indexed_db):
        """A filter inside the fixpoint shrinks deltas under estimated
        sizes but not under identity sizes, so identity costs more."""
        fix = self.make_fix()
        base, recursive = fix.body.left, fix.body.right
        filtered = Fix(
            fix.name,
            UnionOp(
                Proj(
                    Sel(base.child, eq(path("x", "name"), const("Bach"))),
                    base.fields,
                ),
                recursive,
            ),
            fix.out_var,
            fix.recursion_entity,
            fix.recursion_attribute,
            set(fix.invariant_fields),
        )
        identity = SimplifiedCostModel(indexed_db.physical, identity_sizes=True)
        estimated = SimplifiedCostModel(indexed_db.physical)
        assert identity.cost(filtered) > estimated.cost(filtered)
