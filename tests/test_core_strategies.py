"""Tests for local moves and search strategies."""

import pytest

from repro.core.moves import neighbors
from repro.core.strategies import (
    ExhaustiveSearch,
    IterativeImprovement,
    SimulatedAnnealing,
    TwoPhase,
)
from repro.cost import DetailedCostModel
from repro.engine import Engine
from repro.plans import (
    EJ,
    IJ,
    INDEX_JOIN,
    NESTED_LOOP,
    PIJ,
    EntityLeaf,
    Proj,
    Sel,
    find_all,
    validate_plan,
)
from repro.querygraph.builder import and_, const, eq, ge, out, path, var


def chain_plan():
    """An IJ chain over works.instruments (collapsible via path index)."""
    return Proj(
        Sel(
            IJ(
                IJ(
                    EntityLeaf("Composer", "x"),
                    EntityLeaf("Composition", "w"),
                    path("x", "works"),
                    "w",
                ),
                EntityLeaf("Instrument", "ins"),
                path("w", "instruments"),
                "ins",
            ),
            eq(path("ins", "name"), const("harpsichord")),
        ),
        out(n=path("x", "name")),
    )


def join_plan():
    return Proj(
        EJ(
            Sel(EntityLeaf("Composer", "a"), eq(path("a", "name"), const("Bach"))),
            EntityLeaf("Composer", "b"),
            eq(path("a", "name"), path("b", "name")),
        ),
        out(n=path("b", "name")),
    )


class TestMoves:
    def test_collapse_move_produces_pij(self, indexed_db):
        options = neighbors(chain_plan(), indexed_db.physical)
        collapsed = [plan for desc, plan in options if desc.startswith("collapse")]
        assert collapsed
        assert find_all(collapsed[0], PIJ)
        validate_plan(collapsed[0], indexed_db.physical)

    def test_collapse_preserves_answers(self, indexed_db):
        engine = Engine(indexed_db.physical)
        original = chain_plan()
        options = neighbors(original, indexed_db.physical)
        collapsed = [plan for desc, plan in options if desc.startswith("collapse")][0]
        assert (
            engine.execute(original).answer_set()
            == engine.execute(collapsed).answer_set()
        )

    def test_expand_inverts_collapse(self, indexed_db):
        original = chain_plan()
        options = neighbors(original, indexed_db.physical)
        collapsed = [plan for desc, plan in options if desc.startswith("collapse")][0]
        expansions = [
            plan
            for desc, plan in neighbors(collapsed, indexed_db.physical)
            if desc.startswith("expand")
        ]
        assert expansions
        validate_plan(expansions[0], indexed_db.physical)
        engine = Engine(indexed_db.physical)
        assert (
            engine.execute(expansions[0]).answer_set()
            == engine.execute(original).answer_set()
        )

    def test_swap_join_move(self, indexed_db):
        options = neighbors(join_plan(), indexed_db.physical)
        swapped = [plan for desc, plan in options if desc == "swap-join"]
        assert swapped
        join = find_all(swapped[0], EJ)[0]
        assert isinstance(join.left, EntityLeaf)
        engine = Engine(indexed_db.physical)
        assert (
            engine.execute(swapped[0]).answer_set()
            == engine.execute(join_plan()).answer_set()
        )

    def test_index_join_toggle(self, indexed_db):
        options = neighbors(join_plan(), indexed_db.physical)
        toggled = [plan for desc, plan in options if desc == "index-join"]
        assert toggled
        assert find_all(toggled[0], EJ)[0].algorithm == INDEX_JOIN
        back = [
            plan
            for desc, plan in neighbors(toggled[0], indexed_db.physical)
            if desc == "nested-loop"
        ]
        assert back
        assert find_all(back[0], EJ)[0].algorithm == NESTED_LOOP

    def test_all_neighbors_valid(self, indexed_db):
        for _desc, plan in neighbors(chain_plan(), indexed_db.physical):
            validate_plan(plan, indexed_db.physical)
        for _desc, plan in neighbors(join_plan(), indexed_db.physical):
            validate_plan(plan, indexed_db.physical)


class TestStrategies:
    @pytest.fixture()
    def cost_fn(self, indexed_db):
        model = DetailedCostModel(indexed_db.physical)
        return lambda plan: model.cost(plan)

    def test_iterative_improvement_never_worsens(self, indexed_db, cost_fn):
        start = chain_plan()
        result = IterativeImprovement(seed=1).search(
            start, cost_fn, indexed_db.physical
        )
        assert result.cost <= cost_fn(start)
        assert result.plans_costed >= 1
        validate_plan(result.plan, indexed_db.physical)

    def test_iterative_improvement_deterministic_per_seed(
        self, indexed_db, cost_fn
    ):
        first = IterativeImprovement(seed=3).search(
            chain_plan(), cost_fn, indexed_db.physical
        )
        second = IterativeImprovement(seed=3).search(
            chain_plan(), cost_fn, indexed_db.physical
        )
        assert first.cost == second.cost
        assert first.plan == second.plan

    def test_simulated_annealing_returns_best_seen(self, indexed_db, cost_fn):
        start = chain_plan()
        result = SimulatedAnnealing(seed=5).search(
            start, cost_fn, indexed_db.physical
        )
        assert result.cost <= cost_fn(start)
        validate_plan(result.plan, indexed_db.physical)

    def test_two_phase_combines(self, indexed_db, cost_fn):
        start = chain_plan()
        result = TwoPhase(seed=7).search(start, cost_fn, indexed_db.physical)
        assert result.cost <= cost_fn(start)

    def test_exhaustive_at_least_as_good(self, indexed_db, cost_fn):
        start = chain_plan()
        exhaustive = ExhaustiveSearch(max_plans=500).search(
            start, cost_fn, indexed_db.physical
        )
        improving = IterativeImprovement(seed=1).search(
            start, cost_fn, indexed_db.physical
        )
        assert exhaustive.cost <= improving.cost + 1e-9

    def test_exhaustive_counts_plans(self, indexed_db, cost_fn):
        result = ExhaustiveSearch(max_plans=500).search(
            chain_plan(), cost_fn, indexed_db.physical
        )
        assert result.plans_costed >= 2
