"""Edge-case coverage: expression evaluation errors, nested fixpoints,
buffer management, error hierarchy, display of uncommon nodes."""

import pytest

from repro.engine import Engine, ExpressionEvaluator, RuntimeMetrics
from repro.engine.eval_expr import canonical_row, normalize_value
from repro.errors import (
    ExecutionError,
    LanguageError,
    LexError,
    OptimizationError,
    ParseError,
    PlanError,
    QueryModelError,
    ReproError,
    SchemaError,
    StorageError,
)
from repro.plans import (
    EJ,
    EntityLeaf,
    Fix,
    Materialize,
    Proj,
    RecLeaf,
    Sel,
    UnionOp,
    render_functional,
    render_tree,
)
from repro.querygraph.builder import add, const, eq, fn, ge, out, path, var


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for error_type in (
            ExecutionError,
            LanguageError,
            LexError,
            OptimizationError,
            ParseError,
            PlanError,
            QueryModelError,
            SchemaError,
            StorageError,
        ):
            assert issubclass(error_type, ReproError)

    def test_lex_error_carries_position(self):
        error = LexError("bad char", 3, 7)
        assert error.line == 3 and error.column == 7
        assert "line 3" in str(error)


class TestExpressionEvaluator:
    def make_evaluator(self, small_db):
        return ExpressionEvaluator(
            small_db.store, RuntimeMetrics(), charged=False
        )

    def test_unbound_variable_raises(self, small_db):
        evaluator = self.make_evaluator(small_db)
        with pytest.raises(ExecutionError):
            evaluator.path_values({}, path("ghost", "name"))

    def test_attribute_on_atomic_raises(self, small_db):
        evaluator = self.make_evaluator(small_db)
        with pytest.raises(ExecutionError):
            evaluator.path_values({"v": 42}, path("v", "name"))

    def test_missing_tuple_field_raises(self, small_db):
        evaluator = self.make_evaluator(small_db)
        with pytest.raises(ExecutionError):
            evaluator.path_values({"v": {"a": 1}}, path("v", "b"))

    def test_function_without_implementation_raises(self, small_db):
        evaluator = self.make_evaluator(small_db)
        expr = fn("mystery", const(1))
        with pytest.raises(ExecutionError):
            evaluator.expr_values({}, expr)

    def test_comparison_type_mismatch_is_false(self, small_db):
        evaluator = self.make_evaluator(small_db)
        predicate = ge(const("text"), const(5))
        assert evaluator.holds({}, predicate) is False

    def test_normalize_record_to_oid(self, small_db):
        record = small_db.store.extent("Composer").records[0]
        assert normalize_value(record) == record.oid

    def test_canonical_row_orders_keys(self):
        assert canonical_row({"b": 2, "a": 1}) == (("a", 1), ("b", 2))


class TestNestedFixpoints:
    def test_fix_inside_fix_body(self, indexed_db):
        """An (artificial) nested fixpoint: the outer recursion's base
        part contains a complete inner fixpoint."""
        inner_base = Proj(
            EntityLeaf("Composer", "x"),
            out(a=var("x"), b=path("x", "master")),
        )
        inner_rec = Proj(
            EJ(
                RecLeaf("Inner", "r"),
                EntityLeaf("Composer", "y"),
                eq(path("r", "b"), var("y")),
            ),
            out(a=path("r", "a"), b=path("y", "master")),
        )
        inner_fix = Fix(
            "Inner",
            UnionOp(inner_base, inner_rec),
            "inner",
            "Composer",
            "master",
            {"a"},
        )
        outer_base = Proj(
            inner_fix,
            out(a=path("inner", "a"), b=path("inner", "b"), k=const(0)),
        )
        outer_rec = Proj(
            Sel(RecLeaf("Outer", "o"), ge(path("o", "k"), const(1))),
            out(a=path("o", "a"), b=path("o", "b"), k=add(path("o", "k"), const(1))),
        )
        outer_fix = Fix("Outer", UnionOp(outer_base, outer_rec), "out")
        engine = Engine(indexed_db.physical)
        result = engine.execute(Proj(outer_fix, out(a=path("out", "a"))))
        # The inner closure: (descendant, ancestor) pairs. The outer
        # adds nothing (its recursive part filters k >= 1, never true).
        assert len(result) > 0

    def test_rec_leaf_of_wrong_fix_rejected(self, indexed_db):
        body = UnionOp(
            Proj(EntityLeaf("Composer", "x"), out(a=var("x"))),
            Proj(
                Sel(RecLeaf("Other", "r"), ge(const(1), const(0))),
                out(a=path("r", "a")),
            ),
        )
        fix = Fix("Mine", body, "m")
        engine = Engine(indexed_db.physical)
        from repro.errors import PlanError as PE

        with pytest.raises((PE, ExecutionError)):
            engine.execute(Proj(fix, out(a=path("m", "a"))))


class TestBufferManagement:
    def test_clear_preserves_counters(self, small_db):
        buffer = small_db.store.buffer
        list(small_db.store.scan("Composer"))
        reads = buffer.stats.logical_reads
        buffer.clear()
        assert buffer.stats.logical_reads == reads
        assert buffer.resident_count() == 0

    def test_reset_stats(self, small_db):
        buffer = small_db.store.buffer
        list(small_db.store.scan("Composer"))
        buffer.reset_stats()
        assert buffer.stats.logical_reads == 0


class TestDisplayUncommonNodes:
    def test_materialize_functional_rendering(self):
        plan = Materialize(
            "V", Proj(EntityLeaf("C", "x"), out(a=var("x"))), "v"
        )
        assert render_functional(plan).startswith("Mat(V,")
        assert "Materialize[V]" in render_tree(plan)

    def test_rec_leaf_rendering(self):
        leaf = RecLeaf("R", "r")
        assert render_functional(leaf) == "R"
        assert leaf.label() == "ΔR"
