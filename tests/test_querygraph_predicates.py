"""Tests for predicate/expression ASTs and conjunct manipulation."""

import pytest

from repro.errors import InvalidPredicateError
from repro.querygraph.builder import (
    add,
    and_,
    const,
    eq,
    fn,
    ge,
    gt,
    le,
    lt,
    ne,
    not_,
    or_,
    path,
    true,
    var,
)
from repro.querygraph.predicates import (
    And,
    Arith,
    Comparison,
    Const,
    FunctionApp,
    Not,
    Or,
    PathRef,
    TruePredicate,
    conjoin,
    conjuncts,
)


class TestExpressions:
    def test_pathref_variables_and_dotted(self):
        p = path("x", "works", "title")
        assert p.variables() == {"x"}
        assert p.dotted() == "x.works.title"

    def test_pathref_extend(self):
        assert path("x", "a").extend("b") == path("x", "a", "b")

    def test_const_has_no_variables(self):
        assert const(5).variables() == set()
        assert const(5).paths() == []

    def test_substitute_prepends_path(self):
        original = path("v", "name")
        substituted = original.substitute({"v": path("x", "master")})
        assert substituted == path("x", "master", "name")

    def test_substitute_const_into_bare_var(self):
        assert var("v").substitute({"v": const(3)}) == const(3)

    def test_substitute_const_under_path_raises(self):
        with pytest.raises(InvalidPredicateError):
            path("v", "name").substitute({"v": const(3)})

    def test_function_app_collects_variables(self):
        f = fn("g", path("a", "x"), path("b", "y"))
        assert f.variables() == {"a", "b"}
        assert len(f.paths()) == 2

    def test_arith_operators(self):
        expr = add(path("i", "gen"), const(1))
        assert isinstance(expr, Arith)
        assert expr.fn(2, 1) == 3

    def test_unknown_arith_op_rejected(self):
        with pytest.raises(InvalidPredicateError):
            Arith("%", const(1), const(2))

    def test_expression_equality_and_hash(self):
        assert path("x", "a") == path("x", "a")
        assert hash(path("x", "a")) == hash(path("x", "a"))
        assert path("x", "a") != path("x", "b")


class TestPredicates:
    def test_comparison_ops(self):
        for builder, op in (
            (eq, "="),
            (ne, "!="),
            (lt, "<"),
            (le, "<="),
            (gt, ">"),
            (ge, ">="),
        ):
            comparison = builder(var("x"), const(1))
            assert comparison.op == op

    def test_double_equals_normalized(self):
        assert Comparison("==", var("x"), const(1)).op == "="

    def test_unknown_op_rejected(self):
        with pytest.raises(InvalidPredicateError):
            Comparison("~", var("x"), const(1))

    def test_and_flattens(self):
        nested = And(And(eq(var("a"), const(1)), eq(var("b"), const(2))),
                     eq(var("c"), const(3)))
        assert len(nested.parts) == 3

    def test_and_drops_true(self):
        combined = And(true(), eq(var("a"), const(1)))
        assert len(combined.parts) == 1

    def test_or_requires_two(self):
        with pytest.raises(InvalidPredicateError):
            Or(eq(var("a"), const(1)))

    def test_or_flattens(self):
        nested = or_(or_(eq(var("a"), const(1)), eq(var("b"), const(2))),
                     eq(var("c"), const(3)))
        assert len(nested.parts) == 3

    def test_not_variables(self):
        assert not_(eq(path("x", "a"), const(1))).variables() == {"x"}

    def test_predicate_substitution(self):
        predicate = eq(path("v", "name"), const("Bach"))
        rewritten = predicate.substitute({"v": path("x", "master")})
        assert rewritten == eq(path("x", "master", "name"), const("Bach"))


class TestConjuncts:
    def test_true_gives_empty(self):
        assert conjuncts(TruePredicate()) == []

    def test_single_predicate(self):
        predicate = eq(var("x"), const(1))
        assert conjuncts(predicate) == [predicate]

    def test_and_splits(self):
        a = eq(var("x"), const(1))
        b = eq(var("y"), const(2))
        assert conjuncts(and_(a, b)) == [a, b]

    def test_or_stays_whole(self):
        disjunction = or_(eq(var("x"), const(1)), eq(var("y"), const(2)))
        assert conjuncts(disjunction) == [disjunction]

    def test_conjoin_inverse(self):
        a = eq(var("x"), const(1))
        b = eq(var("y"), const(2))
        assert conjoin([a, b]) == and_(a, b)
        assert conjoin([a]) == a
        assert isinstance(conjoin([]), TruePredicate)

    def test_conjoin_filters_true(self):
        a = eq(var("x"), const(1))
        assert conjoin([TruePredicate(), a]) == a
