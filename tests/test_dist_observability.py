"""Distributed observability: trace-context propagation and lane
stitching, barrier-wait accounting, failure-path traces, exchange
frame/byte pinning under splits, distributed EXPLAIN ANALYZE
est-vs-act terms, skew recalibration from production actuals, and the
live ``progress`` / ``repro top`` surface."""

import json
import logging
import threading

import pytest

from repro.core import cost_controlled_optimizer
from repro.cost import CostParameters, DetailedCostModel
from repro.dist import ShardCluster, decode_tuples, encode_tuples
from repro.dist import exchange
from repro.dist.shard import ShardSession
from repro.engine import Engine
from repro.obs import (
    FeedbackConfig,
    FeedbackManager,
    PlanProfiler,
    ProgressTracker,
    Tracer,
    build_explain,
    build_observation,
)
from repro.service import protocol
from repro.workloads import MusicConfig, generate_music_database
from repro.workloads.queries import fig3_query


@pytest.fixture(scope="module")
def music_db():
    # Few lineages over several generations: hash-partitioning the
    # delta leaves some shards consistently heavier, so observed skew
    # is strictly above 1 at width 4 (the recalibration test needs a
    # genuinely skewed workload).
    db = generate_music_database(
        MusicConfig(lineages=2, generations=6, works_per_composer=2, seed=13)
    )
    db.build_paper_indexes()
    return db


@pytest.fixture(scope="module")
def fig3_plan(music_db):
    graph = fig3_query()
    return cost_controlled_optimizer(music_db.physical).optimize(graph).plan


def _lane_names(chrome: dict):
    return {
        event["tid"]: event["args"]["name"]
        for event in chrome["traceEvents"]
        if event["ph"] == "M" and event["name"] == "thread_name"
    }


def _spans(chrome: dict, name=None):
    return [
        event
        for event in chrome["traceEvents"]
        if event["ph"] == "X" and (name is None or event["name"] == name)
    ]


# -- exchange counting under splits ------------------------------------------


def test_split_twice_counts_every_frame_exactly_once(monkeypatch):
    """A payload whose encoding splits twice (full -> halves -> both
    halves split again) produces dense seq numbers and stats that pin
    the emitted frame/byte counts — no double counting of the
    intermediate chunks that never hit the wire."""
    tuples = [{"k": i, "pad": "x" * 120} for i in range(8)]
    full = len(protocol.encode({"op": "delta", "tuples": tuples}))
    # A limit between a quarter and half of the full payload forces
    # exactly two levels of halving: 8 -> 4+4 -> 2+2+2+2.
    monkeypatch.setattr(protocol, "MAX_LINE_BYTES", full // 3)
    frames = encode_tuples("delta", "f", 1, 0, tuples)
    assert len(frames) == 4
    assert all(len(frame) <= full // 3 for frame in frames)
    assert decode_tuples(frames) == tuples
    seqs = [protocol.decode(frame)["seq"] for frame in frames]
    assert seqs == [0, 1, 2, 3]  # dense: split chunks never claim a seq
    stats = exchange.ExchangeStats()
    stats.count(frames, len(tuples))
    assert stats.frames == 4
    assert stats.tuples == 8
    assert stats.bytes == sum(len(frame) for frame in frames)


def test_trace_id_rides_in_every_frame():
    frames = encode_tuples("result", "f", 0, 2, [{"a": 1}], trace_id="req9")
    assert all(protocol.decode(f)["trace"] == "req9" for f in frames)
    bare = encode_tuples("result", "f", 0, 2, [{"a": 1}])
    assert all("trace" not in protocol.decode(f) for f in bare)


# -- stitched multi-lane traces ----------------------------------------------


def test_stitched_trace_has_one_lane_per_shard(music_db, fig3_plan):
    tracer = Tracer(trace_id="req-lanes")
    with ShardCluster(music_db.physical, 4) as cluster:
        engine = Engine(music_db.physical, shards=4, cluster=cluster)
        engine.tracer = tracer
        engine.request_id = "req-lanes"
        engine.execute(fig3_plan)
    chrome = tracer.to_chrome_trace()
    lanes = _lane_names(chrome)
    assert lanes[1] == "coordinator"
    assert set(lanes.values()) == {
        "coordinator",
        "shard0",
        "shard1",
        "shard2",
        "shard3",
    }
    # Every shard lane recorded the full per-round span taxonomy.
    by_lane = {}
    for event in _spans(chrome):
        by_lane.setdefault(lanes[event["tid"]], set()).add(event["name"])
    for shard in range(4):
        assert {"round", "exchange_send"} <= by_lane[f"shard{shard}"]
    assert {"fix", "partition", "barrier_wait", "gather", "cleanup"} <= by_lane[
        "coordinator"
    ]
    # Trace-context propagation: the shards' round spans carry the
    # coordinator's trace id.
    rounds = _spans(chrome, "round")
    assert rounds
    assert all(e["args"]["trace_id"] == "req-lanes" for e in rounds)
    assert all(e["args"]["request"] == "req-lanes" for e in rounds)


def test_barrier_wait_spans_sum_to_measured_wait(music_db, fig3_plan):
    tracer = Tracer()
    with ShardCluster(music_db.physical, 2) as cluster:
        engine = Engine(music_db.physical, shards=2, cluster=cluster)
        engine.tracer = tracer
        execution = engine.execute(fig3_plan)
    chrome = tracer.to_chrome_trace()
    waits = _spans(chrome, "barrier_wait")
    assert len(waits) == execution.metrics.exchange_rounds
    span_sum = sum(e["dur"] for e in waits) / 1e6
    measured = execution.metrics.barrier_wait_seconds
    assert measured > 0
    # The spans sit directly inside the measured window: never longer,
    # and within bookkeeping noise of it.
    assert span_sum <= measured + 1e-6
    assert measured - span_sum < 0.05


def test_trace_disabled_costs_nothing(music_db, fig3_plan):
    """Without a tracer the distributed path still runs (NULL_TRACER
    everywhere) and the engine records no lanes."""
    with ShardCluster(music_db.physical, 2) as cluster:
        engine = Engine(music_db.physical, shards=2, cluster=cluster)
        execution = engine.execute(fig3_plan)
    assert execution.metrics.shards_used == 2
    assert engine.tracer.enabled is False


# -- failure-path tracing -----------------------------------------------------


def test_failing_shard_yields_stitched_trace_with_error_span(
    music_db, fig3_plan, monkeypatch, caplog
):
    real_evaluate = ShardSession.evaluate
    calls = {"n": 0}

    def failing_evaluate(self, part, env):
        calls["n"] += 1
        if calls["n"] > 2:
            raise RuntimeError("shard exploded")
        return real_evaluate(self, part, env)

    monkeypatch.setattr(ShardSession, "evaluate", failing_evaluate)
    tracer = Tracer(trace_id="req-fail")
    before = set(music_db.physical.store.extent_names())
    with ShardCluster(music_db.physical, 2) as cluster:
        engine = Engine(music_db.physical, shards=2, cluster=cluster)
        engine.tracer = tracer
        engine.request_id = "req-fail"
        with caplog.at_level(logging.ERROR, logger="repro.dist"):
            with pytest.raises(RuntimeError, match="shard exploded") as info:
                engine.execute(fig3_plan)
    # The error names its origin: request id, shard, round.
    assert "request req-fail shard" in str(info.value)
    assert any("req-fail" in record.message for record in caplog.records)
    # The stitched trace is still well-formed: coordinator + shard
    # lanes, an error span on the failing shard's round, and the
    # cleanup events recording the staging drops.
    chrome = tracer.to_chrome_trace()
    json.dumps(chrome)  # must serialize
    lanes = _lane_names(chrome)
    assert set(lanes.values()) >= {"coordinator", "shard0", "shard1"}
    errored = [
        e for e in _spans(chrome) if "error" in e.get("args", {})
    ]
    assert any(e["name"] == "round" for e in errored)
    assert any("RuntimeError" in e["args"]["error"] for e in errored)
    cleanups = [
        e
        for e in chrome["traceEvents"]
        if e["ph"] == "i" and e["name"] == "staging_cleanup"
    ]
    assert len(cleanups) == 2  # one per shard session
    # And cleanup actually happened: no leaked temps or staging extents.
    assert set(music_db.physical.store.extent_names()) == before


def test_shard_threads_carry_request_id(music_db, fig3_plan, monkeypatch):
    real_evaluate = ShardSession.evaluate
    seen = []

    def recording_evaluate(self, part, env):
        seen.append(threading.current_thread().name)
        return real_evaluate(self, part, env)

    monkeypatch.setattr(ShardSession, "evaluate", recording_evaluate)
    with ShardCluster(music_db.physical, 2) as cluster:
        engine = Engine(music_db.physical, shards=2, cluster=cluster)
        engine.request_id = "req-name"
        engine.execute(fig3_plan)
    assert seen
    assert all(name.startswith("shard") for name in seen)
    assert all(name.endswith("-req-name") for name in seen)


# -- distributed EXPLAIN ANALYZE ---------------------------------------------


def test_explain_analyze_pairs_distributed_est_and_act(music_db, fig3_plan):
    params = CostParameters()
    params.shards = 4
    model = DetailedCostModel(music_db.physical, params)
    profiler = PlanProfiler()
    with ShardCluster(music_db.physical, 4) as cluster:
        engine = Engine(music_db.physical, shards=4, cluster=cluster)
        engine.execute(fig3_plan, profiler=profiler)
    tree = build_explain(fig3_plan, model, profiler)
    fixes = [
        node
        for node in tree.by_id.values()
        if node.kind == "Fix" and node.distributed is not None
    ]
    assert fixes, "sharded Fix node should carry distributed est-vs-act"
    dist = fixes[0].distributed
    for term in ("network", "disk", "skew"):
        assert term in dist["est"]
        assert term in dist["act"]
    assert dist["est"]["shards"] == 4
    assert dist["act"]["exchange_tuples"] > 0
    assert dist["act"]["skew"] >= 1.0
    # Rendered and serialized forms both carry the row.
    lines = fixes[0].extra_lines()
    assert any(line.startswith("[distributed:") for line in lines)
    payload = tree.to_dict()
    assert '"distributed"' in json.dumps(payload)


# -- skew recalibration from production actuals -------------------------------


def test_recalibration_strictly_reduces_distributed_misestimate(
    music_db, fig3_plan
):
    params = CostParameters()
    params.shards = 4
    model = DetailedCostModel(music_db.physical, params)
    manager = FeedbackManager(FeedbackConfig(recalibrate_min_samples=8))
    fingerprint = manager.register_plan("fig3", fig3_plan, 100.0, model)
    with ShardCluster(music_db.physical, 4) as cluster:
        for run in range(9):
            engine = Engine(music_db.physical, shards=4, cluster=cluster)
            execution = engine.execute(fig3_plan)
            observation = build_observation(
                f"r{run}",
                100.0,
                execution.metrics.measured_cost(),
                0.01,
                len(execution.rows),
                execution.metrics,
            )
            assert observation.distributed is not None
            assert observation.distributed["shards"] == 4
            manager.observe("fig3", fingerprint, observation)
    # The workload is genuinely skewed...
    skews = manager.store.observed_skews()
    assert skews and max(skews) > 1.05
    # ...so refitting shard_skew from the observed actuals strictly
    # reduces the distributed-term misestimate.
    _weights, fitted, report = manager.recalibrate(params)
    assert report["distributed"] is not None
    dist = report["distributed"]
    assert dist["sharded_samples"] == 9
    assert dist["misestimate_after"] < dist["misestimate_before"]
    assert fitted.shard_skew == pytest.approx(dist["shard_skew"], abs=1e-4)
    assert fitted.shard_skew > 1.0
    assert report["parameters"]["shard_skew"] == pytest.approx(
        fitted.shard_skew, abs=1e-4
    )
    # Verify against the store's objective directly.
    before = manager.store.distributed_misestimate(params)
    import dataclasses

    after = manager.store.distributed_misestimate(
        dataclasses.replace(fitted)
    )
    assert after < before


def test_runtime_metrics_observed_skew_and_merge():
    from repro.engine.metrics import RuntimeMetrics

    metrics = RuntimeMetrics()
    assert metrics.observed_skew() == 1.0
    metrics.shards_used = 2
    metrics.shard_load_max = 30.0
    metrics.shard_load_mean = 10.0
    assert metrics.observed_skew() == 3.0
    other = RuntimeMetrics()
    other.shard_load_max = 10.0
    other.shard_load_mean = 10.0
    other.barrier_wait_seconds = 0.5
    other.exchange_frames = 7
    metrics.merge(other)
    assert metrics.shard_load_max == 40.0
    assert metrics.shard_load_mean == 20.0
    assert metrics.barrier_wait_seconds == 0.5
    assert metrics.exchange_frames == 7


# -- live progress ------------------------------------------------------------


def test_progress_tracker_rounds_and_snapshot():
    observed = []
    tracker = ProgressTracker(on_round=observed.append)
    handle = tracker.begin("req1", query="select ...", shards=2)
    handle.round_update(
        fix="Influencer",
        round_index=0,
        delta=40,
        seconds=0.01,
        delta_by_shard={0: 30, 1: 10},
        skew=1.5,
        exchange_tuples=40,
        exchange_bytes=2000,
        barrier_wait_s=0.004,
    )
    handle.round_update(fix="Influencer", round_index=1, delta=5, seconds=0.002)
    snapshot = tracker.snapshot()
    assert len(snapshot["active"]) == 1
    live = snapshot["active"][0]
    assert live["request"] == "req1"
    assert live["rounds"] == 2
    assert live["total_delta"] == 45
    first = live["recent_rounds"][0]
    assert first["delta_by_shard"] == {"0": 30, "1": 10}
    assert first["skew"] == 1.5
    assert first["exchange_tuples_per_s"] == 4000.0
    assert first["barrier_wait_ms"] == 4.0
    assert live["last_round"]["round"] == 1
    # The per-round callback saw both rounds, annotated with the width.
    assert len(observed) == 2
    assert all(record["shards"] == 2 for record in observed)
    tracker.finish(handle)
    snapshot = tracker.snapshot()
    assert snapshot["active"] == []
    assert [q["request"] for q in snapshot["recent"]] == ["req1"]


def test_progress_ring_is_bounded():
    from repro.obs.progress import ROUND_RING_SIZE

    tracker = ProgressTracker()
    handle = tracker.begin("req2")
    for index in range(ROUND_RING_SIZE + 10):
        handle.round_update(fix="f", round_index=index, delta=1, seconds=0.0)
    snapshot = handle.snapshot()
    assert snapshot["rounds"] == ROUND_RING_SIZE + 10
    assert snapshot["total_delta"] == ROUND_RING_SIZE + 10
    assert len(snapshot["recent_rounds"]) == ROUND_RING_SIZE
    assert snapshot["recent_rounds"][0]["round"] == 10


def test_serial_and_distributed_fixpoints_report_progress(
    music_db, fig3_plan
):
    tracker = ProgressTracker()
    engine = Engine(music_db.physical)
    engine.progress = tracker.begin("serial")
    engine.execute(fig3_plan)
    serial_rounds = engine.progress.snapshot()["recent_rounds"]
    assert serial_rounds and serial_rounds[0]["round"] == 0
    assert all("delta_by_shard" not in r for r in serial_rounds)

    with ShardCluster(music_db.physical, 2) as cluster:
        engine = Engine(music_db.physical, shards=2, cluster=cluster)
        engine.progress = tracker.begin("dist", shards=2)
        engine.execute(fig3_plan)
    dist_rounds = engine.progress.snapshot()["recent_rounds"]
    assert dist_rounds
    assert all("delta_by_shard" in r for r in dist_rounds)
    assert all(r.get("skew", 1.0) >= 1.0 for r in dist_rounds)
    assert all("barrier_wait_ms" in r for r in dist_rounds)
    # Both drivers agree on the fixpoint's round count per Fix node.
    assert len(dist_rounds) == len(serial_rounds)


# -- the service surface: progress op and `repro top` -------------------------

FIG3_TEXT = """
view Influencer as
  select [master: x.master, disciple: x, gen: 1] from x in Composer
  union
  select [master: i.master, disciple: x, gen: i.gen + 1]
  from i in Influencer, x in Composer where i.disciple = x.master;

select [name: i.disciple.name, gen: i.gen]
from i in Influencer
where i.gen >= 2;
"""


def test_progress_op_and_round_metrics(music_db):
    from repro.service import QueryService, ServiceConfig

    service = QueryService(music_db, ServiceConfig(max_concurrent=4))
    try:
        result = service.run_query(FIG3_TEXT, shards=2)
        assert result["shards"] == 2
        response = service.handle({"op": "progress"})
        assert response["ok"]
        progress = response["progress"]
        assert progress["active"] == []
        assert len(progress["recent"]) == 1
        recent = progress["recent"][0]
        assert recent["shards"] == 2
        assert recent["rounds"] > 0
        assert recent["request"] == result["request_id"]
        last = recent["last_round"]
        assert set(last) >= {"fix", "round", "delta", "ms", "delta_by_shard"}
        admission = progress["admission"]
        assert admission["slots_in_use"] == 0
        assert admission["admitted"] >= 1
        # Rounds fed the service metrics: latency histogram plus the
        # labelled barrier-wait and skew gauges.
        exposition = service.metrics.to_prometheus()
        assert "repro_fixpoint_round_seconds_count" in exposition
        assert 'repro_fixpoint_barrier_wait_fraction{shards="2"}' in exposition
        assert 'repro_fixpoint_shard_skew{shards="2"}' in exposition
    finally:
        service.close()


def test_repro_top_renders_progress_payload(music_db):
    import io

    from repro.cli import _render_top
    from repro.service import QueryService, ServiceConfig

    service = QueryService(music_db, ServiceConfig(max_concurrent=4))
    try:
        service.run_query(FIG3_TEXT, shards=2)
        payload = service.handle({"op": "progress"})["progress"]
    finally:
        service.close()
    out = io.StringIO()
    _render_top(payload, out)
    text = out.getvalue()
    assert "slots 0/4 in use" in text
    assert "shards=2" in text
    assert "s0:" in text  # per-shard delta breakdown of the last round
    assert "barrier" in text
