"""End-to-end feedback loop (the tentpole acceptance test).

Closes the loop the paper leaves open: run a skewed workload through
the service, recalibrate the cost model from the accumulated
production actuals, and check the misestimate actually shrinks; then
induce a plan regression (swap in a deliberately worse plan, as a bad
recalibration or stats drift would) and check it is flagged, logged,
and revertable by pinning the prior plan.

When ``REPRO_TELEMETRY_ARTIFACT`` is set (CI does this), the telemetry
JSONL produced by the workload is written there so the run's history
can be uploaded as a build artifact.
"""

import json
import os

import pytest

from repro.core.baselines import naive_optimizer
from repro.errors import ServiceError
from repro.lang import compile_text
from repro.obs.history import plan_fingerprint
from repro.service import QueryService, ServiceConfig
from repro.workloads import MusicConfig, generate_music_database

RECURSIVE = """
view Influencer as
  select [master: x.master, disciple: x, gen: 1] from x in Composer
  union
  select [master: i.master, disciple: x, gen: i.gen + 1]
  from i in Influencer, x in Composer where i.disciple = x.master;
select [name: i.disciple.name, gen: i.gen]
from i in Influencer
where i.master.works.instruments.name = "harpsichord" and i.gen >= 3;
"""

PLAIN_RECURSIVE = """
view Influencer as
  select [master: x.master, disciple: x, gen: 1] from x in Composer
  union
  select [master: i.master, disciple: x, gen: i.gen + 1]
  from i in Influencer, x in Composer where i.disciple = x.master;
select [name: i.disciple.name, gen: i.gen]
from i in Influencer
where i.gen >= 4;
"""

SCAN = "select [name: x.name] from x in Composer where x.birthyear >= 1700;"
LOOKUP = 'select [name: x.name] from x in Composer where x.name = "Bach";'

WORKLOAD = [PLAIN_RECURSIVE, SCAN, LOOKUP]


def build_db(**overrides):
    config = dict(
        lineages=4, generations=6, works_per_composer=2, seed=1992
    )
    config.update(overrides)
    db = generate_music_database(MusicConfig(**config))
    db.build_paper_indexes()
    return db


def build_skewed_db():
    """A deployment where the data outgrew the buffer pool and the
    paper indexes were never built: scans genuinely hit disk, so the
    model's cold-IO estimate is accurate and the remaining misestimate
    is the default unit costs — the error recalibration removes."""
    return generate_music_database(
        MusicConfig(
            lineages=16,
            generations=8,
            works_per_composer=3,
            buffer_pages=4,
            seed=1992,
        )
    )


def telemetry_path(tmp_path):
    """Honour the CI artifact location when it is set."""
    artifact = os.environ.get("REPRO_TELEMETRY_ARTIFACT")
    if artifact:
        os.makedirs(os.path.dirname(artifact) or ".", exist_ok=True)
        return artifact
    return str(tmp_path / "telemetry.jsonl")


def mean_misestimate(service) -> float:
    summary = service.feedback.misestimate_by_query()
    ratios = [
        entry["cost_misestimate"]
        for entry in summary.values()
        if entry["cost_misestimate"] is not None
    ]
    assert ratios, "workload produced no misestimate data"
    return sum(ratios) / len(ratios)


class TestRecalibrationShrinksMisestimate:
    def test_online_recalibration_improves_estimates(self, tmp_path):
        service = QueryService(
            build_skewed_db(),
            ServiceConfig(
                # A small ring so the post-recalibration runs fully
                # replace the pre-recalibration observations.
                history_window=6,
                recalibrate_min_samples=6,
                profile_sample_every=1,
                history_path=telemetry_path(tmp_path),
            ),
        )
        try:
            for _round in range(6):
                for text in WORKLOAD:
                    service.run_query(text)
            before = mean_misestimate(service)

            report = service.recalibrate(apply=True)
            assert report["applied"]
            assert report["samples"] >= 6
            # The fit recovers the simulator's reference unit costs:
            # 1.0 per page read dominates, and the CPU weight moves
            # from the default 0.02 toward the simulator's 0.1.
            assert report["weights"]["physical_reads"] == pytest.approx(
                1.0, abs=0.2
            )
            assert service._cost_params is not None

            for _round in range(6):
                for text in WORKLOAD:
                    service.run_query(text)
            after = mean_misestimate(service)

            assert after < before, (
                f"mean cost q-error should shrink after recalibration "
                f"(before={before:.4f}, after={after:.4f})"
            )
            assert service.metrics.counters.get("recalibrations") == 1
        finally:
            service.close()

        # The telemetry JSONL is the CI artifact: non-empty, one JSON
        # object per line, and it replays into a fresh store.
        path = service.config.history_path
        with open(path) as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) > 10
        kinds = {json.loads(line)["kind"] for line in lines}
        assert {"plan", "obs", "event"} <= kinds

    def test_recalibrate_requires_enough_samples(self):
        service = QueryService(
            build_db(lineages=2, generations=4),
            ServiceConfig(recalibrate_min_samples=50),
        )
        try:
            service.run_query(SCAN)
            with pytest.raises(ServiceError):
                service.recalibrate()
        finally:
            service.close()


def induce_regression(service, text):
    """Swap a deliberately worse plan (no push into the recursion) into
    the cache for ``text``, exactly as a bad recalibration or stats
    drift would, and notify the feedback manager.  Returns the (old,
    new) fingerprints."""
    with service._store_lock:
        key = service.cache.key_for(text, service.physical)
        old_entry = service.cache.entry(key)
        assert old_entry is not None, "prime the cache first"
        graph = compile_text(text, service.database.catalog)
        worse = naive_optimizer(service.physical).optimize(graph)
        new_entry = service.cache.store(
            key, worse.plan, worse.cost, service.physical
        )
        new_fp = service.feedback.register_plan(
            key[0], worse.plan, worse.cost
        )
        new_entry.fingerprint = new_fp
        service.feedback.plan_changed(
            key[0],
            old_entry.plan,
            old_entry.cost,
            worse.plan,
            worse.cost,
            "cost_drift",
        )
    assert old_entry.fingerprint != new_fp, (
        "the induced plan must differ structurally"
    )
    return old_entry.fingerprint, new_fp


class TestRegressionDetection:
    def config(self, **overrides):
        settings = dict(
            history_window=16,
            regression_min_runs=3,
            # Deterministic flagging: any nonzero new-plan latency
            # exceeds the threshold, so the verdict never depends on
            # wall-clock noise.
            regression_ratio=0.01,
            recalibrate_min_samples=5,
        )
        settings.update(overrides)
        return ServiceConfig(**settings)

    def test_induced_regression_is_flagged_and_pinnable(self):
        service = QueryService(build_db(), self.config())
        try:
            for _run in range(4):
                service.run_query(RECURSIVE)
            old_fp, new_fp = induce_regression(service, RECURSIVE)

            for _run in range(3):
                service.run_query(RECURSIVE)

            canonical = service.cache.key_for(
                RECURSIVE, service.physical
            )[0]
            change = service.feedback.regression_for(canonical)
            assert change is not None
            assert change.old_fingerprint == old_fp
            assert change.new_fingerprint == new_fp
            assert change.verdict == "regression"
            # The diff explains what changed: the induced plan stopped
            # pushing the selection into the recursion.
            assert change.diff["old_push"] != change.diff["new_push"]

            # Both fingerprints land in the slow log entry and the
            # event stream; the counter is exported.
            events = [
                event
                for event in service.feedback.store.events
                if event["event"] == "plan_regression"
            ]
            assert len(events) == 1
            assert events[0]["old_fingerprint"] == old_fp
            assert events[0]["new_fingerprint"] == new_fp
            assert service.metrics.counters.get("plan_regressions") == 1
            slow = [
                entry
                for entry in service.metrics.slow
                if any("plan_regression" in r for r in entry["reasons"])
            ]
            assert slow, "regression must enter the slow-query log"
            assert old_fp in slow[0]["reasons"][0]
            assert new_fp in slow[0]["reasons"][0]

            # Pinning reverts to the prior plan and protects it.
            result = service.pin_query(RECURSIVE, revert=True)
            assert result["reverted"]
            assert result["fingerprint"] == old_fp
            key = service.cache.key_for(RECURSIVE, service.physical)
            entry = service.cache.entry(key)
            assert entry.pinned
            assert entry.fingerprint == old_fp
            assert plan_fingerprint(entry.plan) == old_fp
            # Subsequent requests are served from the pinned plan.
            response = service.run_query(RECURSIVE)
            assert response["cache"] in ("hit", "revalidated")
        finally:
            service.close()

    def test_auto_pin_reverts_without_operator(self):
        service = QueryService(build_db(), self.config(auto_pin=True))
        try:
            for _run in range(4):
                service.run_query(RECURSIVE)
            old_fp, _new_fp = induce_regression(service, RECURSIVE)
            for _run in range(3):
                service.run_query(RECURSIVE)
            key = service.cache.key_for(RECURSIVE, service.physical)
            entry = service.cache.entry(key)
            assert entry.pinned
            assert entry.fingerprint == old_fp
            assert service.metrics.counters.get("plans_pinned") == 1
        finally:
            service.close()

    def test_equivalent_replan_is_not_watched(self):
        service = QueryService(build_db(), self.config())
        try:
            service.run_query(RECURSIVE)
            key = service.cache.key_for(RECURSIVE, service.physical)
            entry = service.cache.entry(key)
            # Re-optimizing to the structurally identical plan is not a
            # plan change at all.
            event = service.feedback.plan_changed(
                key[0],
                entry.plan,
                entry.cost,
                entry.plan,
                entry.cost,
                "cost_drift",
            )
            assert event is None
            assert service.feedback.snapshot()["pending_changes"] == []
        finally:
            service.close()


class TestProtocolSurface:
    def test_history_and_recalibrate_ops(self):
        service = QueryService(
            build_db(lineages=2, generations=4),
            ServiceConfig(recalibrate_min_samples=5, history_window=8),
        )
        try:
            # One observation per calibration event weight (the fit is
            # underdetermined below len(EVENT_NAMES) samples).
            for _run in range(6):
                service.handle({"op": "query", "text": SCAN})
            response = service.handle({"op": "history"})
            assert response["ok"]
            assert response["history"]["plans"] >= 1
            assert response["feedback"]["tracked_plans"] >= 1

            response = service.handle({"op": "recalibrate"})
            assert response["ok"] and not response["applied"]

            response = service.handle({"op": "pin", "text": SCAN})
            assert response["ok"] and response["pinned"]
            response = service.handle({"op": "unpin", "text": SCAN})
            assert response["ok"] and response["found"]

            response = service.handle({"op": "history", "limit": 0})
            assert not response["ok"]
        finally:
            service.close()

    def test_feedback_disabled_service_still_serves(self):
        service = QueryService(
            build_db(lineages=2, generations=4),
            ServiceConfig(feedback_enabled=False),
        )
        try:
            response = service.run_query(SCAN)
            assert response["row_count"] >= 0
            assert "feedback" not in service.stats()
            error = service.handle({"op": "history"})
            assert not error["ok"]
            error = service.handle({"op": "recalibrate"})
            assert not error["ok"]
        finally:
            service.close()

    def test_stats_and_metrics_expose_feedback(self):
        service = QueryService(
            build_db(lineages=2, generations=4),
            ServiceConfig(history_window=8),
        )
        try:
            for _run in range(3):
                service.run_query(SCAN)
            stats = service.stats()
            assert stats["feedback"]["tracked_plans"] >= 1
            text = service.metrics_text()
            assert "repro_misestimate_ratio" in text
        finally:
            service.close()
