"""Tests for generatePT: the generative SPJ optimizer."""

import pytest

from repro.core.generate import SPJGenerator
from repro.core.translate import Translator
from repro.cost import DetailedCostModel
from repro.engine import Engine, ReferenceEvaluator
from repro.errors import OptimizationError
from repro.plans import (
    EJ,
    IJ,
    PIJ,
    EntityLeaf,
    Proj,
    Sel,
    find_all,
    validate_plan,
)
from repro.querygraph.builder import (
    and_,
    arc,
    const,
    eq,
    ge,
    out,
    path,
    query,
    rule,
    spj,
    var,
)
from repro.workloads import fig2_query


@pytest.fixture()
def toolchain(indexed_db):
    translator = Translator(indexed_db.physical)
    model = DetailedCostModel(indexed_db.physical)
    generator = SPJGenerator(indexed_db.physical, model)
    return indexed_db, translator, generator


def generate(toolchain, node):
    db, translator, generator = toolchain
    translated = translator.translate_node(node)
    sources = [
        EntityLeaf(translated_arc.entity, translated_arc.root_var)
        for translated_arc in translated.arcs
    ]
    return generator.generate(translated, sources)


class TestSingleArc:
    def test_simple_selection(self, toolchain):
        db, _t, _g = toolchain
        node = spj(
            [arc("Composer", x=".")],
            where=eq(path("x", "name"), const("Bach")),
            select=out(n=path("x", "name")),
        )
        generated = generate(toolchain, node)
        validate_plan(generated.plan, db.physical)
        assert isinstance(generated.plan, Proj)
        assert find_all(generated.plan, Sel)
        assert generated.cost > 0

    def test_sel_applied_before_hops(self, toolchain):
        """The sel action fires as soon as possible: the name filter
        sits directly on the Composer scan, below the works hop."""
        db, _t, _g = toolchain
        node = spj(
            [arc("Composer", x=".", t="works.*.title")],
            where=eq(path("x", "name"), const("Bach")),
            select=out(t=var("t")),
        )
        generated = generate(toolchain, node)
        sel = find_all(generated.plan, Sel)[0]
        assert isinstance(sel.child, EntityLeaf)

    def test_collapse_considered(self, toolchain):
        db, _t, _g = toolchain
        node = spj(
            [arc("Composer", x=".")],
            where=eq(
                path("x", "works", "instruments", "name"), const("harpsichord")
            ),
            select=out(n=path("x", "name")),
        )
        generated = generate(toolchain, node)
        validate_plan(generated.plan, db.physical)
        # Either realization is fine; both IJ-chain and PIJ variants
        # were generated, so at least 2 candidates were considered.
        assert generated.candidates_considered >= 2

    def test_execution_matches_reference(self, toolchain):
        db, _t, _g = toolchain
        graph = fig2_query()
        node = graph.producers_of("Answer")[0].node
        generated = generate(toolchain, node)
        engine = Engine(db.physical)
        reference = ReferenceEvaluator(db.physical)
        assert (
            engine.execute(generated.plan).answer_set()
            == reference.answer_set(graph)
        )


class TestJoins:
    def join_node(self):
        return spj(
            [arc("Composer", a="."), arc("Composer", b=".")],
            where=and_(
                eq(path("a", "name"), const("Bach")),
                eq(path("b", "master"), var("a")),
            ),
            select=out(n=path("b", "name")),
        )

    def test_join_generated(self, toolchain):
        db, _t, _g = toolchain
        generated = generate(toolchain, self.join_node())
        joins = find_all(generated.plan, EJ)
        assert len(joins) == 1
        validate_plan(generated.plan, db.physical)

    def test_generated_plan_not_worse_than_hand_orders(self, toolchain):
        """DP output costs no more than either hand-built join order."""
        db, _t, _g = toolchain
        from repro.cost import DetailedCostModel
        from repro.querygraph.builder import out as out_

        model = DetailedCostModel(db.physical)
        generated = generate(toolchain, self.join_node())
        bach_sel = Sel(
            EntityLeaf("Composer", "a"), eq(path("a", "name"), const("Bach"))
        )
        predicate = eq(path("b", "master"), var("a"))
        projection = out_(n=path("b", "name"))
        bach_outer = Proj(
            EJ(bach_sel, EntityLeaf("Composer", "b"), predicate), projection
        )
        bach_inner = Proj(
            EJ(EntityLeaf("Composer", "b"), bach_sel, predicate), projection
        )
        assert generated.cost <= model.cost(bach_outer) + 1e-9
        assert generated.cost <= model.cost(bach_inner) + 1e-9

    def test_join_executes_correctly(self, toolchain):
        db, _t, _g = toolchain
        generated = generate(toolchain, self.join_node())
        engine = Engine(db.physical)
        result = engine.execute(generated.plan)
        # Bach's direct disciple (exactly one per the chain layout).
        assert len(result) >= 1

    def test_cartesian_product_rejected(self, toolchain):
        node = spj(
            [arc("Composer", a="."), arc("Instrument", b=".")],
            where=and_(
                eq(path("a", "name"), const("Bach")),
                eq(path("b", "name"), const("flute")),
            ),
            select=out(n=path("a", "name")),
        )
        with pytest.raises(OptimizationError):
            generate(toolchain, node)

    def test_three_way_join(self, toolchain):
        db, _t, _g = toolchain
        node = spj(
            [arc("Composer", a="."), arc("Composer", b="."), arc("Composer", c=".")],
            where=and_(
                eq(path("b", "master"), var("a")),
                eq(path("c", "master"), var("b")),
                eq(path("a", "name"), const("Bach")),
            ),
            select=out(n=path("c", "name")),
        )
        generated = generate(toolchain, node)
        validate_plan(generated.plan, db.physical)
        assert len(find_all(generated.plan, EJ)) == 2
        engine = Engine(db.physical)
        result = engine.execute(generated.plan)
        assert len(result) >= 1  # grand-disciples of Bach

    def test_deferred_chain_variant_considered(self, toolchain):
        """An arc with a hop chain not needed by the join predicate
        yields eager and deferred variants."""
        node = spj(
            [arc("Composer", a="."), arc("Composer", b=".")],
            where=and_(
                eq(path("b", "master"), var("a")),
                eq(path("a", "works", "title"), const("work_00001")),
            ),
            select=out(n=path("b", "name")),
        )
        generated = generate(toolchain, node)
        # eager + deferred profiles both explored.
        assert generated.candidates_considered >= 4
