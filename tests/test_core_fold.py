"""Tests for the fold rewriting action (view inlining)."""

import pytest

from repro.core import Optimizer, OptimizerConfig, cost_controlled_optimizer
from repro.core.fold import fold_action, fold_views
from repro.engine import Engine, ReferenceEvaluator
from repro.plans import EJ, Materialize, find_all
from repro.querygraph.builder import (
    and_,
    arc,
    const,
    eq,
    fn,
    ge,
    out,
    path,
    query,
    rule,
    spj,
    var,
)
from repro.querygraph.graph import SPJNode
from repro.workloads import fig3_query


def simple_view_graph():
    """Late := composers born >= 1700; Answer filters Late further."""
    view = rule(
        "Late",
        spj(
            [arc("Composer", x=".")],
            where=ge(path("x", "birthyear"), const(1700)),
            select=out(n=path("x", "name"), m=path("x", "master")),
        ),
    )
    answer = rule(
        "Answer",
        spj(
            [arc("Late", v=".")],
            where=eq(path("v", "m", "name"), const("Bach")),
            select=out(n=path("v", "n")),
        ),
    )
    return query(view, answer)


def join_with_view_graph():
    """A view joined with a base class: folding widens the SPJ."""
    view = rule(
        "Masters",
        spj(
            [arc("Composer", x=".")],
            select=out(m=path("x", "master"), n=path("x", "name")),
        ),
    )
    answer = rule(
        "Answer",
        spj(
            [arc("Masters", v="."), arc("Composer", c=".")],
            where=and_(
                eq(path("v", "m"), var("c")),
                eq(path("c", "name"), const("Bach")),
            ),
            select=out(n=path("v", "n")),
        ),
    )
    return query(view, answer)


class TestFoldAction:
    def test_fold_inlines_and_drops_view(self):
        folded = fold_views(simple_view_graph())
        assert folded.produced_names() == ["Answer"]
        node = folded.producers_of("Answer")[0].node
        assert isinstance(node, SPJNode)
        assert node.input_names() == ["Composer"]
        # Both the view's and the consumer's predicates survive.
        rendered = repr(node.predicate)
        assert "birthyear" in rendered and "Bach" in rendered

    def test_fold_rewrites_paths_through_fields(self):
        folded = fold_views(simple_view_graph())
        node = folded.producers_of("Answer")[0].node
        paths = node.predicate.paths()
        # v.m.name became x.master.name (over the view's variable).
        assert any(p.attrs == ("master", "name") for p in paths)

    def test_fold_preserves_answers(self, indexed_db):
        graph = simple_view_graph()
        reference = ReferenceEvaluator(indexed_db.physical)
        assert reference.answer_set(graph) == reference.answer_set(
            fold_views(graph)
        )

    def test_fold_join_variant_preserves_answers(self, indexed_db):
        graph = join_with_view_graph()
        reference = ReferenceEvaluator(indexed_db.physical)
        folded = fold_views(graph)
        assert reference.answer_set(graph) == reference.answer_set(folded)
        node = folded.producers_of("Answer")[0].node
        assert sorted(node.input_names()) == ["Composer", "Composer"]

    def test_recursive_views_not_folded(self):
        graph = fig3_query()
        assert fold_action.first_application(graph) is None

    def test_union_views_not_folded(self, indexed_db):
        r1 = rule(
            "V", spj([arc("Composer", x=".")], select=out(n=path("x", "name")))
        )
        r2 = rule(
            "V", spj([arc("Instrument", y=".")], select=out(n=path("y", "name")))
        )
        answer = rule("Answer", spj([arc("V", v=".")], select=out(n=path("v", "n"))))
        graph = query(r1, r2, answer)
        assert fold_action.first_application(graph) is None

    def test_computed_field_blocks_path_fold(self):
        view = rule(
            "V",
            spj(
                [arc("Composer", x=".")],
                select=out(
                    n=fn("upper", path("x", "name"), callable=str.upper)
                ),
            ),
        )
        answer = rule(
            "Answer",
            spj(
                [arc("V", v=".")],
                where=eq(path("v", "n", "oops"), const("X")),
                select=out(n=path("v", "n")),
            ),
        )
        graph = query(view, answer)
        # A path *through* a computed field cannot fold; the action
        # skips the site instead of corrupting the query.
        assert fold_action.first_application(graph) is None

    def test_computed_field_direct_use_folds(self, indexed_db):
        view = rule(
            "V",
            spj(
                [arc("Composer", x=".")],
                select=out(
                    n=fn("upper", path("x", "name"), callable=str.upper)
                ),
            ),
        )
        answer = rule(
            "Answer",
            spj(
                [arc("V", v=".")],
                where=eq(path("v", "n"), const("BACH")),
                select=out(n=path("v", "n")),
            ),
        )
        graph = query(view, answer)
        folded = fold_views(graph)
        assert folded.produced_names() == ["Answer"]
        reference = ReferenceEvaluator(indexed_db.physical)
        assert reference.answer_set(graph) == reference.answer_set(folded)


class TestFoldInOptimizer:
    def test_optimizer_folds_away_materialize(self, indexed_db):
        graph = simple_view_graph()
        with_fold = cost_controlled_optimizer(indexed_db.physical).optimize(graph)
        assert not find_all(with_fold.plan, Materialize)
        without = Optimizer(
            indexed_db.physical,
            config=OptimizerConfig(fold_nonrecursive_views=False),
        ).optimize(graph)
        assert find_all(without.plan, Materialize)

    def test_folded_plan_matches_reference(self, indexed_db):
        graph = join_with_view_graph()
        result = cost_controlled_optimizer(indexed_db.physical).optimize(graph)
        got = Engine(indexed_db.physical).execute(result.plan).answer_set()
        want = ReferenceEvaluator(indexed_db.physical).answer_set(graph)
        assert got == want

    def test_folding_enables_joint_optimization(self, indexed_db):
        """After folding, the view's arcs join the consumer's SPJ —
        the plan contains one explicit join instead of a materialized
        view feeding a join."""
        graph = join_with_view_graph()
        result = cost_controlled_optimizer(indexed_db.physical).optimize(graph)
        assert len(find_all(result.plan, EJ)) == 1
        assert not find_all(result.plan, Materialize)

    def test_fold_trace_recorded(self, indexed_db):
        result = cost_controlled_optimizer(indexed_db.physical).optimize(
            simple_view_graph()
        )
        assert any("fold" in step for step in result.rewrite_trace)
