"""Tests for the detailed (Figure 5) and simplified (§4.6) cost models."""

import pytest

from repro.cost import (
    CostParameters,
    DetailedCostModel,
    SimplifiedCostModel,
    SimplifiedParameters,
    Sym,
)
from repro.plans import (
    EJ,
    IJ,
    INDEX_JOIN,
    PIJ,
    EntityLeaf,
    Fix,
    Proj,
    RecLeaf,
    Sel,
    UnionOp,
)
from repro.querygraph.builder import add, const, eq, ge, out, path, var


def make_fix():
    base = Proj(
        EntityLeaf("Composer", "x"),
        out(master=path("x", "master"), disciple=var("x"), gen=const(1)),
    )
    recursive = Proj(
        EJ(
            RecLeaf("Influencer", "i"),
            EntityLeaf("Composer", "x"),
            eq(path("i", "disciple"), path("x", "master")),
        ),
        out(
            master=path("i", "master"),
            disciple=var("x"),
            gen=add(path("i", "gen"), const(1)),
        ),
    )
    return Fix(
        "Influencer", UnionOp(base, recursive), "i", "Composer", "master", {"master"}
    )


class TestDetailedModel:
    def test_scan_cost_is_pages(self, indexed_db):
        model = DetailedCostModel(indexed_db.physical)
        report = model.report(EntityLeaf("Composer", "x"))
        pages = indexed_db.physical.statistics.pages("Composer")
        assert report.io == pytest.approx(pages * model.params.page_read)

    def test_selection_adds_cpu(self, indexed_db):
        model = DetailedCostModel(indexed_db.physical)
        leaf_cost = model.cost(EntityLeaf("Composer", "x"))
        sel_cost = model.cost(
            Sel(
                EntityLeaf("Composer", "x"),
                ge(path("x", "birthyear"), const(1700)),
            )
        )
        assert sel_cost > leaf_cost

    def test_indexed_selection_cheaper_than_scan(self, indexed_db):
        model = DetailedCostModel(indexed_db.physical)
        indexed = model.cost(
            Sel(EntityLeaf("Composer", "x"), eq(path("x", "name"), const("Bach")))
        )
        # Same predicate on an unindexed attribute: full scan.
        unindexed = model.cost(
            Sel(
                EntityLeaf("Composer", "x"),
                eq(path("x", "birthyear"), const(1700)),
            )
        )
        assert indexed < unindexed

    def test_method_predicates_cost_more(self, indexed_db):
        """The paper's motivation: selections invoking methods are
        expensive, scaled by the method's eval weight."""
        model = DetailedCostModel(indexed_db.physical)
        catalog = indexed_db.catalog
        cheap = model.cost(
            Sel(EntityLeaf("Composer", "x"), ge(path("x", "birthyear"), const(0)))
        )
        catalog.get("Person").methods["age"].eval_weight = 500.0
        try:
            expensive = model.cost(
                Sel(EntityLeaf("Composer", "x"), ge(path("x", "age"), const(50)))
            )
        finally:
            catalog.get("Person").methods["age"].eval_weight = 1.0
        assert expensive > cheap

    def test_ij_cost_grows_with_input(self, indexed_db):
        model = DetailedCostModel(indexed_db.physical)
        small = model.cost(
            IJ(
                Sel(
                    EntityLeaf("Composer", "x"),
                    eq(path("x", "name"), const("Bach")),
                ),
                EntityLeaf("Composition", "w"),
                path("x", "works"),
                "w",
            )
        )
        large = model.cost(
            IJ(
                EntityLeaf("Composer", "x"),
                EntityLeaf("Composition", "w"),
                path("x", "works"),
                "w",
            )
        )
        assert small < large

    def test_nested_loop_vs_index_join(self, indexed_db):
        left = Sel(
            EntityLeaf("Composer", "a"),
            ge(path("a", "birthyear"), const(0)),
        )
        right = EntityLeaf("Composer", "b")
        predicate = eq(path("a", "name"), path("b", "name"))
        # With a buffer that absorbs the tiny inner, rescans are free
        # and nested loop wins; starve the buffer and index probing
        # wins — the cost model sees both regimes.
        buffered = DetailedCostModel(indexed_db.physical)
        starved = DetailedCostModel(
            indexed_db.physical, CostParameters(buffer_pages=1)
        )
        assert buffered.cost(EJ(left, right, predicate)) <= buffered.cost(
            EJ(left, right, predicate, INDEX_JOIN)
        )
        assert starved.cost(EJ(left, right, predicate, INDEX_JOIN)) < starved.cost(
            EJ(left, right, predicate)
        )

    def test_fix_cost_scales_with_iterations(self, indexed_db):
        model = DetailedCostModel(indexed_db.physical)
        fix_cost = model.cost(make_fix())
        base_only = model.cost(
            Proj(
                EntityLeaf("Composer", "x"),
                out(master=path("x", "master"), disciple=var("x"), gen=const(1)),
            )
        )
        iterations = indexed_db.physical.statistics.estimated_fixpoint_iterations(
            "Composer", "master"
        )
        assert fix_cost > base_only * 2
        assert iterations >= 2

    def test_report_rows_cover_operators(self, indexed_db):
        model = DetailedCostModel(indexed_db.physical)
        report = model.report(
            Sel(EntityLeaf("Composer", "x"), ge(path("x", "birthyear"), const(0)))
        )
        labels = [label for label, _cost in report.rows]
        assert any(label.startswith("Sel") for label in labels)
        assert report.total == pytest.approx(report.io + report.cpu)

    def test_buffer_capacity_changes_deref_cost(self, indexed_db):
        big_buffer = DetailedCostModel(
            indexed_db.physical, CostParameters(buffer_pages=512)
        )
        tiny_buffer = DetailedCostModel(
            indexed_db.physical, CostParameters(buffer_pages=1)
        )
        plan = IJ(
            EntityLeaf("Composer", "x"),
            EntityLeaf("Composition", "w"),
            path("x", "works"),
            "w",
        )
        assert tiny_buffer.cost(plan) >= big_buffer.cost(plan)


class TestSimplifiedModel:
    def test_numeric_cost_positive(self, indexed_db):
        model = SimplifiedCostModel(indexed_db.physical)
        assert model.cost(make_fix()) > 0

    def test_sel_row_formula(self, indexed_db):
        model = SimplifiedCostModel(indexed_db.physical)
        plan = Sel(
            Proj(EntityLeaf("Composer", "x"), out(n=path("x", "name"))),
            eq(var("n"), const("Bach")),
        )
        rows = model.table(plan, symbolic=True, entity_abbreviations={"Composer": "Cpr"})
        sel_row = [r for r in rows if r.operator.startswith("Sel")][0]
        rendered = repr(sel_row.formula)
        # |T1| * (pr + ev): scan pages plus one eval per page.
        assert "ev*|T1|" in rendered and "pr*|T1|" in rendered

    def test_ij_row_formula(self, indexed_db):
        model = SimplifiedCostModel(indexed_db.physical)
        plan = IJ(
            Sel(EntityLeaf("Composer", "x"), ge(path("x", "birthyear"), const(0))),
            EntityLeaf("Composer", "m2"),
            path("x", "master"),
            "mm",
        )
        rows = model.table(plan, symbolic=True, entity_abbreviations={"Composer": "Cpr"})
        ij_row = [r for r in rows if r.operator.startswith("IJ")][0]
        rendered = repr(ij_row.formula)
        assert "pr*|T1|" in rendered and "pr*||T1||" in rendered

    def test_pij_row_uses_lev_and_lea(self, indexed_db):
        model = SimplifiedCostModel(indexed_db.physical)
        plan = PIJ(
            Sel(EntityLeaf("Composer", "x"), ge(path("x", "birthyear"), const(0))),
            [EntityLeaf("Composition", "w"), EntityLeaf("Instrument", "i")],
            ["works", "instruments"],
            var("x"),
            ["w", "i"],
        )
        rows = model.table(
            plan, symbolic=True, entity_abbreviations={"Composer": "Cpr"}
        )
        pij_row = [r for r in rows if r.operator.startswith("PIJ")][0]
        rendered = repr(pij_row.formula)
        assert "lev" in rendered and "lea/||Cpr||" in rendered

    def test_fix_row_has_iteration_symbol(self, indexed_db):
        model = SimplifiedCostModel(indexed_db.physical)
        rows = model.table(
            make_fix(),
            symbolic=True,
            entity_abbreviations={"Composer": "Cpr", "Influencer": "Inf"},
        )
        fix_row = [r for r in rows if r.operator.startswith("Fix")][0]
        rendered = repr(fix_row.formula)
        assert "n_1" in rendered
        assert "Inf_i" in rendered

    def test_fix_inner_rows_sectioned(self, indexed_db):
        model = SimplifiedCostModel(indexed_db.physical)
        rows = model.table(make_fix(), symbolic=True)
        sections = {row.section for row in rows}
        assert "fix-base" in sections and "fix-rec" in sections
        main_rows = [row for row in rows if row.section == "main"]
        assert len(main_rows) == 1  # just the Fix row

    def test_total_skips_fix_internal_rows(self, indexed_db):
        model = SimplifiedCostModel(indexed_db.physical)
        rows = model.table(make_fix(), symbolic=False)
        total = model.total(rows)
        fix_row = [r for r in rows if r.operator.startswith("Fix")][0]
        assert total == pytest.approx(fix_row.formula)

    def test_symbolic_evaluates_under_assignment(self, indexed_db):
        model = SimplifiedCostModel(indexed_db.physical)
        plan = Sel(
            Proj(EntityLeaf("Composer", "x"), out(n=path("x", "name"))),
            eq(var("n"), const("Bach")),
        )
        rows = model.table(
            plan,
            symbolic=True,
            entity_abbreviations={"Composer": "Cpr"},
            size_assignment={"|Cpr|": 10, "||Cpr||": 200, "|T1|": 10, "||T1||": 200},
        )
        for row in rows:
            assert not isinstance(row.formula, Sym)

    def test_custom_parameters_scale_cost(self, indexed_db):
        cheap = SimplifiedCostModel(
            indexed_db.physical, SimplifiedParameters(pr=1.0, ev=0.1)
        )
        pricey = SimplifiedCostModel(
            indexed_db.physical, SimplifiedParameters(pr=10.0, ev=1.0)
        )
        plan = Sel(
            Proj(EntityLeaf("Composer", "x"), out(n=path("x", "name"))),
            eq(var("n"), const("Bach")),
        )
        assert pricey.cost(plan) > cheap.cost(plan)
