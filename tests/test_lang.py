"""Tests for the query-language front-end: lexer, parser, compiler."""

import pytest

from repro.engine import Engine, ReferenceEvaluator
from repro.errors import CompileError, LexError, ParseError
from repro.lang import compile_text, parse, tokenize
from repro.lang.ast import (
    AndNode,
    BinaryOp,
    Call,
    ComparisonNode,
    Literal,
    NotNode,
    OrNode,
    Path,
)
from repro.workloads import fig3_query, join_push_query

FIG3_TEXT = """
view Influencer as
  select [master: x.master, disciple: x, gen: 1]
  from x in Composer
  union
  select [master: i.master, disciple: x, gen: i.gen + 1]
  from i in Influencer, x in Composer
  where i.disciple = x.master;

select [name: i.disciple.name]
from i in Influencer
where i.master.works.instruments.name = "harpsichord" and i.gen >= 6;
"""


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SELECT x FROM y In Z")
        assert tokens[0].is_("keyword", "select")
        assert tokens[2].is_("keyword", "from")
        assert tokens[4].is_("keyword", "in")

    def test_identifiers_keep_case(self):
        tokens = tokenize("Composer")
        assert tokens[0].is_("ident", "Composer")

    def test_numbers_and_paths_disambiguated(self):
        tokens = tokenize("x.gen + 1.5")
        kinds = [(t.kind, t.value) for t in tokens[:-1]]
        assert ("number", "1.5") in kinds
        assert ("punct", ".") in kinds

    def test_string_literals_with_escapes(self):
        tokens = tokenize(r'"har\"psichord"')
        assert tokens[0].value == 'har"psichord'

    def test_single_quoted_strings(self):
        assert tokenize("'flute'")[0].value == "flute"

    def test_comments_skipped(self):
        tokens = tokenize("select -- a comment\n x from y in Z")
        assert tokens[0].is_("keyword", "select")
        assert tokens[1].is_("ident", "x")

    def test_multichar_operators(self):
        tokens = tokenize("a <= b >= c != d")
        ops = [t.value for t in tokens if t.kind == "op"]
        assert ops == ["<=", ">=", "!="]

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"never closed')

    def test_unexpected_character_raises(self):
        with pytest.raises(LexError):
            tokenize("select @")

    def test_positions_tracked(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)


class TestParser:
    def test_fig3_program_shape(self):
        program = parse(FIG3_TEXT)
        assert len(program.views) == 1
        view = program.views[0]
        assert view.name == "Influencer"
        assert len(view.body.selects) == 2
        assert len(program.query.selects) == 1

    def test_projection_fields(self):
        program = parse("select [a: x.p, b: 1] from x in C")
        fields = program.query.selects[0].fields
        assert [f.name for f in fields] == ["a", "b"]
        assert fields[0].expr == Path("x", ("p",))
        assert fields[1].expr == Literal(1)

    def test_bare_projection_named_after_path(self):
        program = parse("select x.name from x in C")
        field = program.query.selects[0].fields[0]
        assert field.name == "name"

    def test_bare_variable_projection(self):
        program = parse("select x from x in C")
        assert program.query.selects[0].fields[0].name == "x"

    def test_arithmetic_precedence(self):
        program = parse("select [v: a.x + a.y * 2] from a in C")
        expr = program.query.selects[0].fields[0].expr
        assert isinstance(expr, BinaryOp) and expr.op == "+"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "*"

    def test_boolean_precedence(self):
        program = parse(
            "select x from x in C where x.a = 1 or x.b = 2 and x.c = 3"
        )
        predicate = program.query.selects[0].predicate
        assert isinstance(predicate, OrNode)
        assert isinstance(predicate.parts[1], AndNode)

    def test_parenthesized_predicate(self):
        program = parse(
            "select x from x in C where (x.a = 1 or x.b = 2) and x.c = 3"
        )
        predicate = program.query.selects[0].predicate
        assert isinstance(predicate, AndNode)
        assert isinstance(predicate.parts[0], OrNode)

    def test_parenthesized_arithmetic_in_comparison(self):
        program = parse("select x from x in C where (x.a + 1) * 2 = 4")
        predicate = program.query.selects[0].predicate
        assert isinstance(predicate, ComparisonNode)

    def test_not_predicate(self):
        program = parse("select x from x in C where not x.a = 1")
        assert isinstance(program.query.selects[0].predicate, NotNode)

    def test_function_call(self):
        program = parse("select [g: add1gen(i.gen)] from i in V")
        expr = program.query.selects[0].fields[0].expr
        assert isinstance(expr, Call)
        assert expr.name == "add1gen"

    def test_missing_from_raises(self):
        with pytest.raises(ParseError):
            parse("select x where x.a = 1")

    def test_trailing_garbage_raises(self):
        with pytest.raises(ParseError):
            parse("select x from x in C extra")

    def test_view_requires_semicolon(self):
        with pytest.raises(ParseError):
            parse("view V as select x from x in C select y from y in D")


class TestCompiler:
    def test_fig3_text_equals_builder_graph(self, indexed_db):
        graph = compile_text(FIG3_TEXT, indexed_db.catalog)
        reference = ReferenceEvaluator(indexed_db.physical)
        assert reference.answer_set(graph) == reference.answer_set(fig3_query())

    def test_join_push_text(self, indexed_db):
        text = """
        view Influencer as
          select [master: x.master, disciple: x, gen: 1] from x in Composer
          union
          select [master: i.master, disciple: x, gen: i.gen + 1]
          from i in Influencer, x in Composer
          where i.disciple = x.master;

        select [name: i.disciple.name]
        from i in Influencer, c in Composer
        where i.master = c.master and c.name = "Bach";
        """
        graph = compile_text(text, indexed_db.catalog)
        reference = ReferenceEvaluator(indexed_db.physical)
        assert reference.answer_set(graph) == reference.answer_set(
            join_push_query()
        )

    def test_compiled_graph_optimizes_and_executes(self, indexed_db):
        from repro.core import cost_controlled_optimizer

        graph = compile_text(FIG3_TEXT, indexed_db.catalog)
        result = cost_controlled_optimizer(indexed_db.physical).optimize(graph)
        got = Engine(indexed_db.physical).execute(result.plan).answer_set()
        want = ReferenceEvaluator(indexed_db.physical).answer_set(graph)
        assert got == want

    def test_unknown_source_rejected(self, indexed_db):
        with pytest.raises(CompileError):
            compile_text("select x from x in Nowhere", indexed_db.catalog)

    def test_unbound_variable_rejected(self, indexed_db):
        with pytest.raises(CompileError):
            compile_text(
                "select y.name from x in Composer", indexed_db.catalog
            )

    def test_duplicate_binding_rejected(self, indexed_db):
        with pytest.raises(CompileError):
            compile_text(
                "select x from x in Composer, x in Composer",
                indexed_db.catalog,
            )

    def test_unknown_function_rejected(self, indexed_db):
        with pytest.raises(CompileError):
            compile_text(
                "select [g: mystery(x.birthyear)] from x in Composer",
                indexed_db.catalog,
            )

    def test_registered_function_compiles_and_runs(self, indexed_db):
        functions = {"double": (lambda v: v * 2, 3.0)}
        graph = compile_text(
            "select [d: double(x.birthyear)] from x in Composer "
            'where x.name = "Bach"',
            indexed_db.catalog,
            functions,
        )
        rows = ReferenceEvaluator(indexed_db.physical).evaluate(graph)
        assert len(rows) == 1
        assert rows[0]["d"] % 2 == 0

    def test_views_without_catalog_allowed(self):
        graph = compile_text("select x from x in Anything")
        assert graph.base_names() == {"Anything"}
