"""Columnar batch layout: round-trip properties and layout parity.

The columnar refactor's contract is representational only — a batch's
layout must be invisible to every consumer.  The properties here pin
the three conversion boundaries:

* ``Batch.from_columns(...).rows`` materializes exactly the binding
  dicts a row batch would carry (same values, same field order), and
  ``Batch(rows).columns`` inverts it;
* columnar exchange frames (run-length encoded columns) decode back to
  the exact tuples the row frames carry, values *and* types;
* running one plan under ``layout=row`` and ``layout=columnar``
  produces identical answers and identical metering counters.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.exchange import decode_tuples, encode_tuples
from repro.engine import Engine
from repro.engine.batch import Batch
from repro.plans import EntityLeaf, Proj, Sel
from repro.querygraph.builder import and_, const, ge, le, out, path

# Atom values covering every kind the engine stores, including the
# adversarial bool/int/float lookalikes (True vs 1 vs 1.0) that a
# type-loose run-length encoder would merge.
_atoms = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
    st.sampled_from([0, 1, True, False, 1.0, 0.0, "", "0"]),
)

_field_names = st.lists(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=8
    ),
    min_size=1,
    max_size=4,
    unique=True,
)


@st.composite
def _uniform_rows(draw):
    """A non-empty list of binding dicts sharing one field order —
    the schema uniformity every operator's emissions guarantee."""
    names = draw(_field_names)
    count = draw(st.integers(min_value=1, max_value=24))
    return [
        {name: draw(_atoms) for name in names} for _ in range(count)
    ]


class TestBatchRoundTrip:
    @given(rows=_uniform_rows())
    @settings(max_examples=200, deadline=None)
    def test_columns_to_rows_to_columns(self, rows):
        columns = {name: [row[name] for row in rows] for name in rows[0]}
        batch = Batch.from_columns(
            {name: list(values) for name, values in columns.items()}
        )
        assert batch.is_columnar
        assert len(batch) == len(rows)
        # Materialized rows match value-for-value, field order included.
        assert batch.rows == rows
        assert [list(row) for row in batch.rows] == [
            list(row) for row in rows
        ]
        # And the inverse conversion recovers the exact columns.
        assert Batch(batch.rows).columns == columns

    @given(rows=_uniform_rows())
    @settings(max_examples=100, deadline=None)
    def test_row_batch_columns_match(self, rows):
        batch = Batch(rows)
        assert not batch.is_columnar
        assert batch.columns == {
            name: [row[name] for row in rows] for name in rows[0]
        }

    def test_empty_columnar_batch(self):
        batch = Batch.from_columns({}, length=0)
        assert len(batch) == 0
        assert not batch
        assert batch.rows == []


class TestExchangeRoundTrip:
    def frames_for(self, tuples, layout):
        return encode_tuples("delta", "fix", 0, 0, tuples, layout=layout)

    @given(rows=_uniform_rows())
    @settings(max_examples=200, deadline=None)
    def test_columnar_frames_decode_exactly(self, rows):
        decoded = decode_tuples(self.frames_for(rows, "columnar"))
        assert decoded == rows
        # JSON round-trips must preserve types exactly: True must not
        # come back as 1, nor 1.0 as 1 (run merging is type-strict).
        for got, want in zip(decoded, rows):
            for name, value in want.items():
                assert type(got[name]) is type(value)

    @given(rows=_uniform_rows())
    @settings(max_examples=50, deadline=None)
    def test_both_layouts_decode_to_the_same_tuples(self, rows):
        columnar = decode_tuples(self.frames_for(rows, "columnar"))
        row_wise = decode_tuples(self.frames_for(rows, "row"))
        assert columnar == row_wise == rows

    def test_empty_sequence_round_trips(self):
        for layout in ("row", "columnar"):
            assert decode_tuples(self.frames_for([], layout)) == []


class TestLayoutParity:
    """layout only changes the representation batches carry; every
    observable counter of the computation itself is invariant."""

    def plan(self):
        return Proj(
            Sel(
                EntityLeaf("Composer", "x"),
                and_(
                    ge(path("x", "birthyear"), const(1600)),
                    le(path("x", "birthyear"), const(1850)),
                ),
            ),
            out(name=path("x", "name")),
        )

    @pytest.mark.parametrize("batch_size", [1, 7, 256])
    def test_row_and_columnar_agree(self, indexed_db, batch_size):
        results = {}
        for layout in ("row", "columnar"):
            engine = Engine(
                indexed_db.physical,
                batch_size=batch_size,
                batch_layout=layout,
            )
            results[layout] = engine.execute(self.plan())
        row, col = results["row"], results["columnar"]
        assert col.answer_set() == row.answer_set()
        assert col.metrics.tuples_by_node == row.metrics.tuples_by_node
        assert col.metrics.predicate_evals == row.metrics.predicate_evals
        assert (
            col.metrics.buffer.logical_reads
            == row.metrics.buffer.logical_reads
        )
        assert col.metrics.batches == row.metrics.batches
        assert col.metrics.column_touches == row.metrics.column_touches
