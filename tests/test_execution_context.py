"""Centralized execution-knob validation (satellite of the sharding
PR): every integer knob — ``parallelism``, ``batch_size``, ``shards``
— is validated by one shared path (:func:`validate_knob`, called from
``ExecutionContext.__post_init__`` and the ``Engine`` constructor), and
every enumerated knob — ``batch_layout``, the service ``strategy`` —
by :func:`validate_choice`, so every entry point rejects the same bad
values with the same message.
"""

import pytest

from repro.engine import Engine
from repro.engine.batch import BATCH_LAYOUTS
from repro.engine.context import (
    ExecutionContext,
    validate_choice,
    validate_knob,
)
from repro.workloads import MusicConfig, generate_music_database

KNOBS = ("parallelism", "batch_size", "shards")


@pytest.fixture(scope="module")
def physical():
    return generate_music_database(
        MusicConfig(lineages=1, generations=2, works_per_composer=1, seed=3)
    ).physical


# -- the shared validator -----------------------------------------------------


def test_validate_knob_accepts_none_and_positive_ints():
    for value in (None, 1, 2, 4096):
        validate_knob("anything", value)  # must not raise


@pytest.mark.parametrize("bad", [0, -1, -100])
def test_validate_knob_rejects_below_minimum(bad):
    with pytest.raises(ValueError, match="knob must be >= 1"):
        validate_knob("knob", bad)


@pytest.mark.parametrize("bad", [1.5, "2", True, False, [4]])
def test_validate_knob_rejects_non_integers(bad):
    with pytest.raises(ValueError, match="knob must be an integer >= 1"):
        validate_knob("knob", bad)


def test_validate_knob_honours_custom_minimum():
    validate_knob("window", 8, minimum=8)
    with pytest.raises(ValueError, match="window must be >= 8"):
        validate_knob("window", 7, minimum=8)


def test_validate_choice_accepts_none_and_members():
    for value in (None, "row", "columnar"):
        validate_choice("batch_layout", value, BATCH_LAYOUTS)  # must not raise


@pytest.mark.parametrize("bad", ["diagonal", "", "ROW", 1, ["row"]])
def test_validate_choice_rejects_non_members(bad):
    with pytest.raises(
        ValueError, match="batch_layout must be one of: row, columnar"
    ):
        validate_choice("batch_layout", bad, BATCH_LAYOUTS)


# -- one test per knob through ExecutionContext -------------------------------


def test_context_validates_parallelism():
    assert ExecutionContext(parallelism=4).parallelism == 4
    with pytest.raises(ValueError, match="parallelism must be >= 1"):
        ExecutionContext(parallelism=0)
    with pytest.raises(ValueError, match="parallelism must be an integer"):
        ExecutionContext(parallelism=2.5)


def test_context_validates_batch_size():
    assert ExecutionContext(batch_size=None).batch_size is None
    assert ExecutionContext(batch_size=256).batch_size == 256
    with pytest.raises(ValueError, match="batch_size must be >= 1"):
        ExecutionContext(batch_size=0)
    with pytest.raises(ValueError, match="batch_size must be an integer"):
        ExecutionContext(batch_size=True)


def test_context_validates_batch_layout():
    assert ExecutionContext(batch_layout=None).batch_layout is None
    assert ExecutionContext(batch_layout="row").batch_layout == "row"
    assert ExecutionContext(batch_layout="columnar").batch_layout == "columnar"
    with pytest.raises(ValueError, match="batch_layout must be one of"):
        ExecutionContext(batch_layout="diagonal")


def test_context_validates_shards():
    assert ExecutionContext(shards=4).shards == 4
    with pytest.raises(ValueError, match="shards must be >= 1"):
        ExecutionContext(shards=-2)
    with pytest.raises(ValueError, match="shards must be an integer"):
        ExecutionContext(shards="4")


# -- the engine constructor goes through the same path ------------------------


@pytest.mark.parametrize("knob", KNOBS)
def test_engine_constructor_rejects_bad_knobs(physical, knob):
    with pytest.raises(ValueError, match=f"{knob} must be >= 1"):
        Engine(physical, **{knob: 0})
    with pytest.raises(ValueError, match=f"{knob} must be an integer >= 1"):
        Engine(physical, **{knob: 3.5})


def test_engine_constructor_validates_batch_layout(physical):
    with pytest.raises(ValueError, match="batch_layout must be one of"):
        Engine(physical, batch_layout="diagonal")


def test_engine_constructor_accepts_good_knobs(physical):
    engine = Engine(
        physical, parallelism=2, batch_size=64, batch_layout="row", shards=2
    )
    assert engine.parallelism == 2
    assert engine.batch_size == 64
    assert engine.batch_layout == "row"
    assert engine.shards == 2
