"""The span tracer: nesting, events, exports, and the optimizer's
search trace (one span per phase, one event per candidate, the
explicit push-vs-no-push cost comparison)."""

import json

import pytest

from repro.core.baselines import cost_controlled_optimizer
from repro.core.strategies import (
    ExhaustiveSearch,
    IterativeImprovement,
    SimulatedAnnealing,
    TwoPhase,
)
from repro.obs import NULL_TRACER, Tracer
from repro.workloads import fig3_query, join_push_query


class TestTracer:
    def test_span_nesting_and_timing(self):
        tracer = Tracer()
        with tracer.span("outer", query="Q") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.parent is None
        assert inner.parent == outer.index
        assert outer.end is not None and outer.duration >= inner.duration
        assert outer.attributes == {"query": "Q"}

    def test_events_attach_to_open_span(self):
        tracer = Tracer()
        tracer.event("orphan", n=0)
        with tracer.span("work"):
            tracer.event("step", n=1)
            tracer.event("step", n=2)
        assert [e.attributes["n"] for e in tracer.find("work")[0].events] == [1, 2]
        assert len(tracer.orphan_events) == 1
        assert len(tracer.events_named("step")) == 2

    def test_exception_closes_span_and_records_error(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        span = tracer.find("doomed")[0]
        assert span.end is not None
        assert "ValueError" in span.attributes["error"]
        assert tracer._stack == []  # stack unwound despite the raise

    def test_set_updates_attributes(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            span.set(result=7)
        assert tracer.spans[0].attributes["result"] == 7

    def test_to_dict_is_json_serializable(self):
        tracer = Tracer()
        with tracer.span("a", k="v"):
            tracer.event("e", n=1)
        payload = json.loads(json.dumps(tracer.to_dict()))
        assert payload["spans"][0]["name"] == "a"
        assert payload["spans"][0]["events"][0]["attributes"] == {"n": 1}

    def test_chrome_trace_format(self):
        tracer = Tracer()
        with tracer.span("phase"):
            tracer.event("point", plan="IJ(...)")
        chrome = tracer.to_chrome_trace()
        kinds = {e["ph"] for e in chrome["traceEvents"]}
        assert kinds == {"X", "i"}
        complete = [e for e in chrome["traceEvents"] if e["ph"] == "X"][0]
        assert complete["ts"] >= 0 and complete["dur"] >= 0
        json.dumps(chrome)  # loadable by chrome://tracing => valid JSON

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything", k=1) as span:
            span.set(more=2)
            NULL_TRACER.event("ignored")
        assert NULL_TRACER.enabled is False


class TestOptimizerTrace:
    @pytest.fixture(scope="class")
    def traced(self, larger_db_session):
        tracer = Tracer()
        optimizer = cost_controlled_optimizer(larger_db_session.physical)
        result = optimizer.optimize(fig3_query(), tracer=tracer)
        return tracer, result

    @pytest.fixture(scope="class")
    def larger_db_session(self):
        from repro.workloads import MusicConfig, generate_music_database

        db = generate_music_database(
            MusicConfig(
                lineages=6,
                generations=8,
                works_per_composer=3,
                instruments=16,
                selective_fraction=0.2,
                seed=1992,
            )
        )
        db.build_paper_indexes()
        return db

    def test_all_four_phases_have_spans(self, traced):
        tracer, _result = traced
        assert tracer.find("rewrite")
        assert tracer.find("generatePT")
        assert tracer.find("transformPT")
        assert tracer.events_named("translate.arc")

    def test_one_event_per_costed_candidate(self, traced):
        tracer, _result = traced
        candidates = tracer.events_named("transformPT.candidate")
        assert len(candidates) >= 2  # at least original + one push
        for event in candidates:
            assert "description" in event.attributes
            assert event.attributes["cost"] > 0
        moves = tracer.events_named("strategy.candidate")
        assert moves, "II reoptimization should emit per-move events"
        for event in moves:
            assert event.attributes["strategy"] == "II"
            assert "cost_before" in event.attributes
            assert "cost_after" in event.attributes
            assert isinstance(event.attributes["accepted"], bool)

    def test_push_comparison_event_records_both_costs(self, traced):
        """Acceptance: the transformPT trace contains an explicit
        push-vs-no-push comparison with both costs recorded."""
        tracer, result = traced
        comparisons = tracer.events_named("transformPT.push_comparison")
        assert len(comparisons) >= 1
        attrs = comparisons[0].attributes
        assert attrs["no_push_cost"] > 0
        assert attrs["push_cost"] > 0
        assert isinstance(attrs["chose_push"], bool)
        # The comparison's winner matches the optimizer's verdict.
        chosen_cost = min(attrs["no_push_cost"], attrs["push_cost"])
        assert result.cost == pytest.approx(chosen_cost)

    def test_optimize_without_tracer_behaves_identically(self, larger_db_session):
        physical = larger_db_session.physical
        plain = cost_controlled_optimizer(physical).optimize(join_push_query())
        traced = cost_controlled_optimizer(physical).optimize(
            join_push_query(), tracer=Tracer()
        )
        assert plain.plan == traced.plan
        assert plain.cost == pytest.approx(traced.cost)

    def test_tracer_reset_after_optimize(self, larger_db_session):
        from repro.obs.trace import NULL_TRACER as null

        optimizer = cost_controlled_optimizer(larger_db_session.physical)
        optimizer.optimize(fig3_query(), tracer=Tracer())
        assert optimizer._tracer is null


class TestStrategyTraceEvents:
    """Every strategy accepts tracer= and reports its moves."""

    @pytest.fixture()
    def searchable(self, larger_db):
        from repro.core.transform import transform_candidates
        from repro.cost import DetailedCostModel
        from repro.lang import compile_text
        from repro.core.baselines import cost_controlled_optimizer

        result = cost_controlled_optimizer(larger_db.physical).optimize(
            fig3_query()
        )
        model = DetailedCostModel(larger_db.physical)
        return result.plan, (lambda p: model.cost(p)), larger_db.physical

    @pytest.mark.parametrize(
        "strategy",
        [
            IterativeImprovement(restarts=1, max_moves=4),
            SimulatedAnnealing(steps_per_temperature=2),
            TwoPhase(),
            ExhaustiveSearch(max_plans=50),
        ],
        ids=["II", "SA", "2PO", "exhaustive"],
    )
    def test_strategy_accepts_tracer(self, searchable, strategy):
        plan, cost_fn, physical = searchable
        tracer = Tracer()
        with tracer.span("search"):
            traced = strategy.search(plan, cost_fn, physical, tracer=tracer)
        untraced = strategy.search(plan, cost_fn, physical)
        assert traced.cost == pytest.approx(untraced.cost)
        assert traced.plans_costed == untraced.plans_costed
        events = tracer.events_named("strategy.candidate")
        # One event per costed move (the initial costing is not a move).
        assert len(events) == traced.plans_costed - (
            2 if isinstance(strategy, TwoPhase) else 1
        )
