"""Tests for selection and path indices ([MS86], [Va87])."""

import pytest

from repro.errors import StorageError
from repro.physical.path_index import (
    PathIndex,
    build_path_index,
    build_selection_index,
)
from repro.physical.storage import Oid


class TestSelectionIndex:
    def test_lookup_by_value(self, small_db):
        index = build_selection_index(small_db.store, "Composer", "name")
        oids = index.lookup("Bach")
        assert len(oids) == 1
        assert small_db.store.peek(oids[0]).values["name"] == "Bach"

    def test_entry_count_matches_extent(self, small_db):
        index = build_selection_index(small_db.store, "Composer", "name")
        assert index.entry_count == len(small_db.store.extent("Composer"))

    def test_missing_key_empty(self, small_db):
        index = build_selection_index(small_db.store, "Composer", "name")
        assert index.lookup("Nobody") == []

    def test_range_over_birthyears(self, small_db):
        index = build_selection_index(small_db.store, "Composer", "birthyear")
        years = [k for k, _oid in index.range(1600, 1650)]
        assert years == sorted(years)
        assert all(1600 <= y <= 1650 for y in years)

    def test_structural_parameters_exposed(self, small_db):
        index = build_selection_index(small_db.store, "Composer", "name")
        assert index.nblevels >= 1
        assert index.nbleaves >= 1
        assert index.name == "Composer.name"


class TestPathIndex:
    def build(self, db):
        return build_path_index(
            db.store,
            "Composer",
            ["works", "instruments"],
            ["Composer", "Composition", "Instrument"],
            terminal_attribute="name",
        )

    def test_forward_lookup_returns_triples(self, small_db):
        index = self.build(small_db)
        composer = small_db.store.extent("Composer").records[0]
        triples = index.forward(composer.oid)
        for triple in triples:
            assert len(triple) == 3
            assert triple[0] == composer.oid
            assert small_db.store.peek(triple[1]).entity == "Composition"
            assert small_db.store.peek(triple[2]).entity == "Instrument"

    def test_forward_matches_manual_traversal(self, small_db):
        index = self.build(small_db)
        store = small_db.store
        for composer in store.extent("Composer").records:
            manual = set()
            for work_oid in composer.values.get("works", ()):
                work = store.peek(work_oid)
                for instrument_oid in work.values.get("instruments", ()):
                    manual.add((composer.oid, work_oid, instrument_oid))
            assert set(map(tuple, index.forward(composer.oid))) == manual

    def test_reverse_lookup_by_terminal_value(self, small_db):
        index = self.build(small_db)
        triples = index.reverse("harpsichord")
        assert triples  # the generator guarantees some harpsichord works
        for triple in triples:
            terminal = small_db.store.peek(triple[-1])
            assert terminal.values["name"] == "harpsichord"

    def test_entry_count_and_scan_agree(self, small_db):
        index = self.build(small_db)
        assert index.entry_count == len(list(index.scan()))

    def test_names(self, small_db):
        index = self.build(small_db)
        assert index.name == "works.instruments"
        assert index.full_name == "Composer.works.instruments"

    def test_arity_validation(self):
        with pytest.raises(StorageError):
            PathIndex("C", ["a"], ["C"])  # needs k+1 entities

    def test_add_wrong_arity_rejected(self):
        index = PathIndex("C", ["a"], ["C", "D"])
        with pytest.raises(StorageError):
            index.add((Oid(1),))

    def test_reverse_by_oid_when_no_terminal_attribute(self, small_db):
        index = build_path_index(
            small_db.store,
            "Composer",
            ["works"],
            ["Composer", "Composition"],
        )
        work = small_db.store.extent("Composition").records[0]
        pairs = index.reverse(work.oid)
        assert pairs
        assert all(pair[1] == work.oid for pair in pairs)


class TestPhysicalSchemaIndexRegistry:
    def test_find_path_index_by_attributes(self, indexed_db):
        index = indexed_db.physical.find_path_index(("works", "instruments"))
        assert index is not None
        assert index.root_entity == "Composer"

    def test_find_path_index_missing(self, indexed_db):
        assert indexed_db.physical.find_path_index(("master",)) is None

    def test_selection_index_lookup(self, indexed_db):
        assert indexed_db.physical.has_selection_index("Composer", "name")
        assert not indexed_db.physical.has_selection_index("Composer", "x")
