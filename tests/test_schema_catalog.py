"""Unit tests for the schema catalog: inheritance, inverses, paths."""

import pytest

from repro.errors import (
    CyclicInheritanceError,
    SchemaError,
    UnknownAttributeError,
    UnknownClassError,
)
from repro.schema.catalog import Catalog
from repro.schema.conceptual import Attribute, ClassDef, InversePair, Method, RelationDef
from repro.schema.types import INT, STRING, ClassRef, SetType


def make_catalog():
    catalog = Catalog()
    catalog.add_class(ClassDef("A", [Attribute("x", INT)]))
    catalog.add_class(
        ClassDef("B", [Attribute("a_ref", ClassRef("A"))], isa="A")
    )
    return catalog


class TestRegistration:
    def test_duplicate_definition_raises(self):
        catalog = make_catalog()
        with pytest.raises(SchemaError):
            catalog.add_class(ClassDef("A", []))

    def test_unknown_lookup_raises(self):
        catalog = make_catalog()
        with pytest.raises(UnknownClassError):
            catalog.get("Nope")

    def test_contains(self):
        catalog = make_catalog()
        assert "A" in catalog
        assert "Nope" not in catalog

    def test_is_class_distinguishes_relations(self):
        catalog = make_catalog()
        catalog.add_relation(RelationDef("R", [Attribute("x", INT)]))
        assert catalog.is_class("A")
        assert not catalog.is_class("R")


class TestInheritance:
    def test_ancestry(self):
        catalog = make_catalog()
        assert catalog.ancestry("B") == ["B", "A"]
        assert catalog.ancestry("A") == ["A"]

    def test_is_subclass(self):
        catalog = make_catalog()
        assert catalog.is_subclass("B", "A")
        assert not catalog.is_subclass("A", "B")

    def test_subclasses(self):
        catalog = make_catalog()
        assert set(catalog.subclasses("A")) == {"A", "B"}

    def test_inherited_attribute_lookup(self):
        catalog = make_catalog()
        assert catalog.attribute("B", "x").type == INT

    def test_missing_attribute_raises(self):
        catalog = make_catalog()
        with pytest.raises(UnknownAttributeError):
            catalog.attribute("B", "nope")

    def test_cycle_detection(self):
        catalog = Catalog()
        catalog.add_class(ClassDef("X", [], isa="Y"))
        catalog.add_class(ClassDef("Y", [], isa="X"))
        with pytest.raises(CyclicInheritanceError):
            catalog.ancestry("X")

    def test_all_attributes_merges_hierarchy(self):
        catalog = make_catalog()
        merged = catalog.all_attributes("B")
        assert set(merged) == {"x", "a_ref"}


class TestMethods:
    def test_method_lookup_through_isa(self):
        catalog = Catalog()
        catalog.add_class(
            ClassDef(
                "P",
                [Attribute("birth", INT)],
                methods=[Method("age", INT, lambda v: 1992 - v["birth"])],
            )
        )
        catalog.add_class(ClassDef("C", [], isa="P"))
        method = catalog.method("C", "age")
        assert method is not None
        assert method.compute({"birth": 1900}) == 92

    def test_method_terminates_path_only(self, catalog):
        with pytest.raises(SchemaError):
            catalog.resolve_path("Composer", ["age", "name"])

    def test_has_member_covers_methods(self, catalog):
        assert catalog.has_member("Composer", "age")
        assert catalog.has_member("Composer", "works")
        assert not catalog.has_member("Composer", "nope")


class TestPathResolution:
    def test_simple_atomic_path(self, catalog):
        resolved = catalog.resolve_path("Composer", ["name"])
        assert resolved.classes == ("Composer",)
        assert resolved.reference_hops() == 0

    def test_multi_hop_path(self, catalog):
        resolved = catalog.resolve_path(
            "Composer", ["works", "instruments", "name"]
        )
        assert resolved.classes == ("Composer", "Composition", "Instrument")
        assert resolved.reference_hops() == 2
        assert resolved.dotted() == "Composer.works.instruments.name"

    def test_self_referencing_path(self, catalog):
        resolved = catalog.resolve_path("Composer", ["master", "master", "name"])
        assert resolved.classes == ("Composer", "Composer", "Composer")

    def test_path_through_atomic_raises(self, catalog):
        with pytest.raises(SchemaError):
            catalog.resolve_path("Composer", ["name", "x"])

    def test_empty_path_raises(self, catalog):
        with pytest.raises(SchemaError):
            catalog.resolve_path("Composer", [])

    def test_multivalued_steps_flagged(self, catalog):
        resolved = catalog.resolve_path("Composer", ["works", "title"])
        assert resolved.steps[0].multivalued
        assert not resolved.steps[1].multivalued


class TestInverseValidation:
    def test_consistent_inverse_passes(self, catalog):
        catalog.validate()  # Figure 1 declares a valid inverse

    def test_inconsistent_inverse_raises(self):
        catalog = Catalog()
        catalog.add_class(ClassDef("A", [Attribute("x", INT)]))
        catalog.add_class(
            ClassDef(
                "B",
                [
                    Attribute(
                        "back",
                        ClassRef("A"),
                        inverse_of=InversePair("A", "x"),
                    )
                ],
            )
        )
        with pytest.raises(SchemaError):
            catalog.validate()

    def test_dangling_reference_raises(self):
        catalog = Catalog()
        catalog.add_class(ClassDef("A", [Attribute("r", ClassRef("Gone"))]))
        with pytest.raises(UnknownClassError):
            catalog.validate()
