"""Service observability: request ids, the explain/trace/metrics
protocol ops, the slow-query log on the serving path, the HTTP
metrics sidecar, and the CLI entry points."""

import io
import json
import os
import urllib.request

import pytest

from repro.cli import main
from repro.service import (
    MetricsServer,
    QueryServer,
    QueryService,
    ServiceClient,
    ServiceConfig,
)
from repro.workloads import MusicConfig, generate_music_database

FIG3 = """
view Influencer as
  select [master: x.master, disciple: x, gen: 1] from x in Composer
  union
  select [master: i.master, disciple: x, gen: i.gen + 1]
  from i in Influencer, x in Composer where i.disciple = x.master;

select [name: i.disciple.name, gen: i.gen]
from i in Influencer
where i.master.works.instruments.name = "harpsichord" and i.gen >= 2;
"""


def build_db():
    db = generate_music_database(
        MusicConfig(lineages=3, generations=6, works_per_composer=2, seed=21)
    )
    db.build_paper_indexes()
    return db


@pytest.fixture()
def service():
    return QueryService(build_db())


class TestRequestIds:
    def test_client_id_is_echoed(self, service):
        response = service.handle({"op": "ping", "id": "corr-77"})
        assert response["ok"] and response["id"] == "corr-77"

    def test_client_id_echoed_on_error(self, service):
        response = service.handle({"op": "no_such_op", "id": 13})
        assert response["ok"] is False and response["id"] == 13

    def test_queries_get_server_request_ids(self, service):
        first = service.handle({"op": "query", "text": FIG3})
        second = service.handle({"op": "query", "text": FIG3})
        assert first["request_id"] and second["request_id"]
        assert first["request_id"] != second["request_id"]
        recent = service.stats()["service"]["recent"]
        assert recent[-1]["request_id"] == second["request_id"]


class TestExplainOp:
    def test_explain_estimates_only(self, service):
        response = service.handle({"op": "explain", "text": FIG3})
        assert response["ok"] and response["analyzed"] is False
        assert "est rows=" in response["plan"]
        assert "act rows=" not in response["plan"]
        assert response["tree"]["plan"]["est_cost"] > 0
        assert response["candidates"]

    def test_explain_analyze_has_actuals(self, service):
        response = service.handle(
            {"op": "explain", "text": FIG3, "analyze": True}
        )
        assert response["ok"] and response["analyzed"] is True
        assert "act rows=" in response["plan"]
        assert "[base: +" in response["plan"]  # Fix per-iteration actuals
        assert response["row_count"] == response["tree"]["plan"]["actual_rows"]
        json.dumps(response["tree"])  # wire-safe

    def test_explain_requires_text(self, service):
        response = service.handle({"op": "explain"})
        assert response["ok"] is False
        assert response["error"]["code"] == "protocol_error"


class TestTraceOp:
    def test_trace_returns_spans_and_chrome(self, service):
        response = service.handle({"op": "trace", "text": FIG3})
        assert response["ok"]
        names = [s["name"] for s in response["trace"]["spans"]]
        for phase in ("optimize", "rewrite", "generatePT", "transformPT", "execute"):
            assert phase in names, names
        events = [
            e
            for s in response["trace"]["spans"]
            for e in s.get("events", [])
        ]
        assert any(e["name"] == "transformPT.push_comparison" for e in events)
        assert {"X", "i"} >= {
            e["ph"] for e in response["chrome_trace"]["traceEvents"]
        }
        assert response["profile"]["nodes"]

    def test_trace_optimize_only(self, service):
        response = service.handle(
            {"op": "trace", "text": FIG3, "execute": False}
        )
        assert response["ok"]
        names = [s["name"] for s in response["trace"]["spans"]]
        assert "execute" not in names
        assert "profile" not in response


class TestMetricsOp:
    def test_metrics_exposition(self, service):
        service.handle({"op": "query", "text": FIG3})
        response = service.handle({"op": "metrics"})
        assert response["ok"]
        assert "repro_queries_executed_total 1" in response["metrics"]

    def test_http_sidecar(self, service):
        sidecar = MetricsServer(service, port=0)
        sidecar.start()
        try:
            body = (
                urllib.request.urlopen(
                    f"http://{sidecar.address}/metrics", timeout=5
                )
                .read()
                .decode()
            )
            assert "# TYPE repro_requests_total counter" in body
            with pytest.raises(urllib.error.HTTPError) as failure:
                urllib.request.urlopen(
                    f"http://{sidecar.address}/somewhere-else", timeout=5
                )
            assert failure.value.code == 404
        finally:
            sidecar.stop()


class TestSlowQueryLog:
    def test_slow_threshold_routes_to_log(self):
        service = QueryService(
            build_db(),
            ServiceConfig(slow_query_seconds=0.0, misestimate_ratio=None),
        )
        service.handle({"op": "query", "text": FIG3})
        slow = service.stats()["service"]["slow"]
        assert len(slow) == 1
        assert "execute took" in slow[0]["reasons"][0]

    def test_misestimate_routes_to_log(self):
        service = QueryService(
            build_db(),
            ServiceConfig(slow_query_seconds=None, misestimate_ratio=1.0000001),
        )
        service.handle({"op": "query", "text": FIG3})
        slow = service.stats()["service"]["slow"]
        assert len(slow) == 1
        assert "cost ratio" in slow[0]["reasons"][0]

    def test_defaults_do_not_flag_healthy_queries(self, service):
        service.handle({"op": "query", "text": FIG3})
        assert service.stats()["service"]["slow_queries"] == 0


class TestOverTheWire:
    def test_explain_and_metrics_over_tcp(self):
        service = QueryService(build_db())
        server = QueryServer(service, port=0)
        server.start()
        client = ServiceClient("127.0.0.1", server.port)
        try:
            explain = client.request(
                {"op": "explain", "text": FIG3, "analyze": True, "id": "e1"}
            )
            assert explain["id"] == "e1" and "act rows=" in explain["plan"]
            metrics = client.request({"op": "metrics"})
            assert "repro_requests_total" in metrics["metrics"]
        finally:
            client.close()
            server.stop()


class TestCli:
    def run_cli(self, argv):
        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    @pytest.fixture()
    def query_file(self, tmp_path):
        path = tmp_path / "influence.oql"
        path.write_text(FIG3)
        return str(path)

    def common(self):
        return ["--lineages", "3", "--generations", "5"]

    def test_explain_analyze(self, query_file):
        code, output = self.run_cli(
            ["explain", "--analyze", query_file] + self.common()
        )
        assert code == 0
        assert "EXPLAIN ANALYZE" in output
        assert "est rows=" in output and "act rows=" in output
        assert "[base: +" in output
        assert "actuals:" in output

    def test_explain_json_export(self, query_file, tmp_path):
        target = tmp_path / "explain.json"
        code, _output = self.run_cli(
            ["explain", "--analyze", "--json", str(target), query_file]
            + self.common()
        )
        assert code == 0
        payload = json.loads(target.read_text())
        assert payload["analyzed"] is True
        assert payload["plan"]["actual_rows"] is not None

    def test_trace_chrome_output(self, query_file, tmp_path):
        target = tmp_path / "trace.json"
        code, output = self.run_cli(
            ["trace", query_file, "-o", str(target)] + self.common()
        )
        assert code == 0 and "trace written to" in output
        payload = json.loads(target.read_text())
        assert payload["traceEvents"]
        assert any(
            e["name"] == "transformPT.push_comparison"
            for e in payload["traceEvents"]
        )

    def test_trace_json_output(self, query_file, tmp_path):
        target = tmp_path / "trace.json"
        code, _output = self.run_cli(
            ["trace", query_file, "-o", str(target), "--format", "json"]
            + self.common()
        )
        assert code == 0
        payload = json.loads(target.read_text())
        assert [s["name"] for s in payload["spans"]].count("optimize") == 1
        assert payload["profile"]["nodes"]

    def test_serve_with_metrics_port(self):
        import threading

        box = []
        out = io.StringIO()
        from repro.cli import build_parser, cmd_serve

        args = build_parser().parse_args(
            [
                "serve",
                "--port",
                "0",
                "--metrics-port",
                "0",
                "--lineages",
                "2",
                "--generations",
                "4",
            ]
        )
        thread = threading.Thread(
            target=cmd_serve, args=(args, out, box), daemon=True
        )
        thread.start()
        import time

        deadline = time.time() + 30
        while len(box) < 2 and time.time() < deadline:
            time.sleep(0.05)
        assert len(box) == 2, out.getvalue()
        server, metrics_server = box
        try:
            body = (
                urllib.request.urlopen(
                    f"http://{metrics_server.address}/metrics", timeout=5
                )
                .read()
                .decode()
            )
            assert "repro_requests_total" in body
            client = ServiceClient("127.0.0.1", server.port)
            client.request({"op": "shutdown"})
            client.close()
        finally:
            thread.join(timeout=10)
        assert "metrics on http://" in out.getvalue()
