"""The distributed cost terms (network / disk / skew) and the
distributed-Fix variant of the detailed model.

The acceptance properties:

* at ``shards=1`` every distributed term is inert — the Fix formula is
  bit-for-bit the serial (or parallel) sum, no matter how extreme the
  network and skew parameters are;
* on an I/O-heavy recursive plan, adding shards lowers the estimated
  cost (the rounds divide across shards faster than the exchange legs
  charge);
* the shard-local vs repartition chooser ranks the strategies
  correctly on constructed balanced and skewed partition layouts.
"""

import pytest

from repro.core import cost_controlled_optimizer
from repro.cost.distributed import (
    REPARTITION,
    SHARD_LOCAL,
    choose_join_strategy,
    choose_round_strategy,
    exchange_cost,
    repartition_join_cost,
    shard_local_join_cost,
    sharded_scan_cost,
    skew_factor,
)
from repro.cost.model import DetailedCostModel
from repro.cost.params import CostParameters
from repro.workloads import MusicConfig, generate_music_database
from repro.workloads.queries import fig3_query


@pytest.fixture(scope="module")
def music_db():
    db = generate_music_database(
        MusicConfig(lineages=3, generations=5, works_per_composer=2, seed=41)
    )
    db.build_paper_indexes()
    return db


@pytest.fixture(scope="module")
def fig3_plan(music_db):
    graph = fig3_query()
    return cost_controlled_optimizer(music_db.physical).optimize(graph).plan


# -- primitive terms ----------------------------------------------------------


def test_skew_factor_is_max_over_mean():
    assert skew_factor([]) == 1.0
    assert skew_factor([0, 0]) == 1.0
    assert skew_factor([10, 10, 10, 10]) == 1.0
    assert skew_factor([900, 10, 10, 10]) == pytest.approx(900 / 232.5)
    assert skew_factor([5]) == 1.0


def test_exchange_cost_charges_tuples_and_frames():
    params = CostParameters(network_per_tuple=0.01, network_per_round=0.5)
    assert exchange_cost(100, 4, params) == pytest.approx(100 * 0.01 + 4 * 0.5)
    # Empty exchanges still pay the per-shard frame latency.
    assert exchange_cost(0, 4, params) == pytest.approx(4 * 0.5)


def test_sharded_scan_cost_routes_by_shard_key():
    params = CostParameters(network_per_round=0.25)
    # Replicated extents never divide: one shard scans in full.
    assert sharded_scan_cost(100, 4, params) == pytest.approx(100.0)
    assert sharded_scan_cost(
        100, 4, params, partitioned=True, key_match=True
    ) == pytest.approx(100 / 4 + 0.25)
    # No usable key: scatter everywhere, gated by the skew of the
    # observed partition sizes.
    scattered = sharded_scan_cost(
        100,
        4,
        params,
        partitioned=True,
        partition_sizes=[900, 10, 10, 10],
    )
    assert scattered == pytest.approx(
        100 * (900 / 232.5) / 4 + 4 * 0.25
    )
    # At one shard everything degenerates to a plain scan.
    assert sharded_scan_cost(
        100, 1, params, partitioned=True, key_match=True
    ) == pytest.approx(100.0)


# -- the join-strategy chooser ------------------------------------------------


def test_chooser_prefers_shard_local_on_balanced_partitions():
    params = CostParameters()
    balanced = [250, 250, 250, 250]
    strategy, cost = choose_join_strategy(balanced, 0.02, params)
    assert strategy == SHARD_LOCAL
    assert cost == pytest.approx(
        shard_local_join_cost(balanced, 0.02, params)
    )
    # Balanced partitions have no skew to pay, so shipping every tuple
    # across the exchange can only add cost.
    assert cost < repartition_join_cost(balanced, 0.02, params)


def test_chooser_prefers_repartition_on_skewed_partitions():
    # One hot shard holds 90% of the probe side: the barrier waits on
    # it, so paying the exchange to rebalance wins.
    params = CostParameters(network_per_tuple=0.005, network_per_round=0.05)
    skewed = [900, 10, 10, 10]
    strategy, cost = choose_join_strategy(skewed, 0.1, params)
    assert strategy == REPARTITION
    assert cost == pytest.approx(repartition_join_cost(skewed, 0.1, params))
    assert cost < shard_local_join_cost(skewed, 0.1, params)


def test_round_strategy_chooser_on_constructed_scenarios():
    # Balanced rounds (skew 1): staying put is free, shipping pays the
    # exchange for nothing.
    params = CostParameters(shard_skew=1.0)
    strategy, io, cpu = choose_round_strategy(40.0, 4.0, 200.0, 4, params)
    assert strategy == SHARD_LOCAL
    assert io == pytest.approx(40.0 / 4)
    # Heavy skew: the most loaded shard gates the round, so the chooser
    # pays the exchange to run balanced.
    skewed = CostParameters(shard_skew=3.5)
    strategy, io, cpu = choose_round_strategy(40.0, 4.0, 200.0, 4, skewed)
    assert strategy == REPARTITION
    assert io == pytest.approx(
        40.0 / 4 + exchange_cost(200.0, 4, skewed)
    )


# -- the distributed-Fix variant in the detailed model ------------------------


def test_shards_one_reduces_to_the_exact_serial_formula(music_db, fig3_plan):
    baseline = DetailedCostModel(music_db.physical).cost(fig3_plan)
    # Extreme distributed parameters must be unobservable at shards=1.
    params = CostParameters(
        shards=1,
        network_per_tuple=999.0,
        network_per_round=999.0,
        shard_skew=9.0,
    )
    assert DetailedCostModel(music_db.physical, params).cost(
        fig3_plan
    ) == baseline


def test_distributed_fix_cost_decreases_with_shards(music_db, fig3_plan):
    costs = {}
    for shards in (1, 2, 4):
        params = CostParameters(shards=shards)
        costs[shards] = DetailedCostModel(music_db.physical, params).cost(
            fig3_plan
        )
    assert costs[2] < costs[1]
    assert costs[4] < costs[2]


def test_distributed_fix_cost_charges_the_network(music_db, fig3_plan):
    cheap_net = CostParameters(shards=4)
    pricey_net = CostParameters(
        shards=4, network_per_tuple=1.0, network_per_round=10.0
    )
    cheap = DetailedCostModel(music_db.physical, cheap_net).cost(fig3_plan)
    pricey = DetailedCostModel(music_db.physical, pricey_net).cost(fig3_plan)
    assert pricey > cheap
