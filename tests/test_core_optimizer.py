"""End-to-end optimizer tests: the four steps, policies and baselines."""

import pytest

from repro.core import (
    Optimizer,
    OptimizerConfig,
    cost_controlled_optimizer,
    deductive_optimizer,
    exhaustive_optimizer,
    naive_optimizer,
)
from repro.cost import DetailedCostModel
from repro.engine import Engine, ReferenceEvaluator
from repro.errors import OptimizationError
from repro.plans import EJ, Fix, Materialize, Sel, find_all, validate_plan
from repro.querygraph.builder import (
    and_,
    arc,
    const,
    eq,
    ge,
    out,
    path,
    query,
    rule,
    spj,
    var,
)
from repro.workloads import fig2_query, fig3_query, join_push_query


def check_equivalence(db, graph, result):
    engine = Engine(db.physical)
    reference = ReferenceEvaluator(db.physical)
    assert engine.execute(result.plan).answer_set() == reference.answer_set(graph)


class TestOptimizePipeline:
    def test_fig2(self, indexed_db):
        result = cost_controlled_optimizer(indexed_db.physical).optimize(
            fig2_query()
        )
        validate_plan(result.plan, indexed_db.physical)
        assert result.cost > 0
        check_equivalence(indexed_db, fig2_query(), result)

    def test_fig3(self, indexed_db):
        result = cost_controlled_optimizer(indexed_db.physical).optimize(
            fig3_query()
        )
        validate_plan(result.plan, indexed_db.physical)
        assert find_all(result.plan, Fix)
        check_equivalence(indexed_db, fig3_query(), result)

    def test_join_push_query(self, indexed_db):
        result = cost_controlled_optimizer(indexed_db.physical).optimize(
            join_push_query()
        )
        validate_plan(result.plan, indexed_db.physical)
        check_equivalence(indexed_db, join_push_query(), result)

    def test_candidates_recorded(self, indexed_db):
        result = cost_controlled_optimizer(indexed_db.physical).optimize(
            fig3_query()
        )
        assert len(result.candidates) >= 2  # original + pushed
        costs = [cost for _d, cost in result.candidates]
        assert costs == sorted(costs)
        assert result.cost == pytest.approx(costs[0])

    def test_rewrite_trace_populated(self, indexed_db):
        result = cost_controlled_optimizer(indexed_db.physical).optimize(
            fig3_query()
        )
        assert any("fixpoint" in step for step in result.rewrite_trace)

    def test_plans_costed_counted(self, indexed_db):
        result = cost_controlled_optimizer(indexed_db.physical).optimize(
            fig3_query()
        )
        assert result.plans_costed > 5

    def test_elapsed_recorded(self, indexed_db):
        result = cost_controlled_optimizer(indexed_db.physical).optimize(
            fig2_query()
        )
        assert result.elapsed_seconds > 0


class TestPolicies:
    def test_always_push_pushes(self, indexed_db):
        result = deductive_optimizer(indexed_db.physical).optimize(fig3_query())
        assert result.chose_push()
        check_equivalence(indexed_db, fig3_query(), result)

    def test_never_push_does_not(self, indexed_db):
        result = naive_optimizer(indexed_db.physical).optimize(fig3_query())
        assert not result.chose_push()
        check_equivalence(indexed_db, fig3_query(), result)

    def test_cost_policy_never_worse_than_either_heuristic(self, indexed_db):
        model = DetailedCostModel(indexed_db.physical)
        cost_based = Optimizer(
            indexed_db.physical, model, OptimizerConfig(reoptimize=False)
        ).optimize(fig3_query())
        always = deductive_optimizer(indexed_db.physical, model).optimize(
            fig3_query()
        )
        never = naive_optimizer(indexed_db.physical, model).optimize(fig3_query())
        assert cost_based.cost <= always.cost + 1e-9
        assert cost_based.cost <= never.cost + 1e-9

    def test_exhaustive_at_least_as_good_as_cost_controlled(self, indexed_db):
        model = DetailedCostModel(indexed_db.physical)
        exhaustive = exhaustive_optimizer(
            indexed_db.physical, model, max_plans=300
        ).optimize(fig3_query())
        controlled = cost_controlled_optimizer(
            indexed_db.physical, model
        ).optimize(fig3_query())
        assert exhaustive.cost <= controlled.cost + 1e-9

    def test_exhaustive_costs_more_plans(self, indexed_db):
        model = DetailedCostModel(indexed_db.physical)
        exhaustive = exhaustive_optimizer(
            indexed_db.physical, model, max_plans=300
        ).optimize(fig3_query())
        controlled = Optimizer(
            indexed_db.physical, model, OptimizerConfig(reoptimize=False)
        ).optimize(fig3_query())
        assert exhaustive.plans_costed > controlled.plans_costed

    def test_unknown_policy_rejected(self):
        with pytest.raises(OptimizationError):
            OptimizerConfig(push_policy="sometimes")


class TestNonRecursiveViews:
    def test_union_view_materialized(self, indexed_db):
        r1 = rule(
            "Names",
            spj([arc("Composer", x=".")], select=out(n=path("x", "name"))),
        )
        r2 = rule(
            "Names",
            spj([arc("Instrument", y=".")], select=out(n=path("y", "name"))),
        )
        answer = rule(
            "Answer",
            spj(
                [arc("Names", v=".")],
                where=eq(path("v", "n"), const("flute")),
                select=out(n=path("v", "n")),
            ),
        )
        graph = query(r1, r2, answer)
        result = cost_controlled_optimizer(indexed_db.physical).optimize(graph)
        assert find_all(result.plan, Materialize)
        check_equivalence(indexed_db, graph, result)

    def test_single_rule_view(self, indexed_db):
        view = rule(
            "Late",
            spj(
                [arc("Composer", x=".")],
                where=ge(path("x", "birthyear"), const(1700)),
                select=out(n=path("x", "name"), y=path("x", "birthyear")),
            ),
        )
        answer = rule(
            "Answer",
            spj([arc("Late", v=".")], select=out(n=path("v", "n"))),
        )
        graph = query(view, answer)
        result = cost_controlled_optimizer(indexed_db.physical).optimize(graph)
        check_equivalence(indexed_db, graph, result)


class TestLargerDatabase:
    def test_fig3_on_larger_db(self, larger_db):
        result = cost_controlled_optimizer(larger_db.physical).optimize(
            fig3_query()
        )
        check_equivalence(larger_db, fig3_query(), result)

    def test_all_policies_agree_on_answers(self, larger_db):
        graph = join_push_query()
        reference = ReferenceEvaluator(larger_db.physical).answer_set(graph)
        for factory in (
            cost_controlled_optimizer,
            deductive_optimizer,
            naive_optimizer,
        ):
            result = factory(larger_db.physical).optimize(graph)
            engine = Engine(larger_db.physical)
            assert engine.execute(result.plan).answer_set() == reference
