"""Tests for transformPT: the filter action and candidate comparison."""

import pytest

from repro.core.transform import (
    apply_filter,
    find_filter_sites,
    transform_candidates,
)
from repro.engine import Engine
from repro.plans import (
    EJ,
    IJ,
    PIJ,
    EntityLeaf,
    Fix,
    Proj,
    RecLeaf,
    Sel,
    UnionOp,
    find_all,
    validate_plan,
)
from repro.querygraph.builder import add, const, eq, ge, out, path, var


def make_fix():
    base = Proj(
        EntityLeaf("Composer", "x"),
        out(master=path("x", "master"), disciple=var("x"), gen=const(1)),
    )
    recursive = Proj(
        EJ(
            RecLeaf("Influencer", "i"),
            EntityLeaf("Composer", "x"),
            eq(path("i", "disciple"), path("x", "master")),
        ),
        out(
            master=path("i", "master"),
            disciple=var("x"),
            gen=add(path("i", "gen"), const(1)),
        ),
    )
    return Fix(
        "Influencer", UnionOp(base, recursive), "i", "Composer", "master", {"master"}
    )


def selection_pipeline(fix):
    """PT 4(i): the harpsichord selection (with its hops) above Fix."""
    return Proj(
        IJ(
            Sel(
                PIJ(
                    IJ(
                        Sel(fix, ge(path("i", "gen"), const(6))),
                        EntityLeaf("Composer", "m"),
                        path("i", "master"),
                        "m",
                    ),
                    [
                        EntityLeaf("Composition", "w"),
                        EntityLeaf("Instrument", "ins"),
                    ],
                    ["works", "instruments"],
                    var("m"),
                    ["w", "ins"],
                ),
                eq(path("ins", "name"), const("harpsichord")),
            ),
            EntityLeaf("Composer", "d"),
            path("i", "disciple"),
            "d",
        ),
        out(name=path("d", "name")),
    )


def join_pipeline(fix):
    """The Section 4.5 shape: a selective join above the Fix."""
    return Proj(
        IJ(
            EJ(
                fix,
                Sel(
                    EntityLeaf("Composer", "c"),
                    eq(path("c", "name"), const("Bach")),
                ),
                eq(path("i", "master"), path("c", "master")),
            ),
            EntityLeaf("Composer", "d"),
            path("i", "disciple"),
            "d",
        ),
        out(name=path("d", "name")),
    )


class TestSegmentExtraction:
    def test_selection_segment_found(self):
        plan = selection_pipeline(make_fix())
        sites = find_filter_sites(plan)
        assert len(sites) == 1
        labels = [node.label() for node in sites[0].pushed]
        assert labels[0].startswith("IJ[i.master")
        assert labels[-1].startswith("Sel")
        # gen >= 6 is computed -> skippable, not pushed.
        assert any("gen" in node.label() for node in sites[0].kept)

    def test_gen_only_selection_not_pushable(self):
        plan = Proj(
            Sel(make_fix(), ge(path("i", "gen"), const(6))),
            out(g=path("i", "gen")),
        )
        assert find_filter_sites(plan) == []

    def test_join_segment_found_left_and_right(self):
        plan = join_pipeline(make_fix())
        sites = find_filter_sites(plan)
        assert len(sites) == 1
        assert sites[0].has_join

        # Commuted: Fix on the right side of the EJ.
        swapped = Proj(
            IJ(
                EJ(
                    Sel(
                        EntityLeaf("Composer", "c"),
                        eq(path("c", "name"), const("Bach")),
                    ),
                    make_fix(),
                    eq(path("i", "master"), path("c", "master")),
                ),
                EntityLeaf("Composer", "d"),
                path("i", "disciple"),
                "d",
            ),
            out(name=path("d", "name")),
        )
        swapped_sites = find_filter_sites(swapped)
        assert len(swapped_sites) == 1
        assert swapped_sites[0].has_join

    def test_join_on_rebound_field_blocked(self):
        plan = Proj(
            EJ(
                make_fix(),
                Sel(
                    EntityLeaf("Composer", "c"),
                    eq(path("c", "name"), const("Bach")),
                ),
                eq(path("i", "disciple"), path("c", "master")),  # rebound!
            ),
            out(g=path("i", "gen")),
        )
        assert find_filter_sites(plan) == []

    def test_join_allowed_flag(self):
        plan = join_pipeline(make_fix())
        assert find_filter_sites(plan, allow_join=False) == []

    def test_no_invariants_no_sites(self):
        fix = make_fix()
        stripped = Fix(fix.name, fix.body, fix.out_var, invariant_fields=set())
        plan = selection_pipeline(stripped)
        assert find_filter_sites(plan) == []

    def test_consumer_of_segment_vars_blocks_push(self):
        """If something above the segment reads a segment variable,
        the segment cannot disappear into the recursion."""
        fix = make_fix()
        plan = Proj(
            Sel(
                PIJ(
                    IJ(
                        fix,
                        EntityLeaf("Composer", "m"),
                        path("i", "master"),
                        "m",
                    ),
                    [
                        EntityLeaf("Composition", "w"),
                        EntityLeaf("Instrument", "ins"),
                    ],
                    ["works", "instruments"],
                    var("m"),
                    ["w", "ins"],
                ),
                eq(path("ins", "name"), const("harpsichord")),
            ),
            out(work=path("w", "title")),  # reads a segment variable
        )
        assert find_filter_sites(plan) == []


class TestApplyFilter:
    def test_pushed_plan_matches_fig4ii_shape(self, indexed_db):
        plan = selection_pipeline(make_fix())
        segment = find_filter_sites(plan)[0]
        pushed = apply_filter(plan, segment)
        validate_plan(pushed, indexed_db.physical)
        fix = find_all(pushed, Fix)[0]
        inner_sels = find_all(fix.body, Sel)
        assert len(inner_sels) == 2  # one per union part
        # gen >= 6 stays above the Fix.
        outer_sels = [
            s
            for s in find_all(pushed, Sel)
            if s not in inner_sels
        ]
        assert any("gen" in repr(s.predicate) for s in outer_sels)

    def test_push_preserves_answers(self, indexed_db):
        plan = selection_pipeline(make_fix())
        segment = find_filter_sites(plan)[0]
        pushed = apply_filter(plan, segment)
        engine = Engine(indexed_db.physical)
        assert (
            engine.execute(plan).answer_set()
            == engine.execute(pushed).answer_set()
        )

    def test_join_push_preserves_answers(self, indexed_db):
        plan = join_pipeline(make_fix())
        segment = find_filter_sites(plan)[0]
        pushed = apply_filter(plan, segment)
        validate_plan(pushed, indexed_db.physical)
        engine = Engine(indexed_db.physical)
        assert (
            engine.execute(plan).answer_set()
            == engine.execute(pushed).answer_set()
        )

    def test_pushed_join_copies_inner_per_part(self, indexed_db):
        plan = join_pipeline(make_fix())
        segment = find_filter_sites(plan)[0]
        pushed = apply_filter(plan, segment)
        fix = find_all(pushed, Fix)[0]
        inner_joins = [
            n
            for n in find_all(fix.body, EJ)
            if "c_p" in repr(n.predicate)
        ]
        assert len(inner_joins) == 2

    def test_variables_renamed_per_part(self, indexed_db):
        plan = selection_pipeline(make_fix())
        segment = find_filter_sites(plan)[0]
        pushed = apply_filter(plan, segment)
        fix = find_all(pushed, Fix)[0]
        sels = find_all(fix.body, Sel)
        variables = set()
        for sel in sels:
            variables |= sel.predicate.variables()
        # Two distinct renamed instrument variables.
        assert len(variables) == 2


class TestCandidateClosure:
    def test_candidates_include_original_and_pushed(self):
        plan = selection_pipeline(make_fix())
        candidates = transform_candidates(plan)
        assert len(candidates) == 2
        descriptions = [d for d, _p in candidates]
        assert "original" in descriptions

    def test_no_fix_means_single_candidate(self):
        plan = Proj(
            Sel(EntityLeaf("Composer", "x"), eq(path("x", "name"), const("Bach"))),
            out(n=path("x", "name")),
        )
        assert len(transform_candidates(plan)) == 1
