"""Tests for the Figure 1 sample catalog."""

from repro.schema.sample import CURRENT_YEAR, build_music_catalog
from repro.schema.types import ClassRef, SetType


class TestMusicCatalog:
    def test_all_names_present(self, catalog):
        for name in ("Person", "Composer", "Composition", "Instrument", "Play"):
            assert name in catalog

    def test_composer_isa_person(self, catalog):
        assert catalog.is_subclass("Composer", "Person")

    def test_composer_inherits_name(self, catalog):
        assert catalog.attribute("Composer", "name").type.type_name() == "string"

    def test_works_is_set_of_compositions(self, catalog):
        works = catalog.attribute("Composer", "works")
        assert works.type == SetType(ClassRef("Composition"))
        assert works.is_multivalued()
        assert works.referenced_class() == "Composition"

    def test_author_inverse_declared(self, catalog):
        author = catalog.attribute("Composition", "author")
        assert author.inverse_of is not None
        assert author.inverse_of.other_class == "Composer"
        assert author.inverse_of.other_attribute == "works"

    def test_age_method(self, catalog):
        method = catalog.method("Composer", "age")
        assert method is not None
        assert method.compute({"birthyear": CURRENT_YEAR - 50}) == 50
        assert method.compute({}) is None

    def test_play_is_relation(self, catalog):
        assert not catalog.is_class("Play")

    def test_catalog_is_freshly_built_each_call(self):
        assert build_music_catalog() is not build_music_catalog()
