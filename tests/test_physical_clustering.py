"""Tests for clustering, fragments and statistics."""

import pytest

from repro.physical.clustering import ClusterTree, apply_clustering, cluster_along_path
from repro.physical.fragments import (
    SOURCE_ATTRIBUTE,
    create_horizontal_fragment,
    create_vertical_fragment,
)
from repro.physical.stats import Statistics


class TestClustering:
    def test_clustering_colocates_subobjects(self, small_db):
        store = small_db.store
        stats_before = Statistics(store)
        before = stats_before.clustered_fraction("Composer", "works")
        tree = ClusterTree("Composer", {"works": None})
        apply_clustering(store, tree)
        stats_after = Statistics(store)
        after = stats_after.clustered_fraction("Composer", "works")
        assert after > before

    def test_all_records_remain_reachable(self, small_db):
        store = small_db.store
        tree = ClusterTree(
            "Composer", {"works": ClusterTree("Composition", {"instruments": None})}
        )
        apply_clustering(store, tree)
        for name in ("Composer", "Composition", "Instrument"):
            for record in store.extent(name).records:
                assert record.page_id is not None
                fetched = store.fetch(record.oid)
                assert fetched is record

    def test_scan_counts_still_correct_after_clustering(self, small_db):
        store = small_db.store
        n_composers = len(store.extent("Composer"))
        apply_clustering(store, ClusterTree("Composer", {"works": None}))
        assert len(list(store.scan("Composer"))) == n_composers

    def test_cluster_along_path_convenience(self, small_db):
        segment = cluster_along_path(
            small_db.store,
            "Composer",
            ["works", "instruments"],
            ["Composition", "Instrument"],
        )
        assert segment.record_count() >= len(small_db.store.extent("Composer"))

    def test_page_aligned_owners(self, small_db):
        store = small_db.store
        tree = ClusterTree("Composer", {"works": None})
        segment = apply_clustering(store, tree, page_aligned_owners=True)
        # Each composer starts a fresh page, so there are at least as
        # many pages as composers.
        assert segment.page_count() >= len(store.extent("Composer"))


class TestFragments:
    def test_horizontal_fragment_subset(self, small_db):
        store = small_db.store
        info = create_horizontal_fragment(
            store,
            "Composer",
            "Composer_late",
            lambda record: record.values.get("birthyear", 0) >= 1700,
        )
        assert info.kind == "horizontal"
        fragment_records = store.extent("Composer_late").records
        assert all(
            record.values["birthyear"] >= 1700 for record in fragment_records
        )
        expected = sum(
            1
            for record in store.extent("Composer").records
            if record.values.get("birthyear", 0) >= 1700
        )
        assert len(fragment_records) == expected

    def test_horizontal_fragment_links_source(self, small_db):
        store = small_db.store
        create_horizontal_fragment(
            store, "Composer", "Frag", lambda record: True
        )
        for record in store.extent("Frag").records:
            source = store.peek(record.values[SOURCE_ATTRIBUTE])
            assert source.entity == "Composer"
            assert source.values["name"] == record.values["name"]

    def test_vertical_fragment_narrow(self, small_db):
        store = small_db.store
        info = create_vertical_fragment(
            store, "Composer", "Composer_names", ["name"]
        )
        assert info.kind == "vertical"
        fragment = store.extent("Composer_names")
        for record in fragment.records:
            assert set(record.values) == {"name", SOURCE_ATTRIBUTE}
        # Narrow records pack denser: fewer pages than the base extent.
        assert fragment.page_count() <= store.extent("Composer").page_count()

    def test_fragment_registration(self, small_db):
        info = create_vertical_fragment(
            small_db.store, "Composer", "VFrag", ["name"]
        )
        entity = small_db.physical.register_fragment(info)
        assert entity.kind == "fragment"
        assert entity.conceptual_name == "Composer"
        impls = small_db.physical.implementations_of("Composer")
        assert [e.kind for e in impls][0] == "extent"
        assert any(e.name == "VFrag" for e in impls)


class TestStatistics:
    def test_basic_counts(self, small_db):
        stats = small_db.physical.statistics
        count = small_db.config.composer_count
        assert stats.instances("Composer") == count
        assert stats.pages("Composer") >= 1

    def test_eq_selectivity_uniform(self, small_db):
        stats = small_db.physical.statistics
        selectivity = stats.eq_selectivity("Composer", "name")
        assert selectivity == pytest.approx(1.0 / small_db.config.composer_count)

    def test_fanout_of_works(self, small_db):
        stats = small_db.physical.statistics
        assert stats.fanout("Composer", "works") == pytest.approx(
            small_db.config.works_per_composer
        )

    def test_chain_depths_match_generations(self, small_db):
        stats = small_db.physical.statistics
        maximum, mean = stats.chain_depth("Composer", "master")
        assert maximum == small_db.config.generations - 1
        assert 0 < mean < maximum

    def test_chain_survivors_shrink(self, small_db):
        stats = small_db.physical.statistics
        survivors = stats.chain_survivors("Composer", "master")
        assert survivors == sorted(survivors, reverse=True)
        # g-th entry: composers with at least g ancestors.
        lineages = small_db.config.lineages
        generations = small_db.config.generations
        assert survivors[0] == lineages * (generations - 1)

    def test_estimated_fixpoint_iterations(self, small_db):
        stats = small_db.physical.statistics
        iterations = stats.estimated_fixpoint_iterations("Composer", "master")
        assert iterations == small_db.config.generations - 1

    def test_lazy_stats_for_new_extent(self, small_db):
        store = small_db.store
        stats = small_db.physical.statistics
        store.create_extent("Late")
        store.insert("Late", {"v": 1})
        assert stats.instances("Late") == 1

    def test_min_max_tracked(self, small_db):
        stats = small_db.physical.statistics
        entity = stats.entity("Composer")
        assert entity.min_value["birthyear"] <= entity.max_value["birthyear"]
