"""End-to-end tests: TCP server + client, sessions, prepared
statements, cache hit → stats mutation → invalidation, admission
rejection and timeout without killing the server (acceptance test)."""

import threading
import time

import pytest

from repro.cli import build_parser, cmd_serve
from repro.service import (
    QueryServer,
    QueryService,
    ServiceClient,
    ServiceClientError,
    ServiceConfig,
)
from repro.workloads import MusicConfig, generate_music_database

FIG3 = """
view Influencer as
  select [master: x.master, disciple: x, gen: 1] from x in Composer
  union
  select [master: i.master, disciple: x, gen: i.gen + 1]
  from i in Influencer, x in Composer where i.disciple = x.master;

select [name: i.disciple.name, gen: i.gen]
from i in Influencer
where i.gen >= 2;
"""

#: The same query spelled with different aliases and layout — must be
#: served from the same cache entry.
FIG3_ALIASED = """
view Influencer as
  select [master: c.master, disciple: c, gen: 1] from c in Composer union
  select [master: inf.master, disciple: c, gen: inf.gen + 1]
  from inf in Influencer, c in Composer where inf.disciple = c.master;
select [name: z.disciple.name, gen: z.gen] from z in Influencer where z.gen >= 2;
"""

SCAN_QUERY = (
    "select [name: x.name] from x in Composer where x.birthyear >= 1700;"
)


def build_db():
    db = generate_music_database(
        MusicConfig(lineages=3, generations=6, works_per_composer=2, seed=21)
    )
    db.build_paper_indexes()
    return db


@pytest.fixture()
def served():
    """A running server over a fresh database; yields (db, service, client)."""
    db = build_db()
    service = QueryService(db, ServiceConfig(drift_ratio=0.05))
    server = QueryServer(service, port=0)
    server.start()
    client = ServiceClient("127.0.0.1", server.port)
    try:
        yield db, service, client
    finally:
        client.close()
        server.stop()


def canonical_rows(rows):
    return sorted(str(sorted(row.items())) for row in rows)


class TestAcceptance:
    def test_cache_hit_then_stats_invalidation(self, served):
        db, service, client = served
        first = client.query(FIG3)
        assert first["cache"] == "miss"
        assert first["row_count"] > 0

        second = client.query(FIG3_ALIASED)
        assert second["cache"] == "hit"
        assert second["plans_costed"] == 0
        assert canonical_rows(second["rows"]) == canonical_rows(first["rows"])

        # Mutate table stats: bulk-load composers, then re-ANALYZE.
        for index in range(500):
            db.store.insert(
                "Composer",
                {
                    "name": f"bulk_{index:04d}",
                    "birthyear": 1950,
                    "master": None,
                    "works": (),
                },
            )
        client.refresh_stats()

        third = client.query(FIG3)
        # The recursion now covers far more composers: the cached PT's
        # re-costed estimate drifts beyond 5% → invalidate, re-optimize.
        assert third["cache"] == "drifted"
        assert third["plans_costed"] > 0
        assert third["row_count"] >= first["row_count"]

        stats = client.stats()
        assert stats["cache"]["invalidations"] >= 1
        assert stats["cache"]["hits"] >= 1
        assert stats["service"]["executed"] == 3

    def test_admission_rejects_and_timeout_without_killing_server(self, served):
        _db, service, client = served
        # Per-request timeout: a deep recursive query with an absurdly
        # small deadline must time out gracefully...
        with pytest.raises(ServiceClientError) as excinfo:
            client.query(FIG3, timeout=1e-9)
        assert excinfo.value.code == "timeout"

        # ...and an over-budget query must be rejected by admission
        # control (tighten the budget below the recursive query's cost).
        service.admission.policy.cost_budget = 0.01
        with pytest.raises(ServiceClientError) as excinfo:
            client.query(FIG3)
        assert excinfo.value.code == "admission_rejected"
        service.admission.policy.cost_budget = None

        # The server survived both failures and still serves answers.
        alive = client.query(FIG3)
        assert alive["row_count"] > 0
        stats = client.stats()
        assert stats["service"]["timeouts"] == 1
        assert stats["service"]["rejected"] == 1


class TestSessionsAndStatements:
    def test_prepared_statement_roundtrip(self, served):
        _db, _service, client = served
        client.hello()
        statement = client.prepare(
            "select [name: c.name] from c in Composer where c.name = $who;"
        )
        bach = client.execute(statement, {"who": "Bach"})
        assert bach["row_count"] == 1
        assert bach["rows"][0]["name"] == "Bach"
        nobody = client.execute(statement, {"who": "nobody"})
        assert nobody["row_count"] == 0

    def test_unbound_parameter_is_an_error(self, served):
        _db, _service, client = served
        client.hello()
        statement = client.prepare(
            "select [name: c.name] from c in Composer where c.name = $who;"
        )
        with pytest.raises(ServiceClientError) as excinfo:
            client.execute(statement, {})
        assert excinfo.value.code == "protocol_error"

    def test_statement_requires_session(self, served):
        _db, _service, client = served
        with pytest.raises(ServiceClientError) as excinfo:
            client.execute("s1", {})
        assert excinfo.value.code == "protocol_error"

    def test_sessions_are_isolated(self, served):
        _db, service, client = served
        client.hello()
        statement = client.prepare(SCAN_QUERY)
        other = ServiceClient("127.0.0.1", client._socket.getpeername()[1])
        try:
            other.hello()
            with pytest.raises(ServiceClientError):
                other.execute(statement)
        finally:
            other.close()

    def test_close_session(self, served):
        _db, _service, client = served
        session = client.hello()
        assert client.request({"op": "close", "session": session})["closed"]


class TestProtocolEdges:
    def test_ping(self, served):
        _db, _service, client = served
        assert client.ping()

    def test_parse_error_code(self, served):
        _db, _service, client = served
        with pytest.raises(ServiceClientError) as excinfo:
            client.query("select from nothing")
        assert excinfo.value.code == "parse_error"

    def test_unknown_op(self, served):
        _db, _service, client = served
        with pytest.raises(ServiceClientError) as excinfo:
            client.request({"op": "frobnicate"})
        assert excinfo.value.code == "protocol_error"

    def test_malformed_json(self, served):
        _db, _service, client = served
        client._socket.sendall(b"this is not json\n")
        from repro.service import protocol

        line = client._reader.readline()
        response = protocol.decode(line)
        assert response["ok"] is False
        assert response["error"]["code"] == "protocol_error"

    def test_concurrent_clients(self, served):
        _db, _service, client = served
        port = client._socket.getpeername()[1]
        results, errors = [], []

        def worker():
            try:
                with ServiceClient("127.0.0.1", port) as peer:
                    results.append(peer.query(SCAN_QUERY)["row_count"])
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert len(set(results)) == 1  # every client saw the same answer


class TestServeCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve", "--port", "0"])
        assert args.port == 0
        assert args.cache_size == 64
        assert args.drift_ratio == 0.5

    def test_cmd_serve_serves_and_shuts_down(self, capsys):
        import io

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--lineages", "2", "--generations", "4"]
        )
        out = io.StringIO()
        box = []
        thread = threading.Thread(
            target=cmd_serve, args=(args, out, box), daemon=True
        )
        thread.start()
        deadline = time.time() + 30
        while not box and time.time() < deadline:
            time.sleep(0.01)
        assert box, "server did not start"
        server = box[0]
        with ServiceClient("127.0.0.1", server.port) as client:
            assert client.ping()
            response = client.shutdown()
            assert response["stopping"]
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert "serving" in out.getvalue()
        assert "server stopped" in out.getvalue()
