"""Tests for the stats-aware LRU plan cache (satellite: hit/miss on
canonically-equal queries, LRU eviction order, drift invalidation)."""

import pytest

from repro.core.baselines import cost_controlled_optimizer
from repro.lang import compile_text
from repro.service.plan_cache import (
    COST_DRIFT,
    EXPLICIT,
    RECALIBRATION,
    PlanCache,
    schema_fingerprint,
    stats_fingerprint,
)
from repro.workloads import MusicConfig, generate_music_database

QUERY = 'select [name: x.name] from x in Composer where x.name = "Bach";'
ALIASED = 'select [name: who.name]  from  who in Composer where who.name="Bach";'


@pytest.fixture()
def db():
    db = generate_music_database(
        MusicConfig(lineages=3, generations=5, works_per_composer=2, seed=11)
    )
    db.build_paper_indexes()
    return db


def optimize(db, text):
    graph = compile_text(text, db.catalog)
    return cost_controlled_optimizer(db.physical).optimize(graph)


def seed_cache(cache, db, text):
    key = cache.key_for(text, db.physical)
    result = optimize(db, text)
    cache.store(key, result.plan, result.cost, db.physical)
    return key, result


class TestHitMiss:
    def test_cold_lookup_is_miss(self, db):
        cache = PlanCache()
        lookup = cache.lookup(cache.key_for(QUERY, db.physical), db.physical)
        assert lookup.status == "miss"
        assert lookup.entry is None

    def test_hit_after_store(self, db):
        cache = PlanCache()
        key, result = seed_cache(cache, db, QUERY)
        lookup = cache.lookup(key, db.physical)
        assert lookup.status == "hit"
        assert lookup.entry.plan is result.plan
        assert cache.stats.hits == 1 and cache.stats.hit_ratio == 1.0

    def test_whitespace_and_alias_variants_share_a_key(self, db):
        cache = PlanCache()
        key, _result = seed_cache(cache, db, QUERY)
        variant_key = cache.key_for(ALIASED, db.physical)
        assert variant_key == key
        assert cache.lookup(variant_key, db.physical).status == "hit"

    def test_different_constant_misses(self, db):
        cache = PlanCache()
        seed_cache(cache, db, QUERY)
        other = cache.key_for(QUERY.replace("Bach", "Liszt"), db.physical)
        assert cache.lookup(other, db.physical).status == "miss"

    def test_index_build_changes_schema_fingerprint(self, db):
        cache = PlanCache()
        key_before = cache.key_for(QUERY, db.physical)
        db.physical.build_selection_index("Composer", "birthyear")
        key_after = cache.key_for(QUERY, db.physical)
        # A new index changes the plan space: old entries must not match.
        assert key_before != key_after


class TestLRU:
    def test_eviction_order(self, db):
        cache = PlanCache(capacity=2)
        key_a, _ = seed_cache(cache, db, QUERY)
        key_b, _ = seed_cache(cache, db, QUERY.replace("Bach", "Liszt"))
        # Touch A so B becomes the least recently used.
        assert cache.lookup(key_a, db.physical).status == "hit"
        key_c, _ = seed_cache(cache, db, QUERY.replace("Bach", "Chopin"))
        assert len(cache) == 2
        assert cache.lookup(key_b, db.physical).status == "miss"
        assert cache.lookup(key_a, db.physical).status == "hit"
        assert cache.lookup(key_c, db.physical).status == "hit"
        assert cache.stats.evictions == 1

    def test_restore_replaces_in_place(self, db):
        cache = PlanCache(capacity=2)
        key, result = seed_cache(cache, db, QUERY)
        cache.store(key, result.plan, result.cost + 1, db.physical)
        assert len(cache) == 1


class TestDriftInvalidation:
    def _grow_composers(self, db, count):
        for index in range(count):
            db.store.insert(
                "Composer",
                {
                    "name": f"grown_{index:04d}",
                    "birthyear": 1900,
                    "master": None,
                    "works": (),
                },
            )
        db.physical.refresh_statistics()

    def test_stats_fingerprint_tracks_data(self, db):
        before = stats_fingerprint(db.physical)
        assert stats_fingerprint(db.physical) == before  # deterministic
        self._grow_composers(db, 5)
        assert stats_fingerprint(db.physical) != before

    def test_schema_fingerprint_ignores_data(self, db):
        before = schema_fingerprint(db.physical)
        self._grow_composers(db, 5)
        assert schema_fingerprint(db.physical) == before

    def test_small_drift_revalidates_in_place(self, db):
        cache = PlanCache(drift_ratio=100.0)
        key, result = seed_cache(cache, db, QUERY)
        self._grow_composers(db, 10)
        lookup = cache.lookup(key, db.physical)
        assert lookup.status == "revalidated"
        assert lookup.entry.plan is result.plan
        assert lookup.recost is not None
        # The entry was updated: the next probe with unchanged stats is
        # a plain hit at the fresh cost.
        again = cache.lookup(key, db.physical)
        assert again.status == "hit"
        assert again.entry.cost == pytest.approx(lookup.recost)

    def test_large_drift_invalidates(self, db):
        cache = PlanCache(drift_ratio=0.05)
        # A scan-shaped query: its cost scales with |Composer|, unlike
        # the indexed name lookup whose cost stays flat as data grows.
        scan_query = (
            "select [name: x.name] from x in Composer "
            "where x.birthyear >= 1700;"
        )
        key, _result = seed_cache(cache, db, scan_query)
        self._grow_composers(db, 500)
        lookup = cache.lookup(key, db.physical)
        assert lookup.status == "drifted"
        assert lookup.entry is None
        assert cache.stats.invalidations == 1
        assert len(cache) == 0
        # Re-optimizing under the new statistics repopulates the cache.
        key2, _ = seed_cache(cache, db, scan_query)
        assert cache.lookup(key2, db.physical).status == "hit"

    def test_invalidate_all(self, db):
        cache = PlanCache()
        seed_cache(cache, db, QUERY)
        seed_cache(cache, db, QUERY.replace("Bach", "Liszt"))
        assert cache.invalidate_all() == 2
        assert len(cache) == 0


def _grow_composers(db, count):
    for index in range(count):
        db.store.insert(
            "Composer",
            {
                "name": f"grown_{index:04d}",
                "birthyear": 1900,
                "master": None,
                "works": (),
            },
        )
    db.physical.refresh_statistics()


SCAN_QUERY = (
    "select [name: x.name] from x in Composer where x.birthyear >= 1700;"
)


class TestInvalidationAudit:
    """Satellite: invalidations carry the key and the reason."""

    def test_cost_drift_is_recorded_with_evidence(self, db):
        cache = PlanCache(drift_ratio=0.05)
        key, result = seed_cache(cache, db, SCAN_QUERY)
        _grow_composers(db, 500)
        lookup = cache.lookup(key, db.physical)
        assert lookup.status == "drifted"
        assert lookup.reason == COST_DRIFT
        # The evicted entry rides along for the regression detector.
        assert lookup.evicted is not None
        assert lookup.evicted.plan is result.plan
        snapshot = cache.snapshot()
        assert snapshot["invalidations_by_reason"] == {COST_DRIFT: 1}
        (event,) = snapshot["recent_invalidations"]
        assert event["reason"] == COST_DRIFT
        assert event["query"] == key[0]
        assert event["old_cost"] != event["new_cost"]

    def test_invalidate_all_records_explicit_reason(self, db):
        cache = PlanCache()
        seed_cache(cache, db, QUERY)
        seed_cache(cache, db, QUERY.replace("Bach", "Liszt"))
        assert cache.invalidate_all() == 2
        snapshot = cache.snapshot()
        assert snapshot["invalidations_by_reason"] == {EXPLICIT: 2}
        assert len(snapshot["recent_invalidations"]) == 2


class TestPinning:
    def test_pinned_plan_survives_drift(self, db):
        cache = PlanCache(drift_ratio=0.05)
        key, result = seed_cache(cache, db, SCAN_QUERY)
        assert cache.pin(key)
        _grow_composers(db, 500)
        lookup = cache.lookup(key, db.physical)
        # Same data movement as the drift test above, but the pinned
        # entry is revalidated in place instead of evicted.
        assert lookup.status == "revalidated"
        assert lookup.entry.plan is result.plan
        assert cache.pinned_keys() == [key]
        assert cache.pin(key, False)
        assert cache.pinned_keys() == []

    def test_pin_unknown_key_reports_absent(self, db):
        cache = PlanCache()
        assert not cache.pin(cache.key_for(QUERY, db.physical))


class TestRecostAll:
    def test_recalibration_evicts_drifted_entries(self, db):
        from repro.cost.model import DetailedCostModel
        from repro.cost.params import CostParameters

        cache = PlanCache(drift_ratio=0.05)
        key, _result = seed_cache(cache, db, SCAN_QUERY)
        # A wildly different CPU weight moves every scan-shaped estimate.
        model = DetailedCostModel(
            db.physical, CostParameters(eval_per_tuple=50.0)
        )
        evicted = cache.recost_all(db.physical, model)
        assert [entry_key for entry_key, _e, _c in evicted] == [key]
        assert len(cache) == 0
        assert cache.snapshot()["invalidations_by_reason"] == {
            RECALIBRATION: 1
        }

    def test_recost_all_keeps_stable_and_pinned_entries(self, db):
        from repro.cost.model import DetailedCostModel
        from repro.cost.params import CostParameters

        cache = PlanCache(drift_ratio=0.05)
        stable_key, _ = seed_cache(cache, db, QUERY)
        moved_key, _ = seed_cache(cache, db, SCAN_QUERY)
        cache.pin(moved_key)
        model = DetailedCostModel(
            db.physical, CostParameters(eval_per_tuple=50.0)
        )
        evicted = cache.recost_all(db.physical, model)
        # The pinned entry was refreshed, not evicted; the stable one may
        # or may not move depending on its shape, but the pinned key must
        # still be present.
        assert moved_key not in [k for k, _e, _c in evicted]
        assert cache.entry(moved_key) is not None


class TestValidation:
    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)

    def test_bad_drift_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(drift_ratio=-0.1)
