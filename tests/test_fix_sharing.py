"""Tests for sharing materialized fixpoints across plan instances."""

import pytest

from repro.core import cost_controlled_optimizer
from repro.engine import Engine, ReferenceEvaluator
from repro.plans import EJ, EntityLeaf, Fix, Proj, RecLeaf, Sel, UnionOp
from repro.querygraph.builder import (
    add,
    and_,
    arc,
    const,
    eq,
    out,
    path,
    query,
    rule,
    spj,
    var,
)
from repro.workloads.queries import influencer_rules


def make_fix(out_var):
    base = Proj(
        EntityLeaf("Composer", "x"),
        out(master=path("x", "master"), disciple=var("x"), gen=const(1)),
    )
    recursive = Proj(
        EJ(
            RecLeaf("Influencer", "i"),
            EntityLeaf("Composer", "x"),
            eq(path("i", "disciple"), path("x", "master")),
        ),
        out(
            master=path("i", "master"),
            disciple=var("x"),
            gen=add(path("i", "gen"), const(1)),
        ),
    )
    return Fix(
        "Influencer",
        UnionOp(base, recursive),
        out_var,
        "Composer",
        "master",
        {"master"},
    )


class TestFixSharing:
    def test_self_join_evaluates_fixpoint_once(self, indexed_db):
        """Influencer ⋈ Influencer: successive-generation pairs with a
        shared master; the fixpoint must run once, not twice."""
        plan = Proj(
            EJ(
                make_fix("i1"),
                make_fix("i2"),
                and_(
                    eq(path("i1", "master"), path("i2", "master")),
                    eq(
                        add(path("i1", "gen"), const(1)),
                        path("i2", "gen"),
                    ),
                ),
            ),
            out(a=path("i1", "disciple"), b=path("i2", "disciple")),
        )
        engine = Engine(indexed_db.physical)
        result = engine.execute(plan)
        iterations = engine.metrics.fix_iterations
        assert iterations == indexed_db.config.generations - 1  # once!
        assert len(result) > 0

    def test_self_join_answers_correct(self, indexed_db):
        """Cross-check the shared-fix self-join against the reference
        evaluator on the equivalent query graph."""
        p1, p2 = influencer_rules()
        answer = rule(
            "Answer",
            spj(
                [arc("Influencer", i1="."), arc("Influencer", i2=".")],
                where=and_(
                    eq(path("i1", "master"), path("i2", "master")),
                    eq(
                        add(path("i1", "gen"), const(1)),
                        path("i2", "gen"),
                    ),
                ),
                select=out(a=path("i1", "disciple"), b=path("i2", "disciple")),
            ),
        )
        graph = query(p1, p2, answer)
        want = ReferenceEvaluator(indexed_db.physical).answer_set(graph)
        result = cost_controlled_optimizer(indexed_db.physical).optimize(graph)
        got = Engine(indexed_db.physical).execute(result.plan).answer_set()
        assert got == want

    def test_different_bodies_not_shared(self, indexed_db):
        filtered = make_fix("i1")
        base, recursive = filtered.body.left, filtered.body.right
        other = Fix(
            "Influencer",
            UnionOp(
                Proj(
                    Sel(base.child, eq(path("x", "name"), const("Bach"))),
                    base.fields,
                ),
                recursive,
            ),
            "i2",
            "Composer",
            "master",
            {"master"},
        )
        plan = Proj(
            EJ(
                make_fix("i1"),
                other,
                eq(path("i1", "master"), path("i2", "master")),
            ),
            out(a=path("i1", "gen"), b=path("i2", "gen")),
        )
        engine = Engine(indexed_db.physical)
        engine.execute(plan)
        generations = indexed_db.config.generations - 1
        # Two distinct bodies: both fixpoints ran.
        assert engine.metrics.fix_iterations > generations
