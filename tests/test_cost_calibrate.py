"""Tests for cost-model calibration."""

import pytest

from repro.cost import (
    CostParameters,
    DetailedCostModel,
    calibrate,
    collect_probes,
    fit_weights,
)
from repro.cost.calibrate import EVENT_NAMES, ProbeResult
from repro.plans import EJ, IJ, PIJ, EntityLeaf, Proj, Sel
from repro.querygraph.builder import const, eq, ge, out, path, var


def probe_plans():
    return [
        (
            "scan+sel",
            Sel(
                EntityLeaf("Composer", "x"),
                ge(path("x", "birthyear"), const(1700)),
            ),
        ),
        (
            "indexed sel",
            Sel(EntityLeaf("Composer", "x"), eq(path("x", "name"), const("Bach"))),
        ),
        (
            "ij",
            IJ(
                EntityLeaf("Composer", "x"),
                EntityLeaf("Composition", "w"),
                path("x", "works"),
                "w",
            ),
        ),
        (
            "pij",
            PIJ(
                EntityLeaf("Composer", "x"),
                [EntityLeaf("Composition", "w"), EntityLeaf("Instrument", "i")],
                ["works", "instruments"],
                var("x"),
                ["w", "i"],
            ),
        ),
        (
            "ej",
            EJ(
                Sel(
                    EntityLeaf("Composer", "a"),
                    eq(path("a", "name"), const("Bach")),
                ),
                EntityLeaf("Composer", "b"),
                eq(path("b", "master"), var("a")),
            ),
        ),
        (
            "proj",
            Proj(EntityLeaf("Instrument", "i"), out(n=path("i", "name"))),
        ),
        (
            "method sel",
            Sel(EntityLeaf("Composer", "x"), ge(path("x", "age"), const(250))),
        ),
    ]


class TestCollectAndFit:
    def test_collect_probes_counts_events(self, indexed_db):
        probes = collect_probes(indexed_db.physical, probe_plans())
        assert len(probes) == len(probe_plans())
        for probe in probes:
            assert set(probe.events) == set(EVENT_NAMES)
            assert probe.target_cost > 0

    def test_fit_recovers_known_weights(self, indexed_db):
        """Fitting against a target built from known weights recovers
        them (up to collinearity between correlated events)."""
        known = {"page": 2.0, "eval": 0.25}
        probes = collect_probes(
            indexed_db.physical,
            probe_plans(),
            target_fn=lambda metrics: (
                known["page"]
                * (metrics.buffer.physical_reads + metrics.index_page_reads)
                + known["eval"] * metrics.predicate_evals
            ),
        )
        fitted = fit_weights(probes)
        assert fitted.residual < 0.05
        # The fitted model must reproduce every probe's target closely.
        for probe in probes:
            predicted = sum(
                fitted.weights[name] * probe.events[name]
                for name in EVENT_NAMES
            )
            assert predicted == pytest.approx(probe.target_cost, rel=0.15)

    def test_weights_nonnegative(self, indexed_db):
        fitted = calibrate(indexed_db.physical, probe_plans())
        assert all(value >= 0 for value in fitted.weights.values())

    def test_too_few_probes_rejected(self):
        with pytest.raises(ValueError):
            fit_weights(
                [ProbeResult("one", dict.fromkeys(EVENT_NAMES, 1.0), 1.0)]
            )

    def test_cost_of_metrics(self, indexed_db):
        from repro.engine import Engine

        fitted = calibrate(indexed_db.physical, probe_plans())
        engine = Engine(indexed_db.physical)
        result = engine.execute(probe_plans()[0][1])
        assert fitted.cost_of(result.metrics) >= 0

    def test_to_parameters_roundtrip(self, indexed_db):
        fitted = calibrate(indexed_db.physical, probe_plans())
        params = fitted.to_parameters(CostParameters(buffer_pages=8))
        assert params.buffer_pages == 8
        assert params.page_read > 0
        model = DetailedCostModel(indexed_db.physical, params)
        assert model.cost(probe_plans()[0][1]) > 0
