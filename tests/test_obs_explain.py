"""EXPLAIN ANALYZE: the per-operator runtime profiler and the
estimate-vs-actual plan annotation."""

import json

import pytest

from repro.core.baselines import cost_controlled_optimizer
from repro.cost import DetailedCostModel
from repro.engine import Engine
from repro.obs import PlanProfiler, build_explain, render_explain
from repro.obs.profile import assign_node_ids
from repro.plans import Fix, Sel
from repro.workloads import fig3_query


@pytest.fixture()
def optimized(larger_db):
    optimizer = cost_controlled_optimizer(larger_db.physical)
    result = optimizer.optimize(fig3_query())
    return larger_db, optimizer, result


@pytest.fixture()
def analyzed(optimized):
    db, optimizer, result = optimized
    profiler = PlanProfiler()
    execution = Engine(db.physical).execute(result.plan, profiler=profiler)
    tree = build_explain(result.plan, optimizer.cost_model, profiler)
    return db, result, execution, profiler, tree


class TestNodeIds:
    def test_preorder_and_stable(self, optimized):
        _db, _optimizer, result = optimized
        ids = assign_node_ids(result.plan)
        assert ids[id(result.plan)] == "n0"
        walked = list(result.plan.walk())
        # Pre-order positions; shared subtrees keep their first id.
        for index, node in enumerate(walked):
            assert ids[id(node)] in {f"n{i}" for i in range(index + 1)}
        assert assign_node_ids(result.plan) == ids


class TestProfiler:
    def test_per_node_tuples_match_rollup(self, analyzed):
        _db, _result, execution, _profiler, _tree = analyzed
        metrics = execution.metrics
        assert metrics.tuples_by_node
        assert sum(metrics.tuples_by_node.values()) == sum(
            metrics.tuples_by_operator.values()
        )

    def test_root_counts_every_output_row(self, analyzed):
        _db, result, execution, profiler, _tree = analyzed
        root_id = assign_node_ids(result.plan)[id(result.plan)]
        assert profiler.profiles[root_id].tuples_out == len(execution.rows)

    def test_fix_iterations_recorded(self, analyzed):
        _db, result, execution, profiler, _tree = analyzed
        fix_nodes = [n for n in result.plan.walk() if isinstance(n, Fix)]
        assert fix_nodes
        profile = profiler.profile_for(fix_nodes[0])
        iterations = profile.fix_iterations
        # Base round (0) plus one entry per semi-naive round.
        assert iterations[0].iteration == 0
        assert len(iterations) == execution.metrics.fix_iterations + 1
        assert all(it.seconds >= 0 for it in iterations)
        assert iterations[0].new_tuples > 0
        assert iterations[-1].new_tuples == 0  # the empty closing round

    def test_inclusive_times_nest(self, analyzed):
        _db, _result, _execution, profiler, _tree = analyzed
        for node_id, children in profiler.children.items():
            assert profiler.exclusive_seconds(node_id) >= 0
            for child_id in children:
                assert child_id in profiler.profiles

    def test_no_profiler_means_no_wrapping(self, optimized):
        db, _optimizer, result = optimized
        engine = Engine(db.physical)
        execution = engine.execute(result.plan)
        assert engine.profiler is None
        assert execution.rows  # unprofiled path still works
        # Node-level counters are still kept (cheap dict updates)...
        assert execution.metrics.tuples_by_node

    def test_profiled_run_returns_same_answers(self, optimized):
        db, _optimizer, result = optimized
        plain = Engine(db.physical).execute(result.plan)
        profiled = Engine(db.physical).execute(
            result.plan, profiler=PlanProfiler()
        )
        assert plain.answer_set() == profiled.answer_set()


class TestExplain:
    def test_every_node_has_estimates_and_actuals(self, analyzed):
        _db, _result, _execution, _profiler, tree = analyzed
        assert tree.analyzed

        def walk(node):
            yield node
            for child in node.children:
                yield from walk(child)

        nodes = list(walk(tree.root))
        assert all(n.actual_rows is not None for n in nodes)
        assert all(n.actual_seconds is not None for n in nodes)
        # The interesting operators carry a cost estimate (leaves under
        # index-assisted access may only have a row estimate).
        assert tree.root.est_cost is not None and tree.root.est_cost > 0
        assert tree.root.actual_cost is not None

    def test_fix_node_lists_per_iteration_actuals(self, analyzed):
        """Acceptance: per-iteration actuals are visible on Fix."""
        _db, result, _execution, _profiler, tree = analyzed
        fix = [n for n in result.plan.walk() if isinstance(n, Fix)][0]
        explain = tree.node_for(fix)
        assert explain.fix_iterations
        assert explain.fix_iterations[0]["iteration"] == 0
        rendered = render_explain(tree)
        assert "[base: +" in rendered
        assert "[iter 1: +" in rendered

    def test_render_shows_est_and_act(self, analyzed):
        _db, _result, execution, _profiler, tree = analyzed
        rendered = render_explain(tree)
        assert "est rows=" in rendered and "act rows=" in rendered
        first_line = rendered.splitlines()[0]
        assert f"act rows={len(execution.rows)}" in first_line

    def test_explain_without_profiler_is_estimate_only(self, optimized):
        _db, optimizer, result = optimized
        tree = build_explain(result.plan, optimizer.cost_model)
        assert not tree.analyzed
        rendered = render_explain(tree)
        assert "est rows=" in rendered and "act rows=" not in rendered

    def test_json_export(self, analyzed):
        _db, _result, execution, _profiler, tree = analyzed
        payload = json.loads(json.dumps(tree.to_dict()))
        assert payload["analyzed"] is True
        assert payload["plan"]["actual_rows"] == len(execution.rows)
        assert payload["estimated_cost"] > 0

    def test_chrome_export(self, analyzed):
        _db, _result, _execution, _profiler, tree = analyzed
        chrome = json.loads(json.dumps(tree.to_chrome_trace()))
        events = chrome["traceEvents"]
        assert events and all(e["ph"] == "X" for e in events)
        # Durations are the measured inclusive times.
        assert events[0]["dur"] >= max(e["dur"] for e in events[1:])

    def test_estimates_accumulate_over_fix_iterations(self, analyzed):
        """The model costs recursive parts once per predicted
        iteration; the captured per-node estimate must reflect that
        accumulation (visits > 1), mirroring how actuals accumulate."""
        _db, result, _execution, _profiler, tree = analyzed
        fix = [n for n in result.plan.walk() if isinstance(n, Fix)][0]
        recursive_sels = [
            n
            for n in fix.body.walk()
            if isinstance(n, Sel) and tree.node_for(n) is not None
        ]
        assert any(
            tree.node_for(n).est_visits > 1 for n in recursive_sels
        ), "no recursive-part node was costed across iterations"
