"""Differential harness, shards dimension: the distributed
scatter-gather fixpoint vs. the serial engine vs. the reference
evaluator, over the same randomized queries as
``test_differential_parallel.py``.

The grid sweeps shards {1, 2, 4} × parallelism {1, 4} × batch size
{1, 256}; the serial single-shard configuration comes first so the
per-node tuple counts of every sharded run are compared against it.
A dedicated test pins the stronger shards=1 guarantee: the knob alone
(no cluster dispatch) must reproduce the serial engine's execution
*exactly* — answers, per-node tuple counts and logical page reads.

Shard width 2 and 4 share one width-4 cluster per database: the
distributed fixpoint uses the first ``shards`` workers, and clusters
are built to be shared (per-request state lives in shard sessions).
"""

import pytest
from hypothesis import given, settings

from repro.dist import ShardCluster
from repro.engine import Engine

from tests.diff_harness import (
    DIFF_SETTINGS,
    build_music_db,
    build_parts_db,
    flat_queries,
    parts_queries,
    recursive_queries,
    run_differential,
)

BATCH_SIZES = (1, 256)
PARALLELISM_LEVELS = (1, 4)
SHARD_WIDTHS = (1, 2, 4)

#: (batch_size, parallelism, shards) — serial baseline first.
GRID = [
    (batch_size, level, shards)
    for shards in SHARD_WIDTHS
    for level in PARALLELISM_LEVELS
    for batch_size in BATCH_SIZES
]
assert GRID[0] == (1, 1, 1)

#: The layout sweep crosses batch_layout {row, columnar} into a
#: batch {1, 256} × parallelism {1, 4} × shards {1, 2} grid; the
#: harness additionally requires predicate_evals and logical_reads to
#: be identical across layouts at every grid point.
LAYOUTS = ("row", "columnar")
LAYOUT_GRID = [
    (batch_size, level, shards)
    for shards in (1, 2)
    for level in PARALLELISM_LEVELS
    for batch_size in BATCH_SIZES
]


@pytest.fixture(scope="module")
def music_db():
    return build_music_db()


@pytest.fixture(scope="module")
def parts_db():
    return build_parts_db()


@pytest.fixture(scope="module")
def music_cluster(music_db):
    with ShardCluster(music_db.physical, max(SHARD_WIDTHS)) as cluster:
        yield cluster


@pytest.fixture(scope="module")
def parts_cluster(parts_db):
    with ShardCluster(parts_db.physical, max(SHARD_WIDTHS)) as cluster:
        yield cluster


@settings(**DIFF_SETTINGS)
@given(graph=flat_queries())
def test_differential_shards_flat_queries(music_db, music_cluster, graph):
    run_differential(music_db, graph, GRID, cluster=music_cluster)


@settings(**DIFF_SETTINGS)
@given(graph=recursive_queries())
def test_differential_shards_recursive_queries(
    music_db, music_cluster, graph
):
    run_differential(music_db, graph, GRID, cluster=music_cluster)


@settings(**DIFF_SETTINGS)
@given(graph=parts_queries())
def test_differential_shards_parts_queries(parts_db, parts_cluster, graph):
    run_differential(parts_db, graph, GRID, cluster=parts_cluster)


@settings(**DIFF_SETTINGS)
@given(graph=flat_queries())
def test_differential_layout_sweep_flat_queries(
    music_db, music_cluster, graph
):
    run_differential(
        music_db, graph, LAYOUT_GRID, cluster=music_cluster, layouts=LAYOUTS
    )


@settings(**DIFF_SETTINGS)
@given(graph=recursive_queries())
def test_differential_layout_sweep_recursive_queries(
    music_db, music_cluster, graph
):
    run_differential(
        music_db, graph, LAYOUT_GRID, cluster=music_cluster, layouts=LAYOUTS
    )


def test_shards_one_is_exactly_serial(music_db, music_cluster):
    """shards=1 must bypass the distribution layer entirely: identical
    answers, per-node tuple counts *and* logical page reads as a plain
    serial engine — not just the same answer set."""
    from repro.core import cost_controlled_optimizer
    from repro.workloads.queries import fig3_query

    graph = fig3_query()
    plan = cost_controlled_optimizer(music_db.physical).optimize(graph).plan

    serial = Engine(music_db.physical).execute(plan)
    knobbed = Engine(
        music_db.physical, shards=1, cluster=music_cluster
    ).execute(plan)

    assert knobbed.answer_set() == serial.answer_set()
    assert knobbed.metrics.total_tuples == serial.metrics.total_tuples
    assert dict(knobbed.metrics.tuples_by_node) == dict(
        serial.metrics.tuples_by_node
    )
    assert (
        knobbed.metrics.buffer.logical_reads
        == serial.metrics.buffer.logical_reads
    )
    assert knobbed.metrics.shards_used == 0
    assert knobbed.metrics.exchange_rounds == 0
