"""Batch-vectorized execution: parity, metering, compile-once caching.

The batch refactor's contract is that ``batch_size`` is invisible to
everything except throughput: the answer set, the per-node tuple
counters and the predicate-evaluation counts must be identical at any
batch size (1 reproduces the old tuple-at-a-time engine exactly), and
the per-plan-node closures must be compiled once per execution, never
once per tuple.
"""

import logging
import math

import pytest

from repro.cost.params import CostParameters
from repro.engine import DEFAULT_BATCH_SIZE, Engine, default_batch_size
from repro.engine.batch import DEFAULT_BATCH_LAYOUT, default_batch_layout
from repro.engine.batch import Batch, rebatch
from repro.engine.context import ExecutionContext
from repro.plans import EntityLeaf, Proj, Sel
from repro.querygraph.builder import and_, const, eq, ge, le, out, path
from tests.test_engine import make_fix


def filter_plan():
    """Scan + conjunctive filter + projection (the closure-heavy
    shape: two predicate conjuncts, one projected path)."""
    return Proj(
        Sel(
            EntityLeaf("Composer", "x"),
            and_(
                ge(path("x", "birthyear"), const(1600)),
                le(path("x", "birthyear"), const(1850)),
            ),
        ),
        out(name=path("x", "name")),
    )


class TestConfigurationPlumbing:
    def test_default_batch_size_mirrors_cost_parameters(self):
        # cost/params.py keeps its batch_size as a literal (importing
        # the engine constant would be circular); this is the pin that
        # keeps the two in sync.
        assert CostParameters().batch_size == DEFAULT_BATCH_SIZE

    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_SIZE", "32")
        assert default_batch_size() == 32

    def test_env_var_garbage_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_SIZE", "not-a-number")
        assert default_batch_size() == DEFAULT_BATCH_SIZE
        monkeypatch.setenv("REPRO_BATCH_SIZE", "0")
        assert default_batch_size() == DEFAULT_BATCH_SIZE

    def test_env_var_garbage_warns_structured(self, monkeypatch, caplog):
        # A typo'd environment must not silently run a whole suite at
        # the wrong batch size: the fallback carries a structured
        # warning naming the rejected value and the default used.
        monkeypatch.setenv("REPRO_BATCH_SIZE", "not-a-number")
        with caplog.at_level(logging.WARNING, logger="repro.engine"):
            assert default_batch_size() == DEFAULT_BATCH_SIZE
        [record] = caplog.records
        assert "malformed REPRO_BATCH_SIZE" in record.getMessage()
        assert record.value == "not-a-number"
        assert record.default == DEFAULT_BATCH_SIZE

        caplog.clear()
        monkeypatch.setenv("REPRO_BATCH_SIZE", "-3")
        with caplog.at_level(logging.WARNING, logger="repro.engine"):
            assert default_batch_size() == DEFAULT_BATCH_SIZE
        [record] = caplog.records
        assert "out-of-range REPRO_BATCH_SIZE" in record.getMessage()
        assert record.value == "-3"

    def test_layout_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_LAYOUT", "row")
        assert default_batch_layout() == "row"
        monkeypatch.setenv("REPRO_BATCH_LAYOUT", "columnar")
        assert default_batch_layout() == "columnar"

    def test_layout_env_var_garbage_warns_and_falls_back(
        self, monkeypatch, caplog
    ):
        monkeypatch.setenv("REPRO_BATCH_LAYOUT", "diagonal")
        with caplog.at_level(logging.WARNING, logger="repro.engine"):
            assert default_batch_layout() == DEFAULT_BATCH_LAYOUT
        [record] = caplog.records
        assert "unknown REPRO_BATCH_LAYOUT" in record.getMessage()
        assert record.value == "diagonal"
        assert record.default == DEFAULT_BATCH_LAYOUT

    def test_engine_picks_up_env_default(self, small_db, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_SIZE", "17")
        assert Engine(small_db.physical).batch_size == 17
        # An explicit size always wins over the environment.
        assert Engine(small_db.physical, batch_size=3).batch_size == 3

    def test_engine_picks_up_layout_env_default(self, small_db, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_LAYOUT", "row")
        assert Engine(small_db.physical).batch_layout == "row"
        # An explicit layout always wins over the environment.
        engine = Engine(small_db.physical, batch_layout="columnar")
        assert engine.batch_layout == "columnar"

    def test_context_overrides_engine_batch_layout(self, small_db):
        engine = Engine(small_db.physical, batch_layout="columnar")
        engine.execute(
            EntityLeaf("Composer", "x"),
            context=ExecutionContext(batch_layout="row"),
        )
        assert engine.batch_layout == "row"

    def test_worker_clone_inherits_batch_layout(self, small_db):
        engine = Engine(small_db.physical, batch_layout="row")
        assert engine.worker_clone().batch_layout == "row"

    def test_nonpositive_batch_size_rejected(self, small_db):
        with pytest.raises(ValueError):
            Engine(small_db.physical, batch_size=0)
        with pytest.raises(ValueError):
            ExecutionContext(batch_size=0)

    def test_context_overrides_engine_batch_size(self, small_db):
        engine = Engine(small_db.physical, batch_size=256)
        result = engine.execute(
            EntityLeaf("Composer", "x"),
            context=ExecutionContext(batch_size=4),
        )
        assert engine.batch_size == 4
        count = small_db.config.composer_count
        assert result.metrics.batches == math.ceil(count / 4)

    def test_worker_clone_inherits_batch_size(self, small_db):
        engine = Engine(small_db.physical, batch_size=9)
        assert engine.worker_clone().batch_size == 9


class TestBatchMetering:
    def test_scan_emits_ceil_n_over_b_batches(self, small_db):
        count = small_db.config.composer_count
        for size in (1, 10, 10_000):
            engine = Engine(small_db.physical, batch_size=size)
            result = engine.execute(EntityLeaf("Composer", "x"))
            assert len(result.rows) == count
            assert result.metrics.batches == math.ceil(count / size)

    def test_batch_size_one_counts_one_batch_per_tuple(self, small_db):
        engine = Engine(small_db.physical, batch_size=1)
        result = engine.execute(EntityLeaf("Composer", "x"))
        assert result.metrics.batches == len(result.rows)


class TestBatchSizeParity:
    """batch_size only regroups emissions; every observable counter of
    the computation itself is invariant."""

    SIZES = (1, 3, 64, 4096)

    def run_at(self, db, plan, size):
        engine = Engine(db.physical, batch_size=size)
        result = engine.execute(plan)
        return engine, result

    def assert_parity(self, db, plan):
        baseline_engine, baseline = self.run_at(db, plan, self.SIZES[0])
        for size in self.SIZES[1:]:
            engine, result = self.run_at(db, plan, size)
            assert result.answer_set() == baseline.answer_set()
            assert (
                result.metrics.tuples_by_node
                == baseline.metrics.tuples_by_node
            )
            assert (
                result.metrics.predicate_evals
                == baseline.metrics.predicate_evals
            )
            assert (
                result.metrics.buffer.logical_reads
                == baseline.metrics.buffer.logical_reads
            )

    def test_flat_plan_parity(self, indexed_db):
        self.assert_parity(indexed_db, filter_plan())

    def test_recursive_plan_parity(self, indexed_db):
        # Project onto values: the raw Fix output binds temp records,
        # whose oids are freshly allocated every run.
        plan = Proj(
            make_fix(),
            out(who=path("i", "disciple", "name"), gen=path("i", "gen")),
        )
        self.assert_parity(indexed_db, plan)


class TestCompileOnceClosures:
    """Satellite regression test: predicates and projections compile to
    closures once per plan node per execution — the compilation
    counters must not scale with the number of tuples evaluated."""

    def compilations_on(self, db):
        engine = Engine(db.physical)
        result = engine.execute(filter_plan())
        evaluator = engine._evaluator
        return result, (
            evaluator.predicate_compilations,
            evaluator.expr_compilations,
            evaluator.path_compilations,
        )

    def test_compilation_counts_do_not_scale_with_tuples(
        self, small_db, larger_db
    ):
        small_result, small_counts = self.compilations_on(small_db)
        large_result, large_counts = self.compilations_on(larger_db)
        # The workload grew …
        assert (
            large_result.metrics.predicate_evals
            > small_result.metrics.predicate_evals
        )
        # … the compilation work did not.
        assert small_counts == large_counts
        # One top-level predicate, one projected expression; the paths
        # inside them compile once each too.
        assert small_counts[0] == 1

    def test_recompiling_same_node_hits_cache(self, small_db):
        engine = Engine(small_db.physical)
        plan = filter_plan()
        engine.execute(plan)
        evaluator = engine._evaluator
        before = evaluator.predicate_compilations
        first = evaluator.compile_predicate(plan.child.predicate)
        second = evaluator.compile_predicate(plan.child.predicate)
        assert first is second
        assert evaluator.predicate_compilations == before


class TestRebatch:
    def test_rebatch_regroups_preserving_order(self):
        batches = [
            Batch([{"i": 0}, {"i": 1}, {"i": 2}]),
            Batch([{"i": 3}]),
            Batch([{"i": 4}, {"i": 5}]),
        ]
        out_batches = list(rebatch(batches, 2, node_id="n"))
        assert [len(b) for b in out_batches] == [2, 2, 2]
        assert [row["i"] for b in out_batches for row in b] == list(range(6))
        assert all(b.node_id == "n" for b in out_batches)

    def test_rebatch_flushes_trailing_partial(self):
        out_batches = list(rebatch([Batch([{"i": 0}, {"i": 1}, {"i": 2}])], 2))
        assert [len(b) for b in out_batches] == [2, 1]
