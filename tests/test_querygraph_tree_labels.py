"""Tests for tree labels (tree-shaped adornments)."""

import pytest

from repro.errors import QueryModelError
from repro.querygraph.tree_labels import TreeLabel


class TestConstruction:
    def test_root_binding(self):
        tree = TreeLabel.from_bindings({"x": "."})
        assert tree.variable == "x"
        assert tree.is_atomic()

    def test_empty_path_means_root(self):
        tree = TreeLabel.from_bindings({"x": ""})
        assert tree.variable == "x"

    def test_conflicting_root_variables_raise(self):
        with pytest.raises(QueryModelError):
            TreeLabel.from_bindings({"x": ".", "y": "."})

    def test_simple_attribute_binding(self):
        tree = TreeLabel.from_bindings({"n": "name"})
        bindings = tree.bindings()
        assert len(bindings) == 1
        assert bindings[0].variable == "n"
        assert bindings[0].path == ("name",)
        assert bindings[0].through_collections == 0

    def test_collection_descent(self):
        tree = TreeLabel.from_bindings({"t": "works.*.title"})
        binding = tree.find("t")
        assert binding.path == ("works", "title")
        assert binding.through_collections == 1

    def test_shared_prefix_factorized(self):
        tree = TreeLabel.from_bindings(
            {"t": "works.*.title", "i": "works.*.instruments.*.name"}
        )
        # One 'works' child at the root: the prefix was shared.
        works_children = [name for name, _child in tree.children]
        assert works_children.count("works") == 1

    def test_forced_branches_stay_separate(self):
        tree = TreeLabel.from_bindings(
            {
                "i1": "works.*.instruments.*.name",
                "i2": "works.*.instruments#2.*.name",
            }
        )
        bindings = {b.variable: b for b in tree.bindings()}
        # Same dotted path, different branches.
        assert bindings["i1"].path == bindings["i2"].path
        element = tree.children[0][1].children[0][1]
        instrument_branches = [
            name for name, _child in element.children if name == "instruments"
        ]
        assert len(instrument_branches) == 2

    def test_conflicting_variable_at_same_node_raises(self):
        with pytest.raises(QueryModelError):
            TreeLabel.from_bindings({"a": "name", "b": "name"})


class TestInspection:
    def figure2_tree(self):
        return TreeLabel.from_bindings(
            {
                "n": "name",
                "t": "works.*.title",
                "i1": "works.*.instruments.*.name",
                "i2": "works.*.instruments#2.*.name",
            }
        )

    def test_variables(self):
        assert set(self.figure2_tree().variables()) == {"n", "t", "i1", "i2"}

    def test_attribute_paths_deduplicated(self):
        paths = self.figure2_tree().attribute_paths()
        assert ("name",) in paths
        assert ("works", "title") in paths
        assert paths.count(("works", "instruments", "name")) == 1

    def test_depth(self):
        assert self.figure2_tree().depth() == 5  # works > * > instruments > * > name
        assert TreeLabel.from_bindings({"x": "."}).depth() == 0

    def test_find_missing(self):
        assert self.figure2_tree().find("zzz") is None

    def test_structural_equality(self):
        assert self.figure2_tree() == self.figure2_tree()
        assert TreeLabel.from_bindings({"n": "name"}) != TreeLabel.from_bindings(
            {"n": "title"}
        )

    def test_repr_is_stable(self):
        assert repr(self.figure2_tree()) == repr(self.figure2_tree())
