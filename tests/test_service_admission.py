"""Admission control, per-query timeouts and the fixpoint safety cap."""

import threading
import time

import pytest

from repro.core.baselines import cost_controlled_optimizer
from repro.engine import CancellationToken, Engine
from repro.errors import (
    AdmissionError,
    ExecutionCancelled,
    ExecutionTimeout,
    FixpointLimitError,
)
from repro.lang import compile_text
from repro.service import AdmissionController, AdmissionPolicy
from repro.service import QueryService, ServiceConfig
from repro.workloads import MusicConfig, generate_music_database

RECURSIVE = """
view Influencer as
  select [master: x.master, disciple: x, gen: 1] from x in Composer
  union
  select [master: i.master, disciple: x, gen: i.gen + 1]
  from i in Influencer, x in Composer where i.disciple = x.master;
select [name: i.disciple.name, gen: i.gen] from i in Influencer;
"""


@pytest.fixture()
def db():
    db = generate_music_database(
        MusicConfig(lineages=3, generations=6, works_per_composer=2, seed=3)
    )
    db.build_paper_indexes()
    return db


class TestBudget:
    def test_under_budget_admits(self):
        controller = AdmissionController(AdmissionPolicy(cost_budget=100.0))
        controller.admit(99.0)
        assert controller.admitted == 1

    def test_over_budget_rejects(self):
        controller = AdmissionController(AdmissionPolicy(cost_budget=100.0))
        with pytest.raises(AdmissionError) as excinfo:
            controller.admit(101.0)
        assert excinfo.value.reason == "over_budget"
        assert controller.rejected_budget == 1

    def test_no_budget_admits_everything(self):
        controller = AdmissionController(AdmissionPolicy(cost_budget=None))
        controller.admit(1e12)

    def test_service_rejects_over_budget_query(self, db):
        service = QueryService(db, ServiceConfig(cost_budget=0.001))
        with pytest.raises(AdmissionError):
            service.run_query(RECURSIVE)
        assert service.metrics.rejected == 1
        # The plan is still cached: raising the budget later serves it.
        assert len(service.cache) == 1


class TestSlots:
    def test_queue_full_rejects(self):
        controller = AdmissionController(
            AdmissionPolicy(max_concurrent=1, queue_timeout=0.05)
        )
        entered = threading.Event()
        release = threading.Event()

        def hold():
            with controller.slot():
                entered.set()
                release.wait(timeout=5)

        holder = threading.Thread(target=hold)
        holder.start()
        try:
            assert entered.wait(timeout=5)
            with pytest.raises(AdmissionError) as excinfo:
                with controller.slot():
                    pass
            assert excinfo.value.reason == "queue_full"
        finally:
            release.set()
            holder.join()
        # The slot is free again after the holder leaves.
        with controller.slot():
            pass

    def test_parallel_request_reserves_proportional_slots(self):
        """A parallelism-8 request takes all eight slots of an
        8-concurrent controller: a second request queues behind it."""
        controller = AdmissionController(
            AdmissionPolicy(max_concurrent=8, queue_timeout=0.05)
        )
        entered = threading.Event()
        release = threading.Event()

        def hold():
            with controller.slot(weight=8) as granted:
                assert granted == 8
                entered.set()
                release.wait(timeout=5)

        holder = threading.Thread(target=hold)
        holder.start()
        try:
            assert entered.wait(timeout=5)
            assert controller.snapshot()["slots_in_use"] == 8
            with pytest.raises(AdmissionError) as excinfo:
                with controller.slot():
                    pass
            assert excinfo.value.reason == "queue_full"
        finally:
            release.set()
            holder.join()
        # Every slot is back: a second wide request is admitted.
        assert controller.snapshot()["slots_in_use"] == 0
        with controller.slot(weight=8):
            pass

    def test_weight_is_capped_at_max_concurrent(self):
        controller = AdmissionController(
            AdmissionPolicy(max_concurrent=4, queue_timeout=0.05)
        )
        with controller.slot(weight=100) as granted:
            assert granted == 4
        assert controller.snapshot()["slots_in_use"] == 0

    def test_wide_request_queues_until_slots_free(self):
        """parallelism-4 waits for a narrow request to finish instead
        of being rejected outright when the queue timeout allows it."""
        controller = AdmissionController(
            AdmissionPolicy(max_concurrent=4, queue_timeout=5.0)
        )
        entered = threading.Event()
        release = threading.Event()

        def hold():
            with controller.slot(weight=2):
                entered.set()
                release.wait(timeout=5)

        holder = threading.Thread(target=hold)
        holder.start()
        acquired = threading.Event()

        def wide():
            with controller.slot(weight=4):
                acquired.set()

        waiter = threading.Thread(target=wide)
        try:
            assert entered.wait(timeout=5)
            waiter.start()
            # Not enough free slots yet; the wide request is parked.
            assert not acquired.wait(timeout=0.2)
            release.set()
            assert acquired.wait(timeout=5)
        finally:
            release.set()
            holder.join()
            waiter.join()

    def test_failure_mid_query_releases_every_slot(self):
        controller = AdmissionController(
            AdmissionPolicy(max_concurrent=8, queue_timeout=0.05)
        )
        with pytest.raises(RuntimeError):
            with controller.slot(weight=8):
                assert controller.snapshot()["slots_in_use"] == 8
                raise RuntimeError("query blew up")
        assert controller.snapshot()["slots_in_use"] == 0
        with controller.slot(weight=8):
            pass

    def test_effective_timeout_prefers_request_then_default_then_cap(self):
        controller = AdmissionController(
            AdmissionPolicy(default_timeout=10.0, max_timeout=5.0)
        )
        assert controller.effective_timeout(None) == 5.0  # default capped
        assert controller.effective_timeout(2.0) == 2.0
        assert controller.effective_timeout(60.0) == 5.0
        open_controller = AdmissionController(AdmissionPolicy())
        assert open_controller.effective_timeout(None) is None


class TestCancellation:
    def test_token_deadline_expires(self):
        clock = [0.0]
        token = CancellationToken(timeout=1.0, clock=lambda: clock[0])
        token.check()  # inside the deadline
        clock[0] = 2.0
        assert token.expired
        with pytest.raises(ExecutionTimeout):
            token.check()

    def test_explicit_cancel(self):
        token = CancellationToken()
        token.cancel("operator request")
        with pytest.raises(ExecutionCancelled, match="operator request"):
            token.check()

    def test_timeout_cancels_fixpoint_gracefully(self, db):
        graph = compile_text(RECURSIVE, db.catalog)
        plan = cost_controlled_optimizer(db.physical).optimize(graph).plan
        engine = Engine(db.physical)
        # A deadline already in the past: the fixpoint loop must abort
        # on its first poll instead of running to completion.
        token = CancellationToken(timeout=-1.0)
        entities_before = {info.name for info in db.physical.entities()}
        with pytest.raises(ExecutionTimeout):
            engine.execute(plan, cancel=token)
        # Graceful: every temporary the aborted run created was dropped.
        entities_after = {info.name for info in db.physical.entities()}
        assert entities_after == entities_before
        # The same engine still works for the next query.
        result = engine.execute(plan)
        assert len(result.rows) > 0

    def test_service_timeout_counts_and_recovers(self, db):
        service = QueryService(db, ServiceConfig())
        with pytest.raises(ExecutionTimeout):
            service.run_query(RECURSIVE, timeout=1e-9)
        assert service.metrics.timeouts == 1
        # Server-side flow maps the timeout to a protocol error code.
        response = service.handle(
            {"op": "query", "text": RECURSIVE, "timeout": 1e-9}
        )
        assert response["ok"] is False
        assert response["error"]["code"] == "timeout"
        # And the service still answers afterwards.
        ok = service.run_query(RECURSIVE)
        assert ok["row_count"] > 0


class TestFixpointLimit:
    def _cyclic_db(self):
        db = generate_music_database(
            MusicConfig(lineages=1, generations=4, works_per_composer=1, seed=5)
        )
        # Close the master chain into a cycle: founder's master is the
        # youngest composer.  The gen counter then grows forever.
        chain = db.composer_oids[:4]
        founder = db.store.peek(chain[0])
        founder.values["master"] = chain[-1]
        db.physical.refresh_statistics()
        return db

    def test_divergent_recursion_hits_the_cap(self):
        db = self._cyclic_db()
        graph = compile_text(RECURSIVE, db.catalog)
        plan = cost_controlled_optimizer(db.physical).optimize(graph).plan
        engine = Engine(db.physical, max_fix_iterations=16)
        with pytest.raises(FixpointLimitError) as excinfo:
            engine.execute(plan)
        assert excinfo.value.limit == 16
        assert excinfo.value.name == "Influencer"
        assert "divergent" in str(excinfo.value)

    def test_cap_is_configurable_through_the_service(self):
        db = self._cyclic_db()
        service = QueryService(db, ServiceConfig(max_fix_iterations=8))
        response = service.handle({"op": "query", "text": RECURSIVE})
        assert response["ok"] is False
        assert response["error"]["code"] == "fixpoint_limit"
        assert "8" in response["error"]["message"]


class TestServiceParallelism:
    def test_request_parallelism_is_granted_and_reported(self, db):
        service = QueryService(db, ServiceConfig(max_concurrent=8))
        response = service.run_query(RECURSIVE, parallelism=4)
        assert response["parallelism"] == 4
        assert response["row_count"] > 0

    def test_grant_is_capped_by_admission(self, db):
        service = QueryService(db, ServiceConfig(max_concurrent=4))
        response = service.run_query(RECURSIVE, parallelism=16)
        assert response["parallelism"] == 4

    def test_wire_protocol_carries_parallelism(self, db):
        service = QueryService(db, ServiceConfig(max_concurrent=8))
        response = service.handle(
            {"op": "query", "text": RECURSIVE, "parallelism": 2}
        )
        assert response["ok"] is True
        assert response["parallelism"] == 2

    def test_invalid_parallelism_is_a_protocol_error(self, db):
        service = QueryService(db, ServiceConfig())
        for bad in (0, -1, 1.5, "two", True):
            response = service.handle(
                {"op": "query", "text": RECURSIVE, "parallelism": bad}
            )
            assert response["ok"] is False
            assert response["error"]["code"] == "protocol_error"

    def test_timeout_releases_every_reserved_slot(self, db):
        """A parallel query that times out must give back all its
        slots, not just one — otherwise the service leaks capacity."""
        service = QueryService(db, ServiceConfig(max_concurrent=8))
        with pytest.raises(ExecutionTimeout):
            service.run_query(RECURSIVE, timeout=1e-9, parallelism=8)
        assert service.admission.snapshot()["slots_in_use"] == 0
        # Capacity intact: the next wide query is admitted and runs.
        ok = service.run_query(RECURSIVE, parallelism=8)
        assert ok["row_count"] > 0
