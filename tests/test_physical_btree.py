"""Tests for the B⁺-tree, including hypothesis property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.physical.btree import BPlusTree


class TestBasics:
    def test_insert_and_search(self):
        tree = BPlusTree(order=4)
        tree.insert(5, "a")
        tree.insert(3, "b")
        assert tree.search(5) == ["a"]
        assert tree.search(3) == ["b"]
        assert tree.search(99) == []

    def test_duplicate_keys_accumulate(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert sorted(tree.search(1)) == ["a", "b"]
        assert len(tree) == 2
        assert tree.distinct_keys == 1

    def test_contains(self):
        tree = BPlusTree(order=4)
        tree.insert(7, None)
        assert tree.contains(7)
        assert not tree.contains(8)

    def test_order_minimum(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    def test_structural_parameters_grow(self):
        tree = BPlusTree(order=4)
        assert tree.nblevels == 1
        assert tree.nbleaves == 1
        for i in range(100):
            tree.insert(i, i)
        assert tree.nblevels >= 3
        assert tree.nbleaves >= 25
        tree.check_invariants()

    def test_keys_sorted(self):
        tree = BPlusTree(order=4)
        for key in (9, 1, 5, 3, 7):
            tree.insert(key, key)
        assert list(tree.keys()) == [1, 3, 5, 7, 9]

    def test_string_keys(self):
        tree = BPlusTree(order=4)
        for name in ("flute", "harpsichord", "oboe"):
            tree.insert(name, name)
        assert tree.search("harpsichord") == ["harpsichord"]


class TestRangeSearch:
    def make_tree(self):
        tree = BPlusTree(order=4)
        for i in range(0, 20, 2):  # 0, 2, ..., 18
            tree.insert(i, f"v{i}")
        return tree

    def test_closed_range(self):
        tree = self.make_tree()
        keys = [k for k, _v in tree.range_search(4, 10)]
        assert keys == [4, 6, 8, 10]

    def test_open_low(self):
        tree = self.make_tree()
        keys = [k for k, _v in tree.range_search(None, 4)]
        assert keys == [0, 2, 4]

    def test_open_high(self):
        tree = self.make_tree()
        keys = [k for k, _v in tree.range_search(14, None)]
        assert keys == [14, 16, 18]

    def test_exclusive_bounds(self):
        tree = self.make_tree()
        keys = [
            k
            for k, _v in tree.range_search(
                4, 10, include_low=False, include_high=False
            )
        ]
        assert keys == [6, 8]

    def test_full_scan_via_items(self):
        tree = self.make_tree()
        assert len(list(tree.items())) == 10

    def test_bounds_between_keys(self):
        tree = self.make_tree()
        keys = [k for k, _v in tree.range_search(3, 7)]
        assert keys == [4, 6]


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(min_value=-1000, max_value=1000)))
def test_property_insert_search_roundtrip(keys):
    """Every inserted key is findable; counts match; invariants hold."""
    tree = BPlusTree(order=4)
    for position, key in enumerate(keys):
        tree.insert(key, position)
    tree.check_invariants()
    assert len(tree) == len(keys)
    for key in set(keys):
        expected = [p for p, k in enumerate(keys) if k == key]
        assert sorted(tree.search(key)) == expected


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=200), min_size=1),
    st.integers(min_value=0, max_value=200),
    st.integers(min_value=0, max_value=200),
)
def test_property_range_search_matches_filter(keys, low, high):
    if low > high:
        low, high = high, low
    tree = BPlusTree(order=5)
    for key in keys:
        tree.insert(key, key)
    got = sorted(k for k, _v in tree.range_search(low, high))
    want = sorted(k for k in keys if low <= k <= high)
    assert got == want


@settings(max_examples=30, deadline=None)
@given(st.lists(st.text(max_size=8), min_size=0, max_size=60))
def test_property_leaf_chain_sorted(keys):
    tree = BPlusTree(order=4)
    for key in keys:
        tree.insert(key, None)
    ordered = list(tree.keys())
    assert ordered == sorted(set(keys))
    tree.check_invariants()
