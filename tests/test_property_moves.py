"""Property test: arbitrary move sequences preserve plan semantics.

The randomized strategies walk the move graph freely; soundness of the
whole optimizer rests on every edge being an equivalence.  This test
generates random databases, optimizes the paper's queries to obtain
realistic starting plans, then applies random move sequences and checks
the answer set never changes.
"""

import random as random_module

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import naive_optimizer
from repro.core.moves import neighbors
from repro.engine import Engine
from repro.plans import validate_plan
from repro.workloads import (
    MusicConfig,
    fig2_query,
    fig3_query,
    generate_music_database,
    join_push_query,
)

QUERIES = {
    "fig2": fig2_query,
    "fig3": fig3_query,
    "joinpush": join_push_query,
}


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    query_name=st.sampled_from(sorted(QUERIES)),
    walk_seed=st.integers(min_value=0, max_value=10_000),
    steps=st.integers(min_value=1, max_value=5),
    extended=st.booleans(),
)
def test_random_move_walks_preserve_answers(
    seed, query_name, walk_seed, steps, extended
):
    db = generate_music_database(
        MusicConfig(lineages=2, generations=5, works_per_composer=2, seed=seed)
    )
    db.build_paper_indexes()
    graph = QUERIES[query_name]()
    start = naive_optimizer(db.physical).optimize(graph).plan
    engine = Engine(db.physical)
    want = engine.execute(start).answer_set()

    rng = random_module.Random(walk_seed)
    current = start
    for _step in range(steps):
        options = neighbors(current, db.physical, extended=extended)
        if not options:
            break
        _description, current = rng.choice(options)
        validate_plan(current, db.physical)
        got = engine.execute(current).answer_set()
        assert got == want, (
            f"move {_description!r} changed the answers on {query_name} "
            f"(db seed {seed})"
        )
