"""End-to-end cost-controlled observability on the serving path.

A governed :class:`QueryService` (``--obs-budget`` set): the sampling
echo on query responses, anomaly injection driving tail-sampled
flight-recorder bundles that replay deterministically, head-sampling
degradation under a saturated budget with calibration staying on the
committed (weighted) samples only, and the ``governor``/``diagnose``
protocol ops.

When ``REPRO_BUNDLE_ARTIFACT`` is set (CI does this), the anomaly
bundle is copied there so the workflow can replay it with
``repro replay`` and upload it as a build artifact.
"""

import os
import shutil

import pytest

from repro.obs.recorder import database_from_config, load_bundle, replay_bundle
from repro.service import QueryService, ServiceConfig

#: The recipe is part of the test: it rides inside recorded bundles as
#: ``database`` so replay can rebuild a bit-identical store.
RECIPE = {"db": "music", "seed": 21, "lineages": 3, "generations": 6}

SCAN = "select [name: x.name] from x in Composer where x.birthyear >= 1700;"

FIG3 = """
view Influencer as
  select [master: x.master, disciple: x, gen: 1] from x in Composer
  union
  select [master: i.master, disciple: x, gen: i.gen + 1]
  from i in Influencer, x in Composer where i.disciple = x.master;

select [name: i.disciple.name, gen: i.gen]
from i in Influencer
where i.gen >= 2;
"""


def governed_service(tmp_path, **overrides):
    defaults = dict(
        obs_budget=0.5,
        bundle_dir=str(tmp_path / "bundles"),
        database_config=RECIPE,
        anomaly_min_samples=5,
        slow_query_seconds=10.0,
    )
    defaults.update(overrides)
    db = database_from_config(RECIPE)
    service = QueryService(db, ServiceConfig(**defaults))
    if service.governor is not None:
        # Pin unit costs: modeled spend on sub-ms test queries must not
        # depend on this machine's measured probe cost, or the generous
        # budget above can still saturate and degrade mid-test.
        service.governor.probe_cost = service.governor.span_cost = 1e-7
    return service, db


class TestSamplingEcho:
    def test_governed_response_carries_obs(self, tmp_path):
        service, _ = governed_service(tmp_path)
        response = service.handle({"op": "query", "text": SCAN})
        assert response["ok"]
        obs = response["obs"]
        for key in ("mode", "sampled", "weight", "reason", "committed"):
            assert key in obs
        assert obs["sampled"] and obs["mode"] == "full"

    def test_ungoverned_response_has_no_obs(self):
        service = QueryService(database_from_config(RECIPE))
        response = service.handle({"op": "query", "text": SCAN})
        assert response["ok"] and "obs" not in response

    def test_stats_and_metrics_surface_governor(self, tmp_path):
        service, _ = governed_service(tmp_path)
        service.handle({"op": "query", "text": SCAN})
        assert "governor" in service.stats()
        text = service.metrics_text()
        assert "repro_obs_budget_fraction" in text
        assert "repro_obs_committed_total" in text


class TestAnomalyInjection:
    def inject(self, service, db, runs=8):
        """Warm a class, then make the store suddenly slow."""
        for _ in range(runs):
            assert service.handle({"op": "query", "text": SCAN})["ok"]
        db.physical.store.buffer.io_latency = 0.05
        db.physical.store.buffer.clear()
        return service.handle({"op": "query", "text": SCAN})

    def test_injected_anomaly_is_flagged_and_bundled(self, tmp_path):
        service, db = governed_service(tmp_path)
        response = self.inject(service, db)
        assert response["ok"]
        obs = response["obs"]
        assert obs["commit_reason"] == "anomaly"
        metrics = [a["metric"] for a in obs["anomalies"]]
        assert "latency" in metrics
        bundle_path = obs["bundle"]
        assert os.path.exists(bundle_path)

        # The anomaly lands everywhere an operator would look.
        snapshot = service.metrics.snapshot()
        assert snapshot["counters"]["anomalies"] >= 1
        assert snapshot["counters"]["flight_bundles"] >= 1
        slow = snapshot["slow"]
        assert any(
            any(r.startswith("anomaly:latency") for r in entry["reasons"])
            for entry in slow
        )
        events = [
            e for e in service.feedback.store.events if e["event"] == "anomaly"
        ]
        assert events and events[-1]["request_id"] == response["request_id"]

        # The class is pinned to full detail for the follow-up runs.
        stats = service.governor_stats()
        pinned = [c for c in stats["governor"]["classes"] if c["pinned"]]
        assert pinned and pinned[0]["anomalies"] >= 1
        follow_up = service.handle({"op": "query", "text": SCAN})
        assert follow_up["obs"]["reason"] == "anomaly-pinned"

    def test_anomaly_bundle_replays_deterministically(self, tmp_path):
        service, db = governed_service(tmp_path)
        response = self.inject(service, db)
        bundle_path = response["obs"]["bundle"]

        artifact = os.environ.get("REPRO_BUNDLE_ARTIFACT")
        if artifact:
            os.makedirs(os.path.dirname(artifact) or ".", exist_ok=True)
            shutil.copyfile(bundle_path, artifact)

        bundle = load_bundle(bundle_path)
        assert bundle["reason"] == "anomaly"
        assert bundle["database"] == RECIPE
        assert bundle["trace"] is not None and bundle["profile"] is not None
        report = replay_bundle(bundle)
        assert report["schema_match"]
        assert report["plan_match"]
        assert report["answer_match"]
        assert report["matched"]

    def test_recursive_query_bundle_replays(self, tmp_path):
        service, db = governed_service(tmp_path)
        for _ in range(8):
            assert service.handle({"op": "query", "text": FIG3})["ok"]
        db.physical.store.buffer.io_latency = 0.05
        db.physical.store.buffer.clear()
        response = service.handle({"op": "query", "text": FIG3})
        bundle_path = response["obs"].get("bundle")
        assert bundle_path, response["obs"]
        assert replay_bundle(load_bundle(bundle_path))["matched"]


class TestDegradation:
    def test_saturated_budget_head_samples(self, tmp_path):
        service, _ = governed_service(tmp_path, obs_budget=0.05)
        # Make every probe ruinously expensive so the modeled spend
        # saturates the budget immediately.
        service.governor.probe_cost = 10.0
        service.governor.span_cost = 10.0
        echoes = []
        for _ in range(24):
            response = service.handle({"op": "query", "text": SCAN})
            assert response["ok"]
            echoes.append(response["obs"])
        modes = {echo["mode"] for echo in echoes}
        assert "skip" in modes, modes
        skipped = [echo for echo in echoes if echo["mode"] == "skip"]
        assert all(not echo["committed"] for echo in skipped)

        # Calibration consumes exactly the committed observations, and
        # head-sampled ones carry their inverse-probability weight.
        samples = service.feedback.store.calibration_samples()
        committed = [echo for echo in echoes if echo["committed"]]
        assert len(samples) == len(committed)
        assert len(samples) < len(echoes)
        if any(echo["mode"] == "head" for echo in echoes):
            assert any(sample["weight"] > 1.0 for sample in samples)

    def test_budget_zero_disables_governor(self):
        service = QueryService(
            database_from_config(RECIPE), ServiceConfig(obs_budget=None)
        )
        assert service.governor is None and service.anomalies is None


class TestOps:
    def test_governor_op(self, tmp_path):
        service, _ = governed_service(tmp_path)
        service.handle({"op": "query", "text": SCAN})
        response = service.handle({"op": "governor"})
        assert response["ok"] and response["enabled"]
        assert response["governor"]["decisions"]["full"] >= 1
        assert "recorder" in response

    def test_governor_op_when_disabled(self):
        service = QueryService(database_from_config(RECIPE))
        response = service.handle({"op": "governor"})
        assert response["ok"] and response["enabled"] is False

    def test_diagnose_op_records_replayable_bundle(self, tmp_path):
        service, _ = governed_service(tmp_path)
        response = service.handle({"op": "diagnose", "text": SCAN})
        assert response["ok"]
        assert response["row_count"] > 0
        bundle_path = response["bundle"]
        assert bundle_path and os.path.exists(bundle_path)
        bundle = load_bundle(bundle_path)
        assert bundle["reason"] == "diagnose"
        assert replay_bundle(bundle)["matched"]

    def test_diagnose_works_without_governor(self, tmp_path):
        service = QueryService(
            database_from_config(RECIPE),
            ServiceConfig(bundle_dir=str(tmp_path), database_config=RECIPE),
        )
        response = service.handle({"op": "diagnose", "text": SCAN})
        assert response["ok"] and response["bundle"]

    def test_diagnose_requires_text(self, tmp_path):
        service, _ = governed_service(tmp_path)
        response = service.handle({"op": "diagnose"})
        assert response["ok"] is False
        assert response["error"]["code"] == "protocol_error"


class TestReplayCli:
    def bundle_path(self, service, tmp_path):
        response = service.handle({"op": "diagnose", "text": SCAN})
        assert response["ok"]
        return response["bundle"]

    def test_replay_command_passes_on_good_bundle(self, tmp_path):
        import io

        from repro.cli import main

        service, _ = governed_service(tmp_path)
        out = io.StringIO()
        code = main(["replay", self.bundle_path(service, tmp_path)], out=out)
        assert code == 0
        assert "REPLAY OK" in out.getvalue()

    def test_replay_command_fails_on_tampered_bundle(self, tmp_path):
        import io
        import json

        from repro.cli import main

        service, _ = governed_service(tmp_path)
        path = self.bundle_path(service, tmp_path)
        bundle = json.loads(open(path).read())
        bundle["execution"]["answer_fingerprint"] = "0" * 16
        with open(path, "w") as handle:
            json.dump(bundle, handle)
        out = io.StringIO()
        code = main(["replay", path], out=out)
        assert code != 0
        assert "REPLAY FAILED" in out.getvalue()
