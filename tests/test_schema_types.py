"""Unit tests for the conceptual type system."""

import pytest

from repro.errors import TypeCheckError, UnknownAttributeError
from repro.schema.types import (
    BOOL,
    FLOAT,
    INT,
    STRING,
    AtomicType,
    ClassRef,
    ListType,
    SetType,
    TupleType,
    element_type,
    is_collection,
)


class TestAtomicTypes:
    def test_predefined_atomics_are_atomic(self):
        for atomic in (INT, FLOAT, STRING, BOOL):
            assert atomic.is_atomic()

    def test_equality_is_structural(self):
        assert AtomicType("int") == INT
        assert AtomicType("int") != AtomicType("float")

    def test_hashable_and_usable_in_sets(self):
        assert len({INT, AtomicType("int"), FLOAT}) == 2

    def test_type_name(self):
        assert INT.type_name() == "int"


class TestClassRef:
    def test_equality_by_name(self):
        assert ClassRef("Composer") == ClassRef("Composer")
        assert ClassRef("Composer") != ClassRef("Person")

    def test_not_atomic(self):
        assert not ClassRef("Composer").is_atomic()

    def test_distinct_from_atomic_of_same_name(self):
        assert ClassRef("int") != AtomicType("int")


class TestTupleType:
    def test_field_lookup(self):
        tuple_type = TupleType({"name": STRING, "age": INT})
        assert tuple_type.field_type("name") == STRING
        assert tuple_type.field_type("age") == INT

    def test_missing_field_raises(self):
        tuple_type = TupleType({"name": STRING})
        with pytest.raises(UnknownAttributeError):
            tuple_type.field_type("nope")

    def test_has_field(self):
        tuple_type = TupleType({"name": STRING})
        assert tuple_type.has_field("name")
        assert not tuple_type.has_field("other")

    def test_field_order_matters_for_equality(self):
        left = TupleType({"a": INT, "b": STRING})
        right = TupleType({"b": STRING, "a": INT})
        assert left != right

    def test_type_name_renders_constructor(self):
        tuple_type = TupleType({"name": STRING})
        assert tuple_type.type_name() == "[name: string]"


class TestCollections:
    def test_set_and_list_are_collections(self):
        assert is_collection(SetType(INT))
        assert is_collection(ListType(INT))
        assert not is_collection(INT)
        assert not is_collection(TupleType({"a": INT}))

    def test_element_type(self):
        assert element_type(SetType(ClassRef("X"))) == ClassRef("X")
        assert element_type(ListType(INT)) == INT

    def test_element_type_of_non_collection_raises(self):
        with pytest.raises(TypeCheckError):
            element_type(INT)

    def test_set_vs_list_not_equal(self):
        assert SetType(INT) != ListType(INT)

    def test_nested_constructor_names(self):
        nested = SetType(TupleType({"x": ListType(INT)}))
        assert nested.type_name() == "{[x: <int>]}"
