"""End-to-end predicate semantics: Or/Not/methods/arithmetic, engine vs
reference evaluator."""

import pytest

from repro.core import cost_controlled_optimizer
from repro.engine import Engine, ReferenceEvaluator
from repro.lang import compile_text
from repro.querygraph.builder import (
    and_,
    arc,
    const,
    eq,
    ge,
    not_,
    or_,
    out,
    path,
    query,
    rule,
    spj,
)


def check(db, graph):
    result = cost_controlled_optimizer(db.physical).optimize(graph)
    got = Engine(db.physical).execute(result.plan).answer_set()
    want = ReferenceEvaluator(db.physical).answer_set(graph)
    assert got == want
    return want


class TestBooleanConnectives:
    def test_disjunction(self, indexed_db):
        graph = query(
            rule(
                "Answer",
                spj(
                    [arc("Instrument", i=".")],
                    where=or_(
                        eq(path("i", "name"), const("flute")),
                        eq(path("i", "name"), const("harpsichord")),
                    ),
                    select=out(n=path("i", "name")),
                ),
            )
        )
        want = check(indexed_db, graph)
        assert len(want) == 2

    def test_negation_on_atomic(self, indexed_db):
        graph = query(
            rule(
                "Answer",
                spj(
                    [arc("Instrument", i=".")],
                    where=not_(eq(path("i", "name"), const("flute"))),
                    select=out(n=path("i", "name")),
                ),
            )
        )
        want = check(indexed_db, graph)
        assert len(want) == indexed_db.config.instruments - 1

    def test_negation_over_multivalued_path(self, indexed_db):
        """``not (exists instrument named harpsichord)`` — negation
        must wrap the existential, which is why translation leaves such
        predicates unexpanded."""
        graph = query(
            rule(
                "Answer",
                spj(
                    [arc("Composer", x=".")],
                    where=not_(
                        eq(
                            path("x", "works", "instruments", "name"),
                            const("harpsichord"),
                        )
                    ),
                    select=out(n=path("x", "name")),
                ),
            )
        )
        want = check(indexed_db, graph)
        positive = query(
            rule(
                "Answer",
                spj(
                    [arc("Composer", x=".")],
                    where=eq(
                        path("x", "works", "instruments", "name"),
                        const("harpsichord"),
                    ),
                    select=out(n=path("x", "name")),
                ),
            )
        )
        positive_want = check(indexed_db, positive)
        assert len(want) + len(positive_want) == indexed_db.config.composer_count

    def test_mixed_and_or(self, indexed_db):
        graph = query(
            rule(
                "Answer",
                spj(
                    [arc("Composer", x=".")],
                    where=and_(
                        ge(path("x", "birthyear"), const(1650)),
                        or_(
                            eq(path("x", "name"), const("Bach")),
                            ge(path("x", "birthyear"), const(1750)),
                        ),
                    ),
                    select=out(n=path("x", "name")),
                ),
            )
        )
        check(indexed_db, graph)


class TestMethodsThroughLanguage:
    def test_age_method_in_predicate(self, indexed_db):
        graph = compile_text(
            "select [n: x.name] from x in Composer where x.age >= 300;",
            indexed_db.catalog,
        )
        want = check(indexed_db, graph)
        engine = Engine(indexed_db.physical)
        result = cost_controlled_optimizer(indexed_db.physical).optimize(graph)
        run = engine.execute(result.plan)
        assert run.metrics.method_eval_weight > 0
        for row in run.rows:
            pass  # answers checked against reference already

    def test_method_in_projection(self, indexed_db):
        graph = compile_text(
            'select [a: x.age] from x in Composer where x.name = "Bach";',
            indexed_db.catalog,
        )
        rows = ReferenceEvaluator(indexed_db.physical).evaluate(graph)
        assert len(rows) == 1
        assert rows[0]["a"] > 200

    def test_arithmetic_in_predicate(self, indexed_db):
        graph = compile_text(
            "select [n: x.name] from x in Composer "
            "where x.birthyear + 100 >= 1800;",
            indexed_db.catalog,
        )
        check(indexed_db, graph)
