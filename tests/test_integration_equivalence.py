"""Integration + property tests: every optimizer policy, on randomized
database configurations, produces plans that compute exactly the
reference answers — the semantic backbone of the reproduction."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    cost_controlled_optimizer,
    deductive_optimizer,
    naive_optimizer,
)
from repro.engine import Engine, ReferenceEvaluator
from repro.workloads import (
    MusicConfig,
    fig2_query,
    fig3_query,
    generate_music_database,
    join_push_query,
)

configs = st.builds(
    MusicConfig,
    lineages=st.integers(min_value=1, max_value=4),
    generations=st.integers(min_value=2, max_value=7),
    works_per_composer=st.integers(min_value=1, max_value=3),
    instruments=st.integers(min_value=3, max_value=10),
    instruments_per_work=st.integers(min_value=1, max_value=3),
    selective_fraction=st.floats(min_value=0.0, max_value=1.0),
    records_per_page=st.sampled_from([4, 10, 20]),
    buffer_pages=st.sampled_from([2, 32, 256]),
    seed=st.integers(min_value=0, max_value=10_000),
)


def build(config):
    db = generate_music_database(config)
    db.build_paper_indexes()
    return db


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(configs)
def test_property_fig3_equivalence_across_policies(config):
    db = build(config)
    graph = fig3_query(min_generations=min(3, config.generations))
    want = ReferenceEvaluator(db.physical).answer_set(graph)
    for factory in (cost_controlled_optimizer, deductive_optimizer, naive_optimizer):
        result = factory(db.physical).optimize(graph)
        got = Engine(db.physical).execute(result.plan).answer_set()
        assert got == want, f"{factory.__name__} diverged on {config}"


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(configs)
def test_property_join_push_equivalence(config):
    db = build(config)
    graph = join_push_query()
    want = ReferenceEvaluator(db.physical).answer_set(graph)
    result = cost_controlled_optimizer(db.physical).optimize(graph)
    got = Engine(db.physical).execute(result.plan).answer_set()
    assert got == want


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(configs, st.sampled_from(["harpsichord", "flute", "no_such"]))
def test_property_fig2_equivalence(config, instrument):
    db = build(config)
    graph = fig2_query(instrument1=instrument)
    want = ReferenceEvaluator(db.physical).answer_set(graph)
    result = cost_controlled_optimizer(db.physical).optimize(graph)
    got = Engine(db.physical).execute(result.plan).answer_set()
    assert got == want


class TestMeasuredVsEstimated:
    """The cost model need not match measured cost absolutely, but it
    must rank plans usefully: on the paper's Figure 4 decision, model
    choice and measured choice agree."""

    def test_model_choice_agrees_with_measurement(self, larger_db):
        from repro.core import Optimizer, OptimizerConfig
        from repro.core.transform import transform_candidates
        from repro.cost import DetailedCostModel

        model = DetailedCostModel(larger_db.physical)
        base = Optimizer(
            larger_db.physical,
            model,
            OptimizerConfig(push_policy="never", reoptimize=False),
        ).optimize(fig3_query())
        candidates = transform_candidates(base.plan)
        assert len(candidates) >= 2
        engine = Engine(larger_db.physical)
        measured = []
        estimated = []
        for _description, plan in candidates:
            result = engine.execute(plan)
            measured.append(result.metrics.measured_cost())
            estimated.append(model.cost(plan))
        model_winner = estimated.index(min(estimated))
        measured_winner = measured.index(min(measured))
        assert model_winner == measured_winner
