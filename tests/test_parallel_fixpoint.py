"""Unit coverage for the hash-partitioned parallel fixpoint.

Delta partitioning (disjointness, determinism, no lost tuples on
cyclic data), cancellation and error propagation out of worker
threads, deterministic results under barrier-forced adversarial
interleavings, and the insertion-time normalization of the seen-set
dedup path.
"""

import threading

import pytest

import repro.engine.parallel as parallel_mod
from repro.core.baselines import cost_controlled_optimizer
from repro.engine import (
    CancellationToken,
    Engine,
    ExecutionContext,
    ReferenceEvaluator,
    partition_delta,
    partitionable,
)
from repro.engine import fixpoint as fixpoint_mod
from repro.errors import ExecutionTimeout, FixpointLimitError
from repro.lang import compile_text
from repro.physical.storage import Oid, StoredRecord
from repro.plans.nodes import EJ, EntityLeaf, Proj, RecLeaf, Sel
from repro.querygraph.graph import OutputField, OutputSpec
from repro.querygraph.predicates import Comparison, PathRef
from repro.workloads import MusicConfig, generate_music_database

RECURSIVE = """
view Influencer as
  select [master: x.master, disciple: x, gen: 1] from x in Composer
  union
  select [master: i.master, disciple: x, gen: i.gen + 1]
  from i in Influencer, x in Composer where i.disciple = x.master;
select [name: i.disciple.name, gen: i.gen] from i in Influencer;
"""

# Converges even on cyclic data: no generation counter, so the tuple
# space is bounded by Composer x Composer.
CYCLIC_SAFE = """
view Reach as
  select [master: x.master, disciple: x] from x in Composer
  union
  select [master: r.master, disciple: x]
  from r in Reach, x in Composer where r.disciple = x.master;
select [m: r.disciple.name, d: r.gen] from r in Reach;
"""


def _music_db(**overrides):
    config = dict(lineages=3, generations=6, works_per_composer=2, seed=3)
    config.update(overrides)
    db = generate_music_database(MusicConfig(**config))
    db.build_paper_indexes()
    return db


def _cyclic_db():
    db = generate_music_database(
        MusicConfig(lineages=2, generations=5, works_per_composer=1, seed=5)
    )
    # Close each master chain into a cycle: the founder's master is the
    # chain's youngest composer.
    chain = db.composer_oids[:5]
    founder = db.store.peek(chain[0])
    founder.values["master"] = chain[-1]
    db.physical.refresh_statistics()
    return db


def _optimized(db, text):
    graph = compile_text(text, db.catalog)
    plan = cost_controlled_optimizer(db.physical).optimize(graph).plan
    return graph, plan


def _records(count, fields):
    records = []
    for index in range(count):
        values = {name: f"{name}-{index % 7}" for name in fields}
        values["n"] = index
        records.append(StoredRecord(Oid(index), "T", values))
    return records


class TestPartitioning:
    def test_slices_are_disjoint_and_complete(self):
        delta = _records(100, ["master", "disciple"])
        slices = partition_delta(delta, 4, ["disciple"])
        assert len(slices) == 4
        flattened = [record for piece in slices for record in piece]
        assert len(flattened) == len(delta)
        assert {id(r) for r in flattened} == {id(r) for r in delta}

    def test_partition_is_deterministic(self):
        delta = _records(64, ["master", "disciple"])
        first = partition_delta(delta, 8, ["disciple"])
        second = partition_delta(delta, 8, ["disciple"])
        assert [[r.oid for r in piece] for piece in first] == [
            [r.oid for r in piece] for piece in second
        ]

    def test_same_binding_key_lands_in_same_slice(self):
        delta = _records(50, ["master", "disciple"])
        slices = partition_delta(delta, 4, ["disciple"])
        owner = {}
        for index, piece in enumerate(slices):
            for record in piece:
                key = record.values["disciple"]
                assert owner.setdefault(key, index) == index

    def test_unhashable_field_value_falls_back(self):
        delta = _records(10, ["master"])
        for record in delta:
            record.values["master"] = [record.values["master"]]  # a list
        slices = partition_delta(delta, 4, ["master"])
        assert sum(len(piece) for piece in slices) == len(delta)


class TestPartitionability:
    def _eq(self):
        return Comparison("=", PathRef("r", ("a",)), PathRef("x", ("b",)))

    def test_driving_chain_is_partitionable(self):
        rec = RecLeaf("R", "r")
        spec = OutputSpec([OutputField("a", PathRef("r", ("a",)))])
        part = Proj(Sel(rec, self._eq()), spec)
        assert partitionable(part, "R")

    def test_recleaf_on_inner_join_side_is_not(self):
        part = EJ(EntityLeaf("Composer", "x"), RecLeaf("R", "r"), self._eq())
        assert not partitionable(part, "R")

    def test_recleaf_on_outer_join_side_is(self):
        part = EJ(RecLeaf("R", "r"), EntityLeaf("Composer", "x"), self._eq())
        assert partitionable(part, "R")

    def test_two_recursion_references_are_not(self):
        part = EJ(RecLeaf("R", "r"), RecLeaf("R", "s"), self._eq())
        assert not partitionable(part, "R")

    def test_other_recursions_reference_does_not_count(self):
        part = EJ(RecLeaf("R", "r"), RecLeaf("Outer", "s"), self._eq())
        assert partitionable(part, "R")


class TestParallelCorrectness:
    @pytest.mark.parametrize("workers", [2, 4, 8])
    def test_matches_serial_and_reference(self, workers):
        db = _music_db()
        graph, plan = _optimized(db, RECURSIVE)
        reference = ReferenceEvaluator(db.physical).answer_set(graph)
        serial = Engine(db.physical).execute(plan)
        parallel = Engine(db.physical, parallelism=workers).execute(plan)
        assert serial.answer_set() == reference
        assert parallel.answer_set() == reference
        assert (
            parallel.metrics.total_tuples == serial.metrics.total_tuples
        )
        assert (
            parallel.metrics.fix_iterations == serial.metrics.fix_iterations
        )
        assert (
            parallel.metrics.tuples_by_node == serial.metrics.tuples_by_node
        )

    def test_no_lost_tuples_on_cyclic_data(self):
        db = _cyclic_db()
        text = CYCLIC_SAFE.replace("r.gen", "r.master.name")
        graph, plan = _optimized(db, text)
        reference = ReferenceEvaluator(db.physical).answer_set(graph)
        serial = Engine(db.physical).execute(plan)
        parallel = Engine(db.physical, parallelism=4).execute(plan)
        assert serial.answer_set() == reference
        assert parallel.answer_set() == reference
        assert parallel.metrics.total_tuples == serial.metrics.total_tuples

    def test_execution_context_threads_parallelism(self):
        db = _music_db()
        _graph, plan = _optimized(db, RECURSIVE)
        engine = Engine(db.physical)
        context = ExecutionContext(parallelism=4)
        result = engine.execute(plan, context=context)
        assert engine.parallelism == 4
        baseline = Engine(db.physical).execute(plan)
        assert result.answer_set() == baseline.answer_set()

    def test_context_rejects_nonpositive_parallelism(self):
        with pytest.raises(ValueError):
            ExecutionContext(parallelism=0)
        with pytest.raises(ValueError):
            Engine(_music_db().physical, parallelism=0)


class TestWorkerPropagation:
    def test_timeout_propagates_and_cleans_temps(self):
        db = _music_db()
        _graph, plan = _optimized(db, RECURSIVE)
        engine = Engine(db.physical, parallelism=4)
        before = {info.name for info in db.physical.entities()}
        with pytest.raises(ExecutionTimeout):
            engine.execute(plan, cancel=CancellationToken(timeout=-1.0))
        assert {info.name for info in db.physical.entities()} == before
        # The engine still serves the next (parallel) query.
        assert len(engine.execute(plan).rows) > 0

    def test_fixpoint_limit_propagates_from_parallel_run(self):
        db = _cyclic_db()
        _graph, plan = _optimized(db, RECURSIVE)
        engine = Engine(db.physical, max_fix_iterations=8, parallelism=4)
        before = {info.name for info in db.physical.entities()}
        with pytest.raises(FixpointLimitError) as excinfo:
            engine.execute(plan)
        assert excinfo.value.limit == 8
        assert {info.name for info in db.physical.entities()} == before

    def test_worker_raised_error_reaches_the_caller(self, monkeypatch):
        """An exception raised on a pool thread (injected through the
        test seam) must abort peers and re-raise in the coordinator."""
        db = _music_db()
        _graph, plan = _optimized(db, RECURSIVE)

        def explode(stage, part):
            if stage == "task_end":
                raise FixpointLimitError("Injected", 1)

        monkeypatch.setattr(parallel_mod, "INTERLEAVE_HOOK", explode)
        engine = Engine(db.physical, parallelism=4)
        before = {info.name for info in db.physical.entities()}
        with pytest.raises(FixpointLimitError, match="Injected"):
            engine.execute(plan)
        assert {info.name for info in db.physical.entities()} == before
        monkeypatch.setattr(parallel_mod, "INTERLEAVE_HOOK", None)
        assert len(engine.execute(plan).rows) > 0


class _BarrierHook:
    """Forces worker tasks to start in lockstep so every round races
    the striped seen-set as hard as the pool allows."""

    def __init__(self, parties):
        self._barrier = threading.Barrier(parties)
        self.rendezvous = 0

    def __call__(self, stage, part):
        if stage != "task_start":
            return
        try:
            self._barrier.wait(timeout=0.05)
            self.rendezvous += 1
        except threading.BrokenBarrierError:
            pass
        finally:
            if self._barrier.broken:
                self._barrier.reset()


class TestRacyScheduler:
    def test_deterministic_under_forced_interleavings(self, monkeypatch):
        db = _music_db(lineages=4, generations=5)
        _graph, plan = _optimized(db, RECURSIVE)
        baseline = Engine(db.physical).execute(plan)
        for workers in (2, 4):
            hook = _BarrierHook(workers)
            monkeypatch.setattr(parallel_mod, "INTERLEAVE_HOOK", hook)
            try:
                racy = Engine(db.physical, parallelism=workers).execute(plan)
            finally:
                monkeypatch.setattr(parallel_mod, "INTERLEAVE_HOOK", None)
            assert racy.answer_set() == baseline.answer_set()
            assert (
                racy.metrics.total_tuples == baseline.metrics.total_tuples
            )


class TestSeenProbeNormalization:
    def test_normalize_runs_once_per_field_at_insertion(self, monkeypatch):
        """Regression: the seen-set probe used to re-normalize every
        value of every produced binding (2x per field); normalization
        now happens exactly once per field, at insertion time.  Pinned
        to the row layout — the columnar dedup path assembles its keys
        straight from normalized columns and never routes through
        ``key_of_normalized``, so this accounting is row-specific."""
        db = _music_db()
        _graph, plan = _optimized(db, RECURSIVE)

        normalize_calls = [0]
        real_normalize = fixpoint_mod.normalize_value

        def counting_normalize(value):
            normalize_calls[0] += 1
            return real_normalize(value)

        key_calls = [0]
        real_key = fixpoint_mod.key_of_normalized

        def counting_key(values):
            key_calls[0] += 1
            return real_key(values)

        monkeypatch.setattr(
            fixpoint_mod, "normalize_value", counting_normalize
        )
        monkeypatch.setattr(fixpoint_mod, "key_of_normalized", counting_key)
        Engine(db.physical, batch_layout="row").execute(plan)
        assert key_calls[0] > 0
        # Influencer tuples carry exactly 3 scalar fields (master,
        # disciple, gen): one normalize call per field per probed
        # binding — the old probe path would have doubled this.
        assert normalize_calls[0] == 3 * key_calls[0]

    def test_columnar_dedup_never_normalizes_more_than_row(self, monkeypatch):
        """The columnar dedup path normalizes column-wise (at most once
        per field per produced binding, and not at all for all-atomic
        columns) — so it can only ever call ``normalize_value`` fewer
        times than the row path does for the same plan."""
        db = _music_db()
        _graph, plan = _optimized(db, RECURSIVE)

        real_normalize = fixpoint_mod.normalize_value

        def run(layout):
            calls = [0]

            def counting_normalize(value):
                calls[0] += 1
                return real_normalize(value)

            monkeypatch.setattr(
                fixpoint_mod, "normalize_value", counting_normalize
            )
            result = Engine(db.physical, batch_layout=layout).execute(plan)
            monkeypatch.setattr(
                fixpoint_mod, "normalize_value", real_normalize
            )
            return result.answer_set(), calls[0]

        row_answers, row_calls = run("row")
        col_answers, col_calls = run("columnar")
        assert col_answers == row_answers
        assert 0 < col_calls <= row_calls
