"""Tests for cardinality/selectivity estimation."""

import pytest

from repro.cost.cardinality import CardinalityEstimator, TupleShape
from repro.plans import (
    EJ,
    IJ,
    EntityLeaf,
    Fix,
    Proj,
    RecLeaf,
    Sel,
    UnionOp,
)
from repro.querygraph.builder import add, const, eq, ge, out, path, var


@pytest.fixture()
def estimator(indexed_db):
    return CardinalityEstimator(indexed_db.physical)


def make_fix():
    base = Proj(
        EntityLeaf("Composer", "x"),
        out(master=path("x", "master"), disciple=var("x"), gen=const(1)),
    )
    recursive = Proj(
        EJ(
            RecLeaf("Influencer", "i"),
            EntityLeaf("Composer", "x"),
            eq(path("i", "disciple"), path("x", "master")),
        ),
        out(
            master=path("i", "master"),
            disciple=var("x"),
            gen=add(path("i", "gen"), const(1)),
        ),
    )
    return Fix(
        "Influencer", UnionOp(base, recursive), "i", "Composer", "master", {"master"}
    )


class TestLeavesAndSelections:
    def test_leaf_cardinality(self, estimator, indexed_db):
        estimate = estimator.estimate(EntityLeaf("Composer", "x"))
        assert estimate.tuples == indexed_db.config.composer_count
        assert estimate.varmap == {"x": "Composer"}

    def test_equality_selectivity(self, estimator, indexed_db):
        plan = Sel(
            EntityLeaf("Composer", "x"), eq(path("x", "name"), const("Bach"))
        )
        estimate = estimator.estimate(plan)
        assert estimate.tuples == pytest.approx(1.0)

    def test_range_selectivity_one_third(self, estimator, indexed_db):
        plan = Sel(
            EntityLeaf("Composer", "x"),
            ge(path("x", "birthyear"), const(1700)),
        )
        estimate = estimator.estimate(plan)
        expected = indexed_db.config.composer_count / 3
        assert estimate.tuples == pytest.approx(expected)

    def test_conjunction_multiplies(self, estimator, indexed_db):
        from repro.querygraph.builder import and_

        plan = Sel(
            EntityLeaf("Composer", "x"),
            and_(
                eq(path("x", "name"), const("Bach")),
                ge(path("x", "birthyear"), const(0)),
            ),
        )
        estimate = estimator.estimate(plan)
        assert estimate.tuples == pytest.approx(1.0 / 3)


class TestJoins:
    def test_ij_fanout(self, estimator, indexed_db):
        plan = IJ(
            EntityLeaf("Composer", "x"),
            EntityLeaf("Composition", "w"),
            path("x", "works"),
            "w",
        )
        estimate = estimator.estimate(plan)
        expected = (
            indexed_db.config.composer_count
            * indexed_db.config.works_per_composer
        )
        assert estimate.tuples == pytest.approx(expected)
        assert estimate.varmap["w"] == "Composition"

    def test_ij_single_valued_reference(self, estimator, indexed_db):
        plan = IJ(
            EntityLeaf("Composer", "x"),
            EntityLeaf("Composer", "m"),
            path("x", "master"),
            "m",
        )
        estimate = estimator.estimate(plan)
        # Chain founders have no master: fanout < 1.
        assert estimate.tuples < indexed_db.config.composer_count
        assert estimate.tuples > 0

    def test_ej_join_selectivity(self, estimator, indexed_db):
        plan = EJ(
            EntityLeaf("Composer", "a"),
            EntityLeaf("Composer", "b"),
            eq(path("a", "master"), path("b", "master")),
        )
        estimate = estimator.estimate(plan)
        count = indexed_db.config.composer_count
        assert 0 < estimate.tuples < count * count


class TestFixEstimation:
    def test_fix_output_bounded_by_closure_size(self, estimator, indexed_db):
        fix = make_fix()
        estimate = estimator.estimate(fix)
        config = indexed_db.config
        # Exact closure size: sum over g of (composers with >= g ancestors).
        exact = sum(
            config.lineages * (config.generations - g)
            for g in range(1, config.generations)
        )
        assert estimate.tuples == pytest.approx(exact, rel=0.5)

    def test_fix_exposes_deltas(self, estimator):
        estimate = estimator.estimate(make_fix())
        assert estimate.deltas is not None
        assert len(estimate.deltas) >= 2
        # Deltas shrink (acyclic chains die out).
        assert estimate.deltas[-1] <= estimate.deltas[0]

    def test_fix_varmap_is_tuple_shape(self, estimator):
        estimate = estimator.estimate(make_fix())
        shape = estimate.varmap["i"]
        assert isinstance(shape, TupleShape)
        assert shape.fields["master"] == "Composer"
        assert shape.fields["disciple"] == "Composer"
        assert shape.fields["gen"] is None

    def test_selectivity_through_fix_shape(self, estimator, indexed_db):
        fix = make_fix()
        plan = Sel(
            fix,
            eq(
                path("i", "master", "works", "instruments", "name"),
                const("harpsichord"),
            ),
        )
        filtered = estimator.estimate(plan)
        unfiltered = estimator.estimate(fix)
        assert 0 < filtered.tuples < unfiltered.tuples

    def test_invariant_filter_not_double_counted(self, estimator):
        """A filter on an invariant field inside the Fix body shrinks
        the base once; later iterations must not shrink again."""
        fix = make_fix()
        base, recursive = fix.body.left, fix.body.right
        filtered_base = Proj(
            Sel(base.child, eq(path("x", "name"), const("Bach"))), base.fields
        )
        # Push the same predicate into the recursive part, applied on
        # the invariant master field (via its shape).
        filtered_rec = Proj(
            Sel(
                recursive.child,
                eq(path("i", "master", "name"), const("Bach")),
            ),
            recursive.fields,
        )
        pushed = Fix(
            "Influencer",
            UnionOp(filtered_base, filtered_rec),
            "i",
            "Composer",
            "master",
            {"master"},
        )
        estimate = estimator.estimate(pushed)
        deltas = estimate.deltas
        assert deltas is not None
        if len(deltas) >= 3:
            # Invariant filter transparent after the base: decay ratio
            # between consecutive recursive deltas stays near the
            # structural chain decay, far above the name selectivity.
            ratio = deltas[2] / max(deltas[1], 1e-9)
            assert ratio > 0.3
