"""Query fuzzing: random query graphs, optimized and executed, must
match the naive reference evaluator exactly.

The generator draws arcs over the music schema, conjuncts from a pool
of valid predicates for the bound variables, and output fields from
valid projections; recursive cases range over the ``Influencer`` view.
Every generated query runs through the full pipeline under all three
push policies.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import cost_controlled_optimizer, deductive_optimizer, naive_optimizer
from repro.engine import Engine, ReferenceEvaluator
from repro.errors import OptimizationError
from repro.querygraph.builder import (
    and_,
    arc,
    const,
    eq,
    ge,
    gt,
    le,
    ne,
    out,
    path,
    query,
    rule,
    spj,
    var,
)
from repro.workloads import MusicConfig, generate_music_database
from repro.workloads.queries import influencer_rules

# -- building blocks ----------------------------------------------------------

COMPOSER_PREDICATES = [
    lambda v: eq(path(v, "name"), const("Bach")),
    lambda v: ge(path(v, "birthyear"), const(1650)),
    lambda v: le(path(v, "birthyear"), const(1750)),
    lambda v: ne(path(v, "name"), const("composer_0001")),
    lambda v: eq(path(v, "works", "title"), const("work_00001")),
    lambda v: eq(
        path(v, "works", "instruments", "name"), const("harpsichord")
    ),
    lambda v: ge(path(v, "age"), const(250)),
]

COMPOSER_OUTPUTS = [
    lambda v: ("name", path(v, "name")),
    lambda v: ("year", path(v, "birthyear")),
    lambda v: ("master", path(v, "master")),
    lambda v: ("mname", path(v, "master", "name")),
]

INFLUENCER_PREDICATES = [
    lambda v: ge(path(v, "gen"), const(2)),
    lambda v: le(path(v, "gen"), const(4)),
    lambda v: eq(path(v, "master", "name"), const("Bach")),
    lambda v: eq(
        path(v, "master", "works", "instruments", "name"),
        const("harpsichord"),
    ),
]

INFLUENCER_OUTPUTS = [
    lambda v: ("gen", path(v, "gen")),
    lambda v: ("who", path(v, "disciple", "name")),
    lambda v: ("master", path(v, "master")),
]

JOIN_PREDICATES = [
    lambda a, b: eq(path(b, "master"), var(a)),
    lambda a, b: eq(path(a, "master"), path(b, "master")),
    lambda a, b: eq(path(a, "birthyear"), path(b, "birthyear")),
]


@st.composite
def flat_queries(draw):
    """One or two Composer arcs with random filters and outputs."""
    arc_count = draw(st.integers(min_value=1, max_value=2))
    variables = [f"v{i}" for i in range(arc_count)]
    arcs = [arc("Composer", **{v: "."}) for v in variables]
    conjuncts = []
    for v in variables:
        for predicate in draw(
            st.lists(st.sampled_from(COMPOSER_PREDICATES), max_size=2)
        ):
            conjuncts.append(predicate(v))
    if arc_count == 2:
        join = draw(st.sampled_from(JOIN_PREDICATES))
        conjuncts.append(join(variables[0], variables[1]))
    fields = {}
    for v in variables:
        name, expr = draw(st.sampled_from(COMPOSER_OUTPUTS))(v)
        fields[f"{name}_{v}"] = expr
    return query(
        rule("Answer", spj(arcs, where=and_(*conjuncts), select=out(**fields)))
    )


@st.composite
def recursive_queries(draw):
    """A query over the Influencer view with random filters."""
    conjuncts = [
        predicate("i")
        for predicate in draw(
            st.lists(
                st.sampled_from(INFLUENCER_PREDICATES), min_size=1, max_size=2
            )
        )
    ]
    name, expr = draw(st.sampled_from(INFLUENCER_OUTPUTS))("i")
    p1, p2 = influencer_rules()
    answer = rule(
        "Answer",
        spj(
            [arc("Influencer", i=".")],
            where=and_(*conjuncts),
            select=out(**{name: expr}),
        ),
    )
    return query(p1, p2, answer)


def run_all_policies(db, graph):
    want = ReferenceEvaluator(db.physical).answer_set(graph)
    for factory in (cost_controlled_optimizer, deductive_optimizer, naive_optimizer):
        try:
            result = factory(db.physical).optimize(graph)
        except OptimizationError:
            # Disconnected join graphs (Cartesian products) are
            # legitimately rejected by the optimizer.
            return
        got = Engine(db.physical).execute(result.plan).answer_set()
        assert got == want, f"{factory.__name__} diverged"


@pytest.fixture(scope="module")
def fuzz_db():
    db = generate_music_database(
        MusicConfig(lineages=3, generations=5, works_per_composer=2, seed=99)
    )
    db.build_paper_indexes()
    return db


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
)
@given(graph=flat_queries())
def test_fuzz_flat_queries(fuzz_db, graph):
    run_all_policies(fuzz_db, graph)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
)
@given(graph=recursive_queries())
def test_fuzz_recursive_queries(fuzz_db, graph):
    run_all_policies(fuzz_db, graph)
