"""transformPT candidate dedup: canonical fingerprints, not structure.

Equivalent push orders (and pushes applied to differently-named but
equivalent inputs) yield plans that differ only in the ``_pN``-suffixed
variables the push renamer mints.  ``transform_candidates`` dedups by
:func:`repro.plans.canonical.canonical_fingerprint`, so such
alpha-variants are costed once; these tests pin the candidate counts
and the name-invariance of the candidate set.
"""

from tests.test_core_transform import (
    join_pipeline,
    make_fix,
    selection_pipeline,
)

from repro.core.transform import transform_candidates
from repro.plans import UnionOp
from repro.plans.canonical import alpha_rename, canonical_fingerprint

RENAMING = {
    "i": "r",
    "x": "y",
    "m": "mm",
    "w": "ww",
    "ins": "instr",
    "d": "dd",
    "c": "cc",
}


def test_alpha_variants_share_fingerprint():
    plan = selection_pipeline(make_fix())
    variant = alpha_rename(plan, RENAMING)
    assert plan != variant  # structurally distinct...
    assert canonical_fingerprint(plan) == canonical_fingerprint(variant)


def test_renaming_is_cost_relevant_only_when_structural():
    """Two plans that differ in shape (selection vs join pipeline) must
    not collide."""
    a = selection_pipeline(make_fix())
    b = join_pipeline(make_fix())
    assert canonical_fingerprint(a) != canonical_fingerprint(b)


def test_candidate_count_two_independent_sites():
    """Two independently pushable segments produce exactly four
    candidates — original, each single push, both — regardless of the
    order the closure discovers them in (a closure costing push orders
    separately would return more)."""
    plan = UnionOp(selection_pipeline(make_fix()), join_pipeline(make_fix()))
    candidates = transform_candidates(plan)
    assert len(candidates) == 4
    descriptions = [description for description, _plan in candidates]
    assert descriptions[0] == "original"


def test_candidates_have_distinct_fingerprints():
    plan = UnionOp(selection_pipeline(make_fix()), join_pipeline(make_fix()))
    fingerprints = [
        canonical_fingerprint(candidate)
        for _description, candidate in transform_candidates(plan)
    ]
    assert len(fingerprints) == len(set(fingerprints))


def test_candidate_set_is_name_invariant():
    """The candidate set of an alpha-renamed plan is the alpha-renamed
    candidate set: transformPT does the same costing work however the
    upstream steps happened to name variables."""
    plan = selection_pipeline(make_fix())
    variant = alpha_rename(plan, RENAMING)
    original_set = {
        canonical_fingerprint(candidate)
        for _description, candidate in transform_candidates(plan)
    }
    variant_set = {
        canonical_fingerprint(candidate)
        for _description, candidate in transform_candidates(variant)
    }
    assert len(original_set) > 1  # the push actually applied
    assert original_set == variant_set
