"""Hypothesis property tests on core data structures: tree labels,
predicate substitution, clustering placement, canonical rows."""

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.errors import QueryModelError

from repro.engine.eval_expr import canonical_row
from repro.physical.buffer import BufferPool
from repro.physical.clustering import ClusterTree, apply_clustering
from repro.physical.storage import ObjectStore
from repro.querygraph.predicates import Comparison, Const, PathRef
from repro.querygraph.tree_labels import TreeLabel

ATTRS = ["name", "works", "instruments", "title", "master"]


@st.composite
def binding_paths(draw):
    """A dict of variable -> dotted binding path (tree-label input)."""
    count = draw(st.integers(min_value=1, max_value=4))
    bindings = {}
    for index in range(count):
        depth = draw(st.integers(min_value=1, max_value=3))
        components = []
        for position in range(depth):
            attr = draw(st.sampled_from(ATTRS))
            if draw(st.booleans()) and position > 0:
                attr += "#2"
            components.append(attr)
            if draw(st.booleans()):
                components.append("*")
        if components[-1] == "*":
            components.pop()
        bindings[f"v{index}"] = ".".join(components)
    return bindings


@settings(max_examples=100, deadline=None)
@given(binding_paths())
def test_property_tree_label_bindings_roundtrip(bindings):
    """Every requested variable appears exactly once, at the requested
    dotted path (modulo '*' and '#n' markers)."""
    try:
        tree = TreeLabel.from_bindings(bindings)
    except QueryModelError:
        # Two variables at the exact same node legitimately conflict
        # (separating them needs a '#n' branch marker).
        assume(False)
    found = {b.variable: b for b in tree.bindings()}
    assert set(found) == set(bindings)
    for variable, dotted in bindings.items():
        expected = tuple(
            component.split("#")[0]
            for component in dotted.split(".")
            if component != "*"
        )
        assert found[variable].path == expected


@settings(max_examples=100, deadline=None)
@given(binding_paths())
def test_property_tree_label_equality_stable(bindings):
    try:
        first = TreeLabel.from_bindings(bindings)
    except QueryModelError:
        assume(False)
    assert first == TreeLabel.from_bindings(bindings)
    assert hash(first) == hash(TreeLabel.from_bindings(bindings))


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.sampled_from(ATTRS), min_size=0, max_size=4),
    st.lists(st.sampled_from(ATTRS), min_size=0, max_size=3),
)
def test_property_path_substitution_concatenates(prefix, suffix):
    """Substituting v -> x.prefix into v.suffix yields x.prefix.suffix."""
    original = PathRef("v", tuple(suffix))
    replacement = PathRef("x", tuple(prefix))
    result = original.substitute({"v": replacement})
    assert result == PathRef("x", tuple(prefix) + tuple(suffix))


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=0, max_value=4),
    st.integers(min_value=2, max_value=10),
    st.integers(min_value=0, max_value=1000),
)
def test_property_clustering_places_every_record(
    owners, children_per_owner, records_per_page, seed
):
    """After clustering, every record has exactly one page and all
    records are reachable; counts are preserved."""
    import random

    rng = random.Random(seed)
    store = ObjectStore(BufferPool(8), records_per_page=records_per_page)
    store.create_extent("Owner")
    store.create_extent("Child")
    child_oids = []
    for _ in range(owners * children_per_owner):
        child_oids.append(store.insert("Child", {"v": rng.random()}))
    cursor = 0
    for _ in range(owners):
        refs = tuple(child_oids[cursor:cursor + children_per_owner])
        cursor += children_per_owner
        store.insert("Owner", {"kids": refs})
    before_total = store.record_count()
    apply_clustering(store, ClusterTree("Owner", {"kids": None}))
    assert store.record_count() == before_total
    for name in ("Owner", "Child"):
        for record in store.extent(name).records:
            assert record.page_id is not None
            assert store.fetch(record.oid) is record
    # Scans still see every record exactly once.
    assert len(list(store.scan("Owner"))) == owners
    assert len(list(store.scan("Child"))) == owners * children_per_owner


@settings(max_examples=100, deadline=None)
@given(
    st.dictionaries(
        st.sampled_from(["a", "b", "c", "d"]),
        st.one_of(st.integers(), st.text(max_size=5), st.none()),
        min_size=1,
        max_size=4,
    )
)
def test_property_canonical_row_order_independent(row):
    reversed_row = dict(reversed(list(row.items())))
    assert canonical_row(row) == canonical_row(reversed_row)
