"""Tests for retrieval by reverse path index ([MS86] extension)."""

import pytest

from repro.core import cost_controlled_optimizer
from repro.core.generate import SPJGenerator
from repro.core.translate import Translator
from repro.cost import CostParameters, DetailedCostModel
from repro.engine import Engine, ReferenceEvaluator
from repro.plans import IJ, PIJ, EntityLeaf, Proj, Sel, find_all
from repro.querygraph.builder import (
    and_,
    arc,
    const,
    eq,
    ge,
    out,
    path,
    query,
    rule,
    spj,
    var,
)
from repro.workloads import MusicConfig, generate_music_database


@pytest.fixture()
def rev_db():
    db = generate_music_database(
        MusicConfig(
            lineages=8,
            generations=6,
            works_per_composer=4,
            selective_fraction=0.1,
            buffer_pages=2,
            seed=91,
        )
    )
    db.build_paper_indexes()  # works.instruments with terminal "name"
    return db


def whole_path_plan():
    return Proj(
        Sel(
            EntityLeaf("Composer", "x"),
            eq(
                path("x", "works", "instruments", "name"),
                const("harpsichord"),
            ),
        ),
        out(n=path("x", "name")),
    )


def navigated_plan():
    return Proj(
        Sel(
            PIJ(
                EntityLeaf("Composer", "x"),
                [EntityLeaf("Composition", "w"), EntityLeaf("Instrument", "i")],
                ["works", "instruments"],
                var("x"),
                ["w", "i"],
            ),
            eq(path("i", "name"), const("harpsichord")),
        ),
        out(n=path("x", "name")),
    )


class TestEngineReverseAccess:
    def test_same_answer_set_as_navigation(self, rev_db):
        engine = Engine(rev_db.physical)
        reverse = engine.execute(whole_path_plan())
        navigated = engine.execute(navigated_plan())
        assert reverse.answer_set() == navigated.answer_set()

    def test_uses_index_not_navigation(self, rev_db):
        engine = Engine(rev_db.physical)
        rev_db.store.buffer.clear()
        result = engine.execute(whole_path_plan())
        assert result.metrics.index_lookups == 1
        # No Composition/Instrument pages are read: only qualifying
        # Composer records are fetched.
        composer_pages = rev_db.physical.statistics.pages("Composer")
        assert result.metrics.buffer.physical_reads <= composer_pages

    def test_cheaper_than_navigation_cold(self, rev_db):
        engine = Engine(rev_db.physical)
        rev_db.store.buffer.clear()
        reverse = engine.execute(whole_path_plan())
        rev_db.store.buffer.clear()
        navigated = engine.execute(navigated_plan())
        assert (
            reverse.metrics.measured_cost()
            < navigated.metrics.measured_cost()
        )

    def test_no_matching_index_falls_back_to_scan(self, rev_db):
        engine = Engine(rev_db.physical)
        plan = Proj(
            Sel(
                EntityLeaf("Composer", "x"),
                eq(path("x", "works", "title"), const("work_00001")),
            ),
            out(n=path("x", "name")),
        )
        result = engine.execute(plan)
        assert result.metrics.index_lookups == 0
        assert len(result) == 1

    def test_one_binding_per_head(self, rev_db):
        """Reverse access dedups heads: one row per composer even when
        several of their works use the instrument."""
        engine = Engine(rev_db.physical)
        result = engine.execute(whole_path_plan())
        names = [row["n"] for row in result.rows]
        assert len(names) == len(set(names))


class TestModelReverseAccess:
    def test_model_prices_reverse_below_scan_navigation(self, rev_db):
        model = DetailedCostModel(
            rev_db.physical, CostParameters(buffer_pages=2)
        )
        assert model.cost(whole_path_plan()) < model.cost(navigated_plan())

    def test_model_tracks_terminal_selectivity(self):
        costs = []
        for fraction in (0.05, 0.8):
            db = generate_music_database(
                MusicConfig(
                    lineages=8,
                    generations=6,
                    works_per_composer=4,
                    selective_fraction=fraction,
                    seed=92,
                )
            )
            db.build_paper_indexes()
            model = DetailedCostModel(db.physical, CostParameters(buffer_pages=2))
            costs.append(model.cost(whole_path_plan()))
        assert costs[1] > costs[0]


class TestGeneratorReverseVariant:
    def make_node(self):
        return spj(
            [arc("Composer", x=".")],
            where=and_(
                eq(
                    path("x", "works", "instruments", "name"),
                    const("harpsichord"),
                ),
                ge(path("x", "birthyear"), const(0)),
            ),
            select=out(n=path("x", "name")),
        )

    def test_variant_generated_and_wins_cold(self, rev_db):
        translator = Translator(rev_db.physical)
        model = DetailedCostModel(rev_db.physical, CostParameters(buffer_pages=2))
        generator = SPJGenerator(rev_db.physical, model)
        translated = translator.translate_node(self.make_node())
        sources = [EntityLeaf(a.entity, a.root_var) for a in translated.arcs]
        generated = generator.generate(translated, sources)
        # The winner should be the navigation-free variant: no IJ/PIJ.
        assert not find_all(generated.plan, IJ)
        assert not find_all(generated.plan, PIJ)
        sels = find_all(generated.plan, Sel)
        assert any(
            "works.instruments.name" in repr(s.predicate) for s in sels
        )

    def test_variant_blocked_when_chain_needed_elsewhere(self, rev_db):
        node = spj(
            [arc("Composer", x=".", t="works.*.title")],
            where=eq(
                path("x", "works", "instruments", "name"),
                const("harpsichord"),
            ),
            select=out(n=path("x", "name"), t=var("t")),
        )
        translator = Translator(rev_db.physical)
        model = DetailedCostModel(rev_db.physical)
        generator = SPJGenerator(rev_db.physical, model)
        translated = translator.translate_node(node)
        sources = [EntityLeaf(a.entity, a.root_var) for a in translated.arcs]
        generated = generator.generate(translated, sources)
        # The title projection needs the works hop: navigation stays.
        assert find_all(generated.plan, IJ) or find_all(generated.plan, PIJ)

    def test_end_to_end_matches_reference(self, rev_db):
        graph = query(rule("Answer", self.make_node()))
        result = cost_controlled_optimizer(
            rev_db.physical,
            DetailedCostModel(rev_db.physical, CostParameters(buffer_pages=2)),
        ).optimize(graph)
        got = Engine(rev_db.physical).execute(result.plan).answer_set()
        want = ReferenceEvaluator(rev_db.physical).answer_set(graph)
        assert got == want
