"""Tests for pages, the buffer pool and the object store."""

import pytest

from repro.errors import OidError, StorageError, UnknownEntityError
from repro.physical.buffer import BufferPool
from repro.physical.pages import Page, PagedSegment, PageId
from repro.physical.storage import ObjectStore, Oid


class TestPages:
    def test_page_fills_to_capacity(self):
        page = Page(PageId("seg", 0), 2)
        page.add(1)
        page.add(2)
        assert page.is_full()
        with pytest.raises(ValueError):
            page.add(3)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            Page(PageId("seg", 0), 0)

    def test_segment_opens_pages_on_demand(self):
        segment = PagedSegment("seg", records_per_page=3)
        ids = [segment.append_record(i) for i in range(7)]
        assert segment.page_count() == 3
        assert ids[0] == ids[2] == PageId("seg", 0)
        assert ids[3].number == 1
        assert segment.record_count() == 7

    def test_open_new_page_forces_boundary(self):
        segment = PagedSegment("seg", records_per_page=10)
        segment.append_record(1)
        segment.open_new_page()
        page_id = segment.append_record(2)
        assert page_id.number == 1

    def test_open_new_page_noop_when_empty(self):
        segment = PagedSegment("seg", records_per_page=10)
        segment.open_new_page()
        assert segment.page_count() == 0


class TestBufferPool:
    def test_miss_then_hit(self):
        pool = BufferPool(capacity=4)
        page = PageId("seg", 0)
        assert pool.touch(page) is False
        assert pool.touch(page) is True
        assert pool.stats.logical_reads == 2
        assert pool.stats.physical_reads == 1
        assert pool.stats.hits == 1

    def test_lru_eviction(self):
        pool = BufferPool(capacity=2)
        a, b, c = (PageId("seg", i) for i in range(3))
        pool.touch(a)
        pool.touch(b)
        pool.touch(c)  # evicts a
        assert pool.stats.evictions == 1
        assert pool.touch(a) is False  # a was evicted
        assert pool.touch(c) is True  # c still resident

    def test_touch_refreshes_recency(self):
        pool = BufferPool(capacity=2)
        a, b, c = (PageId("seg", i) for i in range(3))
        pool.touch(a)
        pool.touch(b)
        pool.touch(a)  # a is now most recent
        pool.touch(c)  # evicts b, not a
        assert pool.touch(a) is True

    def test_zero_capacity_never_caches(self):
        pool = BufferPool(capacity=0)
        page = PageId("seg", 0)
        pool.touch(page)
        assert pool.touch(page) is False
        assert pool.stats.hit_ratio == 0.0

    def test_stats_delta(self):
        pool = BufferPool(capacity=4)
        pool.touch(PageId("seg", 0))
        before = pool.stats.snapshot()
        pool.touch(PageId("seg", 1))
        delta = pool.stats.delta_since(before)
        assert delta.logical_reads == 1
        assert delta.physical_reads == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            BufferPool(capacity=-1)


class TestObjectStore:
    def make_store(self):
        store = ObjectStore(BufferPool(16), records_per_page=2)
        store.create_extent("E")
        return store

    def test_insert_and_fetch(self):
        store = self.make_store()
        oid = store.insert("E", {"x": 1})
        record = store.fetch(oid)
        assert record.values["x"] == 1
        assert record.entity == "E"

    def test_fetch_charges_io_peek_does_not(self):
        store = self.make_store()
        oid = store.insert("E", {"x": 1})
        before = store.buffer.stats.logical_reads
        store.peek(oid)
        assert store.buffer.stats.logical_reads == before
        store.fetch(oid)
        assert store.buffer.stats.logical_reads == before + 1

    def test_oids_are_distinct_and_typed(self):
        store = self.make_store()
        first = store.insert("E", {})
        second = store.insert("E", {})
        assert first != second
        assert isinstance(first, Oid)

    def test_dangling_oid_raises(self):
        store = self.make_store()
        with pytest.raises(OidError):
            store.fetch(Oid(999))

    def test_scan_touches_each_page_once(self):
        store = self.make_store()
        for i in range(6):  # 3 pages at 2 records/page
            store.insert("E", {"i": i})
        before = store.buffer.stats.logical_reads
        records = list(store.scan("E"))
        assert len(records) == 6
        assert store.buffer.stats.logical_reads - before == 3

    def test_unknown_extent_raises(self):
        store = self.make_store()
        with pytest.raises(UnknownEntityError):
            store.extent("Nope")
        with pytest.raises(UnknownEntityError):
            list(store.scan("Nope"))

    def test_duplicate_extent_rejected(self):
        store = self.make_store()
        with pytest.raises(StorageError):
            store.create_extent("E")

    def test_drop_extent_removes_records(self):
        store = self.make_store()
        oid = store.insert("E", {})
        store.drop_extent("E")
        assert not store.has_extent("E")
        with pytest.raises(OidError):
            store.fetch(oid)

    def test_entity_of(self):
        store = self.make_store()
        oid = store.insert("E", {})
        assert store.entity_of(oid) == "E"

    def test_page_count_over_whole_store(self):
        store = self.make_store()
        store.create_extent("F")
        for _ in range(3):
            store.insert("E", {})
        store.insert("F", {})
        assert store.page_count() == 3  # two pages of E + one of F
