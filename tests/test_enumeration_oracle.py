"""Optimality oracle for the memoized enumerator.

Property-based: hypothesis generates small query graphs (flat and
recursive, over the standard differential-harness databases), the
optimizer produces a seed plan, and the memoized branch-and-bound
enumerator must find exactly the minimal cost that the brute-force
closure (:func:`repro.core.baselines.brute_force_enumerate` — no memo,
no pruning, structural dedup only) finds over the same move graph.
``derandomize=True`` keeps the generated plan spaces fixed, so CI
checks the same ≥200 spaces every run.

Set ``REPRO_ENUM_STATS`` to a path to append one JSON line of memo
statistics per enumerated plan space (CI uploads this as an artifact).
"""

import json
import os

import pytest
from hypothesis import HealthCheck, assume, given, settings

from tests.diff_harness import (
    build_music_db,
    build_parts_db,
    flat_queries,
    parts_queries,
    recursive_queries,
)
from tests.test_core_transform import make_fix, selection_pipeline

from repro.core.baselines import brute_force_enumerate
from repro.core.enumerate import MemoizedEnumeration
from repro.core.optimizer import Optimizer, OptimizerConfig
from repro.cost import CostParameters, DetailedCostModel
from repro.errors import OptimizationError

# 100 examples per @given function x 2 query families = 200 plan
# spaces checked (REPRO_ENUM_EXAMPLES scales this up in CI).
EXAMPLES = int(os.environ.get("REPRO_ENUM_EXAMPLES", "100"))

ORACLE_SETTINGS = dict(
    max_examples=EXAMPLES,
    deadline=None,
    derandomize=True,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
)

#: Feasibility bound for the brute-force closure; spaces beyond it are
#: skipped (the oracle must never silently truncate).
ORACLE_MAX_PLANS = 4_000

_STATS_PATH = os.environ.get("REPRO_ENUM_STATS")


@pytest.fixture(scope="module")
def music_db():
    return build_music_db()


@pytest.fixture(scope="module")
def parts_db():
    return build_parts_db()


def _seed_plan(db, graph):
    """The generatePT output (before transformPT reoptimization) — the
    root of the transformation space both enumerators explore."""
    optimizer = Optimizer(
        db.physical,
        config=OptimizerConfig(reoptimize=False, validate_plans=False),
    )
    captured = {}
    inner = optimizer._transform_pt

    def capture(plan):
        captured["plan"] = plan
        return inner(plan)

    optimizer._transform_pt = capture
    try:
        optimizer.optimize(graph)
    except OptimizationError:
        # Disconnected join graphs are legitimately rejected.
        return None
    return captured["plan"]


def _record_stats(family, stats, brute_plans):
    if not _STATS_PATH:
        return
    with open(_STATS_PATH, "a") as handle:
        payload = dict(stats.to_dict(), family=family, brute_plans=brute_plans)
        handle.write(json.dumps(payload, sort_keys=True) + "\n")


def _assert_enum_matches_oracle(db, graph, family, model=None):
    plan = _seed_plan(db, graph)
    if plan is None:
        assume(False)
    model = model or DetailedCostModel(db.physical)
    try:
        _best, oracle_cost, brute_plans = brute_force_enumerate(
            plan, model.cost, db.physical, max_plans=ORACLE_MAX_PLANS
        )
    except RuntimeError:
        assume(False)  # space too large for the oracle; not a failure
    strategy = MemoizedEnumeration()  # shipped defaults, pruning on
    result = strategy.search(plan, model.cost, db.physical)
    stats = strategy.last_stats
    _record_stats(family, stats, brute_plans)
    assert result.cost == pytest.approx(oracle_cost), (
        f"enum found {result.cost}, brute force found {oracle_cost} "
        f"over {brute_plans} plans (memo stats: {stats})"
    )
    # Canonical classes can only merge structural plans, never invent
    # new ones.
    assert stats.subplans_memoized <= brute_plans
    assert stats.candidates_costed <= brute_plans


@settings(**ORACLE_SETTINGS)
@given(graph=flat_queries())
def test_enum_matches_oracle_flat(music_db, graph):
    _assert_enum_matches_oracle(music_db, graph, "flat")


@settings(**ORACLE_SETTINGS)
@given(graph=recursive_queries())
def test_enum_matches_oracle_recursive(music_db, graph):
    _assert_enum_matches_oracle(music_db, graph, "recursive")


@settings(**ORACLE_SETTINGS)
@given(graph=parts_queries())
def test_enum_matches_oracle_parts(parts_db, graph):
    _assert_enum_matches_oracle(parts_db, graph, "parts")


@settings(**ORACLE_SETTINGS)
@given(graph=recursive_queries())
def test_enum_matches_oracle_distributed_costs(music_db, graph):
    """The oracle agreement holds under the parallel and distributed
    Fix cost variants too — the enumerator optimizes whatever cost
    function it is handed."""
    params = CostParameters()
    params.parallelism = 4
    params.shards = 4
    model = DetailedCostModel(music_db.physical, params)
    _assert_enum_matches_oracle(music_db, graph, "distributed", model)


def test_memo_hits_on_shared_subplans(music_db):
    """On the paper's Figure 3/4 pipeline the move DAG has commuting
    moves, so the same plan is reached along multiple orders: the memo
    table must actually engage."""
    plan = selection_pipeline(make_fix())
    model = DetailedCostModel(music_db.physical)
    strategy = MemoizedEnumeration()
    strategy.search(plan, model.cost, music_db.physical)
    stats = strategy.last_stats
    assert stats.memo_hits > 0
    assert stats.subplans_memoized > 1
    assert stats.candidates_costed == stats.subplans_memoized


def test_pruning_never_loses_the_optimum(music_db):
    """Aggressive pruning (factor 1.0: expand nothing costlier than the
    incumbent) may cost fewer plans but must still agree with the
    unpruned enumeration on this pipeline."""
    plan = selection_pipeline(make_fix())
    model = DetailedCostModel(music_db.physical)
    unpruned = MemoizedEnumeration(prune_factor=None)
    reference = unpruned.search(plan, model.cost, music_db.physical)
    pruned = MemoizedEnumeration(prune_factor=1.0)
    result = pruned.search(plan, model.cost, music_db.physical)
    assert result.cost == pytest.approx(reference.cost)
    assert (
        pruned.last_stats.candidates_costed
        <= unpruned.last_stats.candidates_costed
    )


def test_prune_factor_validation():
    with pytest.raises(ValueError):
        MemoizedEnumeration(prune_factor=0.5)
