"""Always-on observability must have a memory and disk ceiling.

Hammer tests: 10k fixpoint rounds against every per-query buffer
(profile iteration ring, tracer span cap, progress round ring), a
size-bounded telemetry JSONL under sustained append load (the file
never exceeds its cap, the newest window survives compaction, and the
governor's weight/committed fields round-trip through persistence),
and the shared structured-log formatters.
"""

import io
import json
import logging
import os

import pytest

from repro.obs.history import Observation, QueryTelemetryStore
from repro.obs.log import configure_logging, get_logger
from repro.obs.profile import FIX_ITERATION_RING, FixIterationProfile, NodeProfile
from repro.obs.progress import ROUND_RING_SIZE, ProgressTracker, QueryProgress
from repro.obs.trace import Tracer

ROUNDS = 10_000


class TestProfileRing:
    def test_fix_iteration_ring_is_bounded(self):
        profile = NodeProfile(node_id="0", label="Fix(Inf)", kind="Fix")
        for index in range(ROUNDS):
            profile.record_fix_iteration(
                FixIterationProfile(
                    iteration=index, new_tuples=1, seconds=0.0001
                )
            )
        assert len(profile.fix_iterations) == FIX_ITERATION_RING
        assert profile.fix_iterations_dropped == ROUNDS - FIX_ITERATION_RING
        # The ring keeps the newest rounds — the ones that explain a
        # currently-slow query.
        assert profile.fix_iterations[-1].iteration == ROUNDS - 1
        payload = profile.to_dict()
        assert payload["fix_iterations_dropped"] == ROUNDS - FIX_ITERATION_RING
        assert len(payload["fix_iterations"]) == FIX_ITERATION_RING


class TestTracerCap:
    def test_span_cap(self):
        tracer = Tracer(trace_id="t-1", max_spans=64)
        for index in range(ROUNDS):
            with tracer.span("round", index=index):
                pass
        assert tracer.span_count() == 64
        assert tracer.dropped_spans == ROUNDS - 64
        assert tracer.to_dict()["dropped_spans"] == ROUNDS - 64

    def test_event_cap(self):
        tracer = Tracer(trace_id="t-2", max_spans=64)
        with tracer.span("execute"):
            for index in range(ROUNDS):
                tracer.event("delta", round=index)
        assert tracer.dropped_events == ROUNDS - 64
        kept = sum(len(s.events) for s in tracer.spans)
        assert kept + tracer.dropped_events == ROUNDS


class TestProgressRing:
    def test_round_ring_is_bounded(self):
        progress = QueryProgress("req-1", query="fix hammer")
        for index in range(ROUNDS):
            progress.round_update(
                fix="Influencer", round_index=index, delta=3, seconds=0.0001
            )
        snap = progress.snapshot()
        assert len(snap["recent_rounds"]) == ROUND_RING_SIZE
        assert snap["recent_rounds"][-1]["round"] == ROUNDS - 1
        # Totals still reflect every round, not just the ring.
        assert snap["rounds"] == ROUNDS
        assert snap["total_delta"] == 3 * ROUNDS

    def test_tracker_recent_is_bounded(self):
        tracker = ProgressTracker()
        for index in range(100):
            tracker.finish(tracker.begin(f"req-{index}"))
        snap = tracker.snapshot()
        assert snap["active"] == []
        assert len(snap["recent"]) == 8


def observation(index: int) -> Observation:
    return Observation(
        at=float(index),
        request_id=f"req-{index}",
        estimated_cost=100.0,
        measured_cost=120.0,
        execute_seconds=0.01,
        rows=5,
        events={"page_reads": 10.0, "predicate_evals": 50.0},
        weight=8.0 if index % 2 else 1.0,
        committed=index % 3 != 0,
    )


class TestTelemetryRotation:
    MAX_BYTES = 16_384

    def hammer(self, path: str, appends: int = 400) -> QueryTelemetryStore:
        store = QueryTelemetryStore(
            persist_path=path, max_bytes=self.MAX_BYTES
        )
        for index in range(appends):
            fingerprint = f"fp{index:04d}"
            store.register_plan(
                canonical=f"q{index % 5}",
                fingerprint=fingerprint,
                plan_cost=100.0,
            )
            store.record(fingerprint, observation(index))
            # The cap holds after *every* append, not only at the end.
            assert os.path.getsize(path) <= self.MAX_BYTES
        return store

    def test_file_never_exceeds_cap(self, tmp_path):
        path = str(tmp_path / "telemetry.jsonl")
        store = self.hammer(path)
        assert store.compactions > 0
        store.close()

    def test_newest_window_survives_reload(self, tmp_path):
        path = str(tmp_path / "telemetry.jsonl")
        store = self.hammer(path)
        live = list(store._plans)
        assert live, "compaction dropped everything"
        store.close()

        reloaded = QueryTelemetryStore(
            persist_path=path, max_bytes=self.MAX_BYTES
        )
        # Every plan the compacted file kept reloads, newest included.
        assert live[-1] in reloaded._plans
        newest = reloaded._plans[live[-1]]
        assert newest.observations, "newest plan lost its observations"
        reloaded.close()

    def test_weight_and_committed_round_trip(self, tmp_path):
        path = str(tmp_path / "telemetry.jsonl")
        store = QueryTelemetryStore(persist_path=path)
        store.register_plan(canonical="q", fingerprint="fp", plan_cost=1.0)
        store.record("fp", observation(1))  # weight 8, committed
        store.record("fp", observation(3))  # weight 8, uncommitted
        store.close()

        reloaded = QueryTelemetryStore(persist_path=path)
        committed, uncommitted = reloaded._plans["fp"].observations
        assert committed.weight == 8.0 and committed.committed
        assert uncommitted.weight == 8.0 and not uncommitted.committed
        samples = reloaded.calibration_samples()
        assert len(samples) == 1 and samples[0]["weight"] == 8.0
        reloaded.close()

    def test_uncommitted_excluded_from_calibration(self):
        store = QueryTelemetryStore()
        store.register_plan(canonical="q", fingerprint="fp", plan_cost=1.0)
        for index in range(12):
            store.record("fp", observation(index))
        committed = sum(1 for i in range(12) if i % 3 != 0)
        assert len(store.calibration_samples()) == committed

    def test_tiny_cap_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            QueryTelemetryStore(
                persist_path=str(tmp_path / "t.jsonl"), max_bytes=16
            )


class TestStructuredLogging:
    @pytest.fixture(autouse=True)
    def restore_logging(self):
        yield
        configure_logging("text")

    def test_json_lines_carry_structured_fields(self):
        stream = io.StringIO()
        configure_logging("json", stream=stream)
        get_logger("service").warning(
            "anomaly detected",
            extra={"request_id": "req-9", "query_class": "ab12cd34"},
        )
        payload = json.loads(stream.getvalue().strip())
        assert payload["level"] == "warning"
        assert payload["logger"] == "repro.service"
        assert payload["message"] == "anomaly detected"
        assert payload["request_id"] == "req-9"
        assert payload["query_class"] == "ab12cd34"

    def test_text_lines_append_fields(self):
        stream = io.StringIO()
        configure_logging("text", stream=stream)
        get_logger("dist").error(
            "shard round failed: boom", extra={"shard": 3, "round": 7}
        )
        line = stream.getvalue().strip()
        assert "repro.dist" in line and "shard round failed: boom" in line
        assert "shard=3" in line and "round=7" in line

    def test_configure_is_idempotent(self):
        stream = io.StringIO()
        configure_logging("json", stream=stream)
        configure_logging("json", stream=stream)
        get_logger("engine").info("once")
        lines = [l for l in stream.getvalue().splitlines() if l]
        assert len(lines) == 1

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            configure_logging("xml")
