"""Tests for union-produced answers and the Play relation."""

import pytest

from repro.core import cost_controlled_optimizer
from repro.engine import Engine, ReferenceEvaluator
from repro.lang import compile_text
from repro.plans import UnionOp, find_all
from repro.querygraph.builder import arc, const, eq, out, path, query, rule, spj
from repro.workloads import MusicConfig, generate_music_database


class TestUnionAnswers:
    def union_answer_graph(self):
        first = rule(
            "Answer",
            spj(
                [arc("Composer", x=".")],
                where=eq(path("x", "name"), const("Bach")),
                select=out(n=path("x", "name")),
            ),
        )
        second = rule(
            "Answer",
            spj(
                [arc("Instrument", y=".")],
                where=eq(path("y", "name"), const("flute")),
                select=out(n=path("y", "name")),
            ),
        )
        return query(first, second)

    def test_union_answer_optimizes(self, indexed_db):
        graph = self.union_answer_graph()
        result = cost_controlled_optimizer(indexed_db.physical).optimize(graph)
        assert find_all(result.plan, UnionOp)
        got = Engine(indexed_db.physical).execute(result.plan).answer_set()
        want = ReferenceEvaluator(indexed_db.physical).answer_set(graph)
        assert got == want
        names = {
            row["n"]
            for row in Engine(indexed_db.physical).execute(result.plan).rows
        }
        assert names == {"Bach", "flute"}

    def test_union_answer_from_text(self, indexed_db):
        graph = compile_text(
            """
            select [n: x.name] from x in Composer where x.name = "Bach"
            union
            select [n: y.name] from y in Instrument where y.name = "flute";
            """,
            indexed_db.catalog,
        )
        result = cost_controlled_optimizer(indexed_db.physical).optimize(graph)
        got = Engine(indexed_db.physical).execute(result.plan).answer_set()
        want = ReferenceEvaluator(indexed_db.physical).answer_set(graph)
        assert got == want


class TestPlayRelation:
    def test_play_populated(self, indexed_db):
        stats = indexed_db.physical.statistics
        count = stats.instances("Play")
        assert count >= indexed_db.config.composer_count

    def test_play_references_valid(self, indexed_db):
        store = indexed_db.store
        for record in store.extent("Play").records:
            who = store.peek(record.values["who"])
            instrument = store.peek(record.values["instrument"])
            assert who.entity == "Composer"
            assert instrument.entity == "Instrument"

    def test_query_over_relation(self, indexed_db):
        graph = compile_text(
            """
            select [who: p.who.name, what: p.instrument.name]
            from p in Play
            where p.who.name = "Bach";
            """,
            indexed_db.catalog,
        )
        result = cost_controlled_optimizer(indexed_db.physical).optimize(graph)
        got = Engine(indexed_db.physical).execute(result.plan)
        want = ReferenceEvaluator(indexed_db.physical).answer_set(graph)
        assert got.answer_set() == want
        assert all(row["who"] == "Bach" for row in got.rows)
        assert 1 <= len(got.rows) <= 2

    def test_join_relation_with_class(self, indexed_db):
        """Play ⋈ Composition: composers playing an instrument used in
        their own works."""
        graph = compile_text(
            """
            select [name: p.who.name, inst: p.instrument.name]
            from p in Play, w in Composition
            where w.author = p.who and w.instruments = p.instrument;
            """,
            indexed_db.catalog,
        )
        result = cost_controlled_optimizer(indexed_db.physical).optimize(graph)
        got = Engine(indexed_db.physical).execute(result.plan).answer_set()
        want = ReferenceEvaluator(indexed_db.physical).answer_set(graph)
        assert got == want
