"""Tests for the workload generators and canned queries."""

import pytest

from repro.core import cost_controlled_optimizer, deductive_optimizer
from repro.engine import Engine, ReferenceEvaluator
from repro.querygraph.views import analyze_recursion
from repro.workloads import (
    MusicConfig,
    PartsConfig,
    components_of_query,
    fig2_query,
    fig3_query,
    generate_music_database,
    generate_parts_database,
    heavy_components_query,
    join_push_query,
)
from repro.workloads.parts import CONTAINS


class TestMusicGenerator:
    def test_deterministic_per_seed(self):
        config = MusicConfig(lineages=2, generations=4, seed=5)
        first = generate_music_database(config)
        second = generate_music_database(config)
        assert first.store.record_count() == second.store.record_count()
        first_names = [
            r.values["name"] for r in first.store.extent("Composer").records
        ]
        second_names = [
            r.values["name"] for r in second.store.extent("Composer").records
        ]
        assert first_names == second_names

    def test_counts_match_config(self, small_db):
        config = small_db.config
        assert (
            len(small_db.store.extent("Composer")) == config.composer_count
        )
        assert len(small_db.store.extent("Composition")) == (
            config.composer_count * config.works_per_composer
        )
        assert len(small_db.store.extent("Instrument")) == config.instruments

    def test_bach_exists_and_has_master(self, small_db):
        bach = small_db.store.peek(small_db.famous_oid)
        assert bach.values["name"] == "Bach"
        assert bach.values["master"] is not None

    def test_master_chains_acyclic_and_bounded(self, small_db):
        store = small_db.store
        for record in store.extent("Composer").records:
            seen = set()
            current = record
            steps = 0
            while current.values.get("master") is not None:
                assert current.oid not in seen
                seen.add(current.oid)
                current = store.peek(current.values["master"])
                steps += 1
            assert steps < small_db.config.generations

    def test_selective_fraction_respected(self):
        none_selective = generate_music_database(
            MusicConfig(lineages=2, generations=3, selective_fraction=0.0, seed=1)
        )
        store = none_selective.store
        harpsichord = [
            r
            for r in store.extent("Instrument").records
            if r.values["name"] == "harpsichord"
        ][0]
        # Only Bach's guaranteed first work may use the selective
        # instrument at selectivity 0 (the Figure 2 anchor).
        bach_works = set(
            store.peek(none_selective.famous_oid).values["works"]
        )
        for work in store.extent("Composition").records:
            if work.oid in bach_works:
                continue
            assert harpsichord.oid not in work.values["instruments"]

    def test_works_backreference_consistent(self, small_db):
        store = small_db.store
        for composer in store.extent("Composer").records:
            for work_oid in composer.values["works"]:
                work = store.peek(work_oid)
                assert work.values["author"] == composer.oid

    def test_paper_indexes_idempotent(self, small_db):
        small_db.build_paper_indexes()
        small_db.build_paper_indexes()
        assert small_db.physical.find_path_index(("works", "instruments"))


class TestPartsGenerator:
    def test_dag_with_sharing(self):
        db = generate_parts_database(
            PartsConfig(assemblies=2, depth=3, fanout=2, sharing=0.5, seed=9)
        )
        store = db.store
        referenced = {}
        for part in store.extent("Part").records:
            for child in part.values["subparts"]:
                referenced[child] = referenced.get(child, 0) + 1
        assert any(count > 1 for count in referenced.values())

    def test_no_sharing_gives_tree(self):
        config = PartsConfig(assemblies=1, depth=3, fanout=2, sharing=0.0, seed=9)
        db = generate_parts_database(config)
        # A full binary tree of depth 3: 1 + 2 + 4 + 8 = 15 parts.
        assert db.physical.statistics.instances("Part") == 15

    def test_roots_named(self):
        db = generate_parts_database(PartsConfig(assemblies=2, depth=2, seed=9))
        names = {
            db.store.peek(oid).values["pname"] for oid in db.root_oids
        }
        assert names == {"assembly_root_0", "assembly_root_1"}

    def test_contains_provenance(self):
        graph = components_of_query()
        info = analyze_recursion(graph, CONTAINS)
        kinds = {name: p.kind for name, p in info.provenance.items()}
        assert kinds == {
            "assembly": "invariant",
            "component": "rebound",
            "level": "computed",
        }

    def test_components_query_correct(self):
        db = generate_parts_database(
            PartsConfig(assemblies=2, depth=3, fanout=2, sharing=0.0, seed=9)
        )
        reference = ReferenceEvaluator(db.physical)
        rows = reference.evaluate(components_of_query())
        # Tree of depth 3, fanout 2: 2 + 4 + 8 = 14 contained parts.
        assert len(rows) == 14
        levels = {row["level"] for row in rows}
        assert levels == {1, 2, 3}

    def test_optimized_matches_reference_on_dag(self):
        db = generate_parts_database(
            PartsConfig(assemblies=2, depth=3, fanout=2, sharing=0.4, seed=11)
        )
        for graph in (components_of_query(), heavy_components_query()):
            want = ReferenceEvaluator(db.physical).answer_set(graph)
            result = cost_controlled_optimizer(db.physical).optimize(graph)
            got = Engine(db.physical).execute(result.plan).answer_set()
            assert got == want

    def test_deductive_policy_on_parts(self):
        db = generate_parts_database(
            PartsConfig(assemblies=2, depth=3, fanout=2, seed=13)
        )
        graph = components_of_query()
        want = ReferenceEvaluator(db.physical).answer_set(graph)
        result = deductive_optimizer(db.physical).optimize(graph)
        assert result.chose_push()
        got = Engine(db.physical).execute(result.plan).answer_set()
        assert got == want
