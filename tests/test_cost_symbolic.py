"""Tests for the symbolic cost algebra, including hypothesis checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost.symbolic import Sym, as_sym, sym


class TestBasics:
    def test_var_and_const(self):
        assert sym("pr").variables() == ["pr"]
        assert Sym.const(3).is_constant()

    def test_addition_collects_terms(self):
        expr = sym("a") + sym("a") + 2
        assert expr == Sym({("a",): 2.0}, 2.0)

    def test_multiplication_distributes(self):
        expr = (sym("a") + 1) * (sym("b") + 2)
        expected = (
            sym("a") * sym("b") + 2 * sym("a") + sym("b") + 2
        )
        assert expr == expected

    def test_zero_terms_dropped(self):
        expr = sym("a") - sym("a")
        assert expr == 0
        assert expr.is_constant()

    def test_subtraction_and_rsub(self):
        assert (3 - sym("a")).evaluate({"a": 1}) == 2
        assert (sym("a") - 3).evaluate({"a": 5}) == 2

    def test_product_key_sorted(self):
        assert sym("b") * sym("a") == sym("a") * sym("b")

    def test_evaluate(self):
        expr = sym("pr") * sym("n") + 3
        assert expr.evaluate({"pr": 2, "n": 5}) == 13

    def test_evaluate_missing_symbol_raises(self):
        with pytest.raises(KeyError):
            sym("x").evaluate({})

    def test_as_sym(self):
        assert as_sym(2) == Sym.const(2)
        assert as_sym(sym("a")) == sym("a")
        with pytest.raises(TypeError):
            as_sym("nope")

    def test_repr_readable(self):
        expr = sym("pr") * sym("|C|") + sym("ev")
        rendered = repr(expr)
        assert "pr" in rendered and "ev" in rendered and "|C|" in rendered


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["a", "b", "c"]),
            st.integers(min_value=-5, max_value=5),
        ),
        max_size=6,
    ),
    st.integers(min_value=1, max_value=7),
    st.integers(min_value=1, max_value=7),
    st.integers(min_value=1, max_value=7),
)
def test_property_symbolic_matches_numeric(terms, a, b, c):
    """Building an expression symbolically then evaluating equals
    computing it numerically directly."""
    assignment = {"a": a, "b": b, "c": c}
    symbolic = Sym.const(0)
    numeric = 0.0
    for name, coefficient in terms:
        symbolic = symbolic + sym(name) * coefficient
        numeric += assignment[name] * coefficient
    assert symbolic.evaluate(assignment) == pytest.approx(numeric)


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=-4, max_value=4),
    st.integers(min_value=-4, max_value=4),
    st.integers(min_value=1, max_value=9),
)
def test_property_ring_laws(x, y, v):
    """Commutativity and distributivity under evaluation."""
    sa, sb = sym("a") + x, sym("a") * y
    assignment = {"a": v}
    assert (sa * sb).evaluate(assignment) == (sb * sa).evaluate(assignment)
    assert ((sa + sb) * 2).evaluate(assignment) == pytest.approx(
        (sa * 2 + sb * 2).evaluate(assignment)
    )
