"""Tests for the translate step: arcs/paths -> implicit-join hops."""

import pytest

from repro.core.rewrite import rewrite
from repro.core.translate import Translator, produced_shape
from repro.querygraph.builder import (
    and_,
    arc,
    const,
    eq,
    ge,
    not_,
    out,
    path,
    query,
    rule,
    spj,
    var,
)
from repro.querygraph.predicates import PathRef
from repro.workloads import fig2_query, fig3_query, influencer_rules


@pytest.fixture()
def translator(indexed_db):
    shapes = {
        "Influencer": {
            "master": "Composer",
            "disciple": "Composer",
            "gen": None,
        }
    }
    return Translator(indexed_db.physical, shapes)


class TestArcTranslation:
    def test_root_only_arc_has_no_hops(self, translator):
        node = spj([arc("Composer", x=".")])
        translated = translator.translate_node(node)
        assert translated.arcs[0].root_var == "x"
        assert translated.arcs[0].hops == []
        assert translated.arcs[0].entity == "Composer"

    def test_fig2_tree_label_hops(self, translator):
        graph = fig2_query()
        node = graph.producers_of("Answer")[0].node
        translated = translator.translate_node(node)
        arc0 = translated.arcs[0]
        # works hop + two distinct instruments hops (i1 vs i2 branches).
        attrs = [hop.source.attrs for hop in arc0.hops]
        assert attrs.count(("works",)) == 1
        instrument_hops = [
            hop for hop in arc0.hops if hop.source.attrs == ("instruments",)
        ]
        assert len(instrument_hops) == 2
        # Both instrument hops dereference from the works hop's output.
        works_hop = [h for h in arc0.hops if h.source.attrs == ("works",)][0]
        for hop in instrument_hops:
            assert hop.source.var == works_hop.out_var

    def test_fig2_predicate_rewritten_to_hop_vars(self, translator):
        graph = fig2_query()
        node = graph.producers_of("Answer")[0].node
        translated = translator.translate_node(node)
        # The i1/i2 equalities now reference distinct instrument vars.
        paths = translated.predicate.paths()
        instrument_vars = {
            p.var for p in paths if p.attrs == ("name",) and p.var != "x"
        }
        assert len(instrument_vars) >= 2

    def test_multivalued_flag(self, translator):
        graph = fig2_query()
        node = graph.producers_of("Answer")[0].node
        translated = translator.translate_node(node)
        works_hop = [
            h for h in translated.arcs[0].hops if h.source.attrs == ("works",)
        ][0]
        assert works_hop.multivalued
        instrument_hop = [
            h for h in translated.arcs[0].hops if h.source.attrs == ("instruments",)
        ][0]
        assert instrument_hop.multivalued


class TestPathExpansion:
    def test_deep_predicate_path_expands(self, translator):
        node = spj(
            [arc("Influencer", i=".")],
            where=eq(
                path("i", "master", "works", "instruments", "name"),
                const("harpsichord"),
            ),
            select=out(g=path("i", "gen")),
        )
        translated = translator.translate_node(node)
        hops = translated.arcs[0].hops
        assert [h.source.attrs[-1] for h in hops] == [
            "master",
            "works",
            "instruments",
        ]
        # Residual predicate references the deepest hop's variable.
        residual_paths = translated.predicate.paths()
        assert residual_paths[0].attrs == ("name",)
        assert residual_paths[0].var == hops[-1].out_var

    def test_identity_comparison_needs_no_hop(self, translator):
        node = spj(
            [arc("Influencer", i="."), arc("Composer", x=".")],
            where=eq(path("i", "disciple"), path("x", "master")),
            select=out(d=path("i", "disciple")),
        )
        translated = translator.translate_node(node)
        assert translated.arcs[0].hops == []
        assert translated.arcs[1].hops == []

    def test_shared_prefix_factorized_across_pred_and_output(self, translator):
        node = spj(
            [arc("Composer", x=".")],
            where=eq(path("x", "master", "name"), const("Bach")),
            select=out(year=path("x", "master", "birthyear")),
        )
        translated = translator.translate_node(node)
        # One master hop serves both the predicate and the output.
        assert len(translated.arcs[0].hops) == 1

    def test_negated_predicates_not_expanded(self, translator):
        node = spj(
            [arc("Composer", x=".")],
            where=not_(
                eq(
                    path("x", "works", "instruments", "name"),
                    const("harpsichord"),
                )
            ),
            select=out(n=path("x", "name")),
        )
        translated = translator.translate_node(node)
        assert translated.arcs[0].hops == []  # stays a whole-path Sel

    def test_atomic_final_attribute_kept_on_last_hop(self, translator):
        node = spj(
            [arc("Composer", x=".")],
            where=eq(path("x", "master", "name"), const("Bach")),
        )
        translated = translator.translate_node(node)
        hop = translated.arcs[0].hops[0]
        assert hop.target_entity == "Composer"
        residual = translated.predicate.paths()[0]
        assert residual == PathRef(hop.out_var, ("name",))


class TestProducedShape:
    def test_influencer_shape(self, indexed_db):
        base, _recursive = influencer_rules()
        shape = produced_shape(
            base.node.output,
            indexed_db.catalog,
            {"x": "Composer"},
            {},
        )
        assert shape == {
            "master": "Composer",
            "disciple": "Composer",
            "gen": None,
        }

    def test_shape_through_view(self, indexed_db):
        from repro.querygraph.graph import OutputSpec

        shape = produced_shape(
            OutputSpec.of(w=path("x", "works")),
            indexed_db.catalog,
            {"x": "Composer"},
            {},
        )
        assert shape == {"w": "Composition"}
