"""Tests for the processing-tree algebra, patterns and validation."""

import pytest

from repro.errors import PlanError
from repro.plans import (
    EJ,
    IJ,
    PIJ,
    EntityLeaf,
    Fix,
    Materialize,
    Proj,
    RecLeaf,
    Sel,
    TempLeaf,
    UnionOp,
    find_all,
    paths_to,
    render_functional,
    render_tree,
    rewrite_saturate,
    validate_plan,
)
from repro.querygraph.builder import add, const, eq, ge, out, path, var


def make_fix():
    base = Proj(
        EntityLeaf("Composer", "x"),
        out(master=path("x", "master"), disciple=var("x"), gen=const(1)),
    )
    recursive = Proj(
        EJ(
            RecLeaf("Influencer", "i"),
            EntityLeaf("Composer", "x"),
            eq(path("i", "disciple"), path("x", "master")),
        ),
        out(
            master=path("i", "master"),
            disciple=var("x"),
            gen=add(path("i", "gen"), const(1)),
        ),
    )
    return Fix(
        "Influencer", UnionOp(base, recursive), "i", "Composer", "master", {"master"}
    )


def make_plan():
    return Proj(
        IJ(
            Sel(make_fix(), ge(path("i", "gen"), const(6))),
            EntityLeaf("Composer", "d"),
            path("i", "disciple"),
            "d",
        ),
        out(name=path("d", "name")),
    )


class TestStructure:
    def test_output_vars_propagate(self):
        plan = make_plan()
        assert plan.output_vars() == {"name"}
        fix = find_all(plan, Fix)[0]
        assert fix.output_vars() == {"i"}

    def test_structural_equality(self):
        assert make_plan() == make_plan()
        assert hash(make_plan()) == hash(make_plan())

    def test_walk_counts_nodes(self):
        plan = make_plan()
        assert plan.size() == len(list(plan.walk()))

    def test_substitute_replaces_subtree(self):
        plan = make_plan()
        old_leaf = EntityLeaf("Composer", "d")
        new_leaf = EntityLeaf("Composer", "d2")
        replaced = plan.substitute(old_leaf, new_leaf)
        assert replaced != plan
        assert replaced.contains(new_leaf)

    def test_with_children_preserves_params(self):
        fix = make_fix()
        rebuilt = fix.with_children([fix.body])
        assert rebuilt == fix
        assert rebuilt.invariant_fields == fix.invariant_fields

    def test_leaf_entities(self):
        plan = make_plan()
        assert plan.leaf_entities().count("Composer") == 3

    def test_ij_requires_entity_target(self):
        with pytest.raises(PlanError):
            IJ(EntityLeaf("A", "a"), Sel(EntityLeaf("B", "b"), ge(path("b", "x"), const(1))), path("a", "r"), "o")  # type: ignore[arg-type]

    def test_ij_requires_attribute(self):
        with pytest.raises(PlanError):
            IJ(EntityLeaf("A", "a"), EntityLeaf("B", "b"), var("a"), "o")

    def test_pij_arity_checks(self):
        with pytest.raises(PlanError):
            PIJ(
                EntityLeaf("A", "a"),
                [EntityLeaf("B", "b")],
                ["r"],
                var("a"),
                ["o"],
            )

    def test_unknown_join_algorithm_rejected(self):
        with pytest.raises(PlanError):
            EJ(
                EntityLeaf("A", "a"),
                EntityLeaf("B", "b"),
                eq(path("a", "x"), path("b", "x")),
                algorithm="hash",
            )

    def test_rec_leaves_found(self):
        fix = make_fix()
        assert len(fix.rec_leaves()) == 1


class TestPatterns:
    def test_paths_to_locates_fix(self):
        plan = make_plan()
        sites = list(paths_to(plan, lambda n: isinstance(n, Fix)))
        assert len(sites) == 1
        assert isinstance(sites[0].focus, Fix)
        labels = [a.label() for a in sites[0].ancestors()]
        assert labels[0].startswith("Proj")

    def test_rebuild_splices(self):
        plan = make_plan()
        site = next(paths_to(plan, lambda n: isinstance(n, EntityLeaf) and n.var == "d"))
        rebuilt = site.rebuild(EntityLeaf("Composer", "d"))
        assert rebuilt == plan

    def test_rewrite_saturate_converges(self):
        plan = make_plan()

        def rename_d(node):
            if isinstance(node, EntityLeaf) and node.var == "d":
                return EntityLeaf(node.entity, "dd")
            return None

        rewritten = rewrite_saturate(plan, rename_d)
        assert any(
            isinstance(n, EntityLeaf) and n.var == "dd" for n in rewritten.walk()
        )


class TestValidation:
    def test_valid_plan_passes(self):
        validate_plan(make_plan())

    def test_unbound_sel_variable(self):
        plan = Sel(EntityLeaf("C", "x"), ge(path("y", "gen"), const(1)))
        with pytest.raises(PlanError):
            validate_plan(plan)

    def test_rec_leaf_outside_fix(self):
        plan = Sel(RecLeaf("R", "r"), ge(path("r", "gen"), const(1)))
        with pytest.raises(PlanError):
            validate_plan(plan)

    def test_fix_without_rec_leaf(self):
        body = UnionOp(
            Proj(EntityLeaf("C", "x"), out(a=var("x"))),
            Proj(EntityLeaf("C", "y"), out(a=var("y"))),
        )
        with pytest.raises(PlanError):
            validate_plan(Fix("R", body, "r"))

    def test_ej_cartesian_rejected(self):
        plan = EJ(
            EntityLeaf("A", "a"),
            EntityLeaf("B", "b"),
            ge(path("a", "x"), const(1)),  # references only one side
        )
        with pytest.raises(PlanError):
            validate_plan(plan)

    def test_ej_overlapping_vars_rejected(self):
        plan = EJ(
            EntityLeaf("A", "a"),
            EntityLeaf("B", "a"),
            eq(path("a", "x"), path("a", "y")),
        )
        with pytest.raises(PlanError):
            validate_plan(plan)

    def test_union_incompatible_vars_rejected(self):
        plan = UnionOp(EntityLeaf("A", "a"), EntityLeaf("B", "b"))
        with pytest.raises(PlanError):
            validate_plan(plan)

    def test_unknown_entity_with_physical_schema(self, small_db):
        plan = EntityLeaf("Nope", "x")
        with pytest.raises(PlanError):
            validate_plan(plan, small_db.physical)

    def test_pij_requires_index_with_physical_schema(self, small_db):
        plan = PIJ(
            EntityLeaf("Composer", "c"),
            [EntityLeaf("Composition", "w"), EntityLeaf("Instrument", "i")],
            ["works", "instruments"],
            var("c"),
            ["w", "i"],
        )
        with pytest.raises(PlanError):
            validate_plan(plan, small_db.physical)  # no index built

    def test_materialize_validates_child(self):
        plan = Materialize(
            "V", Proj(EntityLeaf("C", "x"), out(a=var("x"))), "v"
        )
        validate_plan(plan)


class TestDisplay:
    def test_functional_rendering_matches_paper_style(self):
        plan = make_plan()
        rendered = render_functional(plan)
        assert "Fix(Influencer" in rendered
        assert "IJ_{disciple}" in rendered
        assert "Union(" in rendered

    def test_tree_rendering_has_all_operators(self):
        rendered = render_tree(make_plan())
        for token in ("Proj", "IJ", "Sel", "Fix", "Union", "ΔInfluencer"):
            assert token in rendered
