"""The ``shards`` knob through the service: protocol field validation,
response echo, weighted admission, and — the attribution regression —
per-shard work always lands in the *owning* request's record, even
with two sharded queries in flight at once.
"""

import threading

import pytest

from repro.dist import ShardCluster
from repro.engine import Engine
from repro.errors import ProtocolError
from repro.physical.buffer import BufferPool
from repro.core import cost_controlled_optimizer
from repro.service import (
    QueryServer,
    QueryService,
    ServiceClient,
    ServiceClientError,
    ServiceConfig,
)
from repro.service.server import _shards_field
from repro.workloads import MusicConfig, generate_music_database
from repro.workloads.queries import fig3_query

FIG3 = """
view Influencer as
  select [master: x.master, disciple: x, gen: 1] from x in Composer
  union
  select [master: i.master, disciple: x, gen: i.gen + 1]
  from i in Influencer, x in Composer where i.disciple = x.master;

select [name: i.disciple.name, gen: i.gen]
from i in Influencer
where i.gen >= 2;
"""

SHALLOW = """
view Influencer as
  select [master: x.master, disciple: x, gen: 1] from x in Composer
  union
  select [master: i.master, disciple: x, gen: i.gen + 1]
  from i in Influencer, x in Composer where i.disciple = x.master;

select [name: i.disciple.name]
from i in Influencer
where i.gen <= 2;
"""


def build_db():
    db = generate_music_database(
        MusicConfig(lineages=3, generations=5, works_per_composer=2, seed=17)
    )
    db.build_paper_indexes()
    return db


@pytest.fixture(scope="module")
def db():
    return build_db()


def rows_key(rows):
    return sorted(
        tuple(sorted((k, repr(v)) for k, v in row.items())) for row in rows
    )


# -- protocol field validation ------------------------------------------------


def test_shards_field_accepts_absent_and_positive():
    assert _shards_field({}) is None
    assert _shards_field({"shards": 4}) == 4


@pytest.mark.parametrize("bad", [0, -1, 1.5, "4", True, False, [2]])
def test_shards_field_rejects_bad_values(bad):
    with pytest.raises(ProtocolError, match="shards must be a positive integer"):
        _shards_field({"shards": bad})


def test_bad_shards_rejected_over_the_wire(db):
    service = QueryService(db, ServiceConfig())
    server = QueryServer(service, port=0)
    server.start()
    try:
        with ServiceClient("127.0.0.1", server.port) as client:
            with pytest.raises(ServiceClientError) as excinfo:
                client.request({"op": "query", "text": FIG3, "shards": 0})
            assert "shards must be a positive integer" in str(excinfo.value)
    finally:
        server.stop()


# -- echo and admission weighting ---------------------------------------------


def test_response_echoes_shards_and_matches_serial(db):
    service = QueryService(db, ServiceConfig(max_concurrent=8))
    serial = service.run_query(FIG3)
    assert serial["shards"] == 1
    sharded = service.run_query(FIG3, shards=4)
    assert sharded["shards"] == 4
    assert sharded["parallelism"] == 1
    assert rows_key(sharded["rows"]) == rows_key(serial["rows"])
    assert sharded["row_count"] == serial["row_count"]


def test_shards_request_over_the_wire(db):
    service = QueryService(db, ServiceConfig(max_concurrent=8))
    server = QueryServer(service, port=0)
    server.start()
    try:
        with ServiceClient("127.0.0.1", server.port) as client:
            plain = client.query(FIG3)
            sharded = client.query(FIG3, shards=2)
            assert sharded["shards"] == 2
            assert rows_key(sharded["rows"]) == rows_key(plain["rows"])
    finally:
        server.stop()


def test_admission_caps_the_shard_grant(db):
    # A shards-N request reserves N slots; the grant is capped by the
    # slot pool exactly like parallelism.
    service = QueryService(db, ServiceConfig(max_concurrent=2))
    response = service.run_query(FIG3, shards=16)
    assert response["shards"] == 2
    # The default config (shards=1) is unaffected.
    assert service.run_query(FIG3)["shards"] == 1


def test_clusters_are_cached_per_width(db):
    service = QueryService(db, ServiceConfig(max_concurrent=8))
    service.run_query(FIG3, shards=2)
    service.run_query(FIG3, shards=2)
    service.run_query(FIG3, shards=4)
    assert sorted(service._clusters) == [2, 4]


# -- attribution: per-shard work belongs to the owning request ----------------


def solo_records(db, shards):
    """Fresh-service baseline records for FIG3 and SHALLOW run alone."""
    service = QueryService(db, ServiceConfig(max_concurrent=8))
    records = {}
    for text in (FIG3, SHALLOW):
        service.run_query(text, shards=shards)
        records[text] = service.metrics.snapshot()["recent"][-1]
    return records


def test_concurrent_sharded_queries_do_not_bleed_attribution(db):
    baselines = solo_records(db, shards=2)
    service = QueryService(db, ServiceConfig(max_concurrent=8))
    errors = []

    def run(text):
        try:
            service.run_query(text, shards=2)
        except Exception as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    threads = [
        threading.Thread(target=run, args=(text,))
        for text in (FIG3, SHALLOW)
        for _ in range(1)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    recent = service.metrics.snapshot()["recent"]
    assert len(recent) == 2
    by_query = {record["query"]: record for record in recent}
    assert len(by_query) == 2
    for text, baseline in baselines.items():
        record = by_query[baseline["query"]]
        assert record["shards"] == 2
        # The exchange volume and per-shard read attribution of each
        # record must equal the solo run — concurrent sharded work
        # never bleeds into another request's record.
        assert record["exchange_tuples"] == baseline["exchange_tuples"]
        assert record["exchange_bytes"] == baseline["exchange_bytes"]
        assert record["reads_by_shard"] == baseline["reads_by_shard"]


def test_concurrent_coordinators_share_one_cluster(db):
    """Two coordinator engines driving the same cluster from two
    threads: each engine's metrics must equal its solo run (logical
    reads are deterministic per session; physical reads are not
    asserted — residency is shared by design)."""
    plan = cost_controlled_optimizer(db.physical).optimize(fig3_query()).plan

    def coordinator_view():
        source = db.physical.store.buffer
        pool = BufferPool(source.capacity, source.io_latency)
        store = db.physical.store.replica_view(pool)
        return db.physical.shard_view(store)

    with ShardCluster(db.physical, 2) as cluster:
        solo = []
        for _ in range(2):
            engine = Engine(coordinator_view(), shards=2, cluster=cluster)
            solo.append(engine.execute(plan))
        results = [None, None]
        errors = []

        def run(slot):
            try:
                engine = Engine(
                    coordinator_view(), shards=2, cluster=cluster
                )
                results[slot] = engine.execute(plan)
            except Exception as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        threads = [
            threading.Thread(target=run, args=(slot,)) for slot in (0, 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    assert not errors
    want = solo[0]
    assert solo[1].answer_set() == want.answer_set()
    for result in results:
        assert result.answer_set() == want.answer_set()
        assert result.metrics.total_tuples == want.metrics.total_tuples
        assert dict(result.metrics.tuples_by_shard) == dict(
            want.metrics.tuples_by_shard
        )
        assert dict(result.metrics.reads_by_shard) == dict(
            want.metrics.reads_by_shard
        )
        assert result.metrics.exchange_tuples == want.metrics.exchange_tuples
        assert result.metrics.exchange_bytes == want.metrics.exchange_bytes
