"""Tests for value-frequency statistics and their use in selectivity."""

import pytest

from repro.cost.cardinality import CardinalityEstimator
from repro.physical.stats import Statistics
from repro.plans import IJ, PIJ, EntityLeaf, Sel
from repro.querygraph.builder import const, eq, path, var
from repro.workloads import MusicConfig, generate_music_database


@pytest.fixture()
def skewed_db():
    """30% of works use the harpsichord; instrument extent is uniform.

    (The ``Play`` relation also references instruments uniformly, so
    the fraction must dominate the uniform background for the skew to
    show.)"""
    db = generate_music_database(
        MusicConfig(
            lineages=6,
            generations=6,
            works_per_composer=4,
            instruments=20,
            instruments_per_work=2,
            selective_fraction=0.3,
            seed=77,
        )
    )
    db.build_paper_indexes()
    return db


class TestFrequencyStatistics:
    def test_plain_frequency_counts_extent(self, skewed_db):
        stats = skewed_db.physical.statistics
        entity = stats.entity("Instrument")
        selectivity = entity.value_selectivity("name", "harpsichord")
        # One harpsichord record among `instruments` records.
        assert selectivity == pytest.approx(
            1.0 / skewed_db.config.instruments
        )

    def test_weighted_frequency_reflects_references(self, skewed_db):
        stats = skewed_db.physical.statistics
        entity = stats.entity("Instrument")
        weighted = entity.weighted_value_selectivity("name", "harpsichord")
        plain = entity.value_selectivity("name", "harpsichord")
        assert weighted is not None
        # Harpsichord appears in ~15% of works (each with 2 slots), so
        # its share of reference slots far exceeds its extent share.
        assert weighted > plain

    def test_unknown_value_zero(self, skewed_db):
        stats = skewed_db.physical.statistics
        entity = stats.entity("Instrument")
        assert entity.value_selectivity("name", "theremin") == 0.0
        assert entity.weighted_value_selectivity("name", "theremin") == 0.0

    def test_oid_attributes_not_tracked(self, skewed_db):
        stats = skewed_db.physical.statistics
        entity = stats.entity("Composer")
        assert "master" not in entity.frequency

    def test_overflow_disables_tracking(self, skewed_db):
        store = skewed_db.store
        store.create_extent("Wide")
        for i in range(600):  # above MAX_TRACKED_VALUES
            store.insert("Wide", {"v": i})
        stats = Statistics(store)
        entity = stats.entity("Wide")
        assert entity.frequency["v"] is None
        assert entity.value_selectivity("v", 5) is None


class TestSelectivityUsesFrequencies:
    def test_scan_selection_uses_plain_frequency(self, skewed_db):
        estimator = CardinalityEstimator(skewed_db.physical)
        plan = Sel(
            EntityLeaf("Instrument", "i"),
            eq(path("i", "name"), const("harpsichord")),
        )
        estimate = estimator.estimate(plan)
        assert estimate.tuples == pytest.approx(1.0)

    def test_stream_selection_uses_weighted_frequency(self, skewed_db):
        estimator = CardinalityEstimator(skewed_db.physical)
        expand = PIJ(
            EntityLeaf("Composer", "x"),
            [EntityLeaf("Composition", "w"), EntityLeaf("Instrument", "i")],
            ["works", "instruments"],
            var("x"),
            ["w", "i"],
        )
        filtered = Sel(expand, eq(path("i", "name"), const("harpsichord")))
        stream = estimator.estimate(expand)
        selected = estimator.estimate(filtered)
        stats = skewed_db.physical.statistics
        weighted = stats.entity("Instrument").weighted_value_selectivity(
            "name", "harpsichord"
        )
        assert selected.tuples == pytest.approx(
            stream.tuples * weighted, rel=0.01
        )

    def test_ij_output_marked_as_stream(self, skewed_db):
        estimator = CardinalityEstimator(skewed_db.physical)
        plan = IJ(
            EntityLeaf("Composer", "x"),
            EntityLeaf("Composition", "w"),
            path("x", "works"),
            "w",
        )
        estimate = estimator.estimate(plan)
        assert "w" in estimate.stream_vars
        assert "x" not in estimate.stream_vars

    def test_estimate_tracks_generator_selectivity(self):
        """The estimated pushed-plan cost must move with the data's
        actual selectivity (the crossover driver)."""
        estimates = []
        for fraction in (0.05, 0.5):
            db = generate_music_database(
                MusicConfig(
                    lineages=6,
                    generations=6,
                    works_per_composer=4,
                    selective_fraction=fraction,
                    seed=78,
                )
            )
            db.build_paper_indexes()
            estimator = CardinalityEstimator(db.physical)
            plan = Sel(
                PIJ(
                    EntityLeaf("Composer", "x"),
                    [
                        EntityLeaf("Composition", "w"),
                        EntityLeaf("Instrument", "i"),
                    ],
                    ["works", "instruments"],
                    var("x"),
                    ["w", "i"],
                ),
                eq(path("i", "name"), const("harpsichord")),
            )
            estimates.append(estimator.estimate(plan).tuples)
        assert estimates[1] > estimates[0] * 3
