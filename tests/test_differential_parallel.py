"""Differential harness: the parallel fixpoint vs. the serial engine
vs. the naive reference evaluator, over randomized schemas and queries.

Every generated query is optimized once, then executed on fresh
engines across the batch-size × parallelism grid.  Every run must
produce the identical answer set (matching
:class:`ReferenceEvaluator` ground truth), and — because rounds are
barriers, partition slices are disjoint, and batching only groups
emissions without reordering fetches — the identical *per-node tuple
counts*, so a lost or duplicated tuple anywhere in the pipeline fails
the run even when dedup would hide it from the answer set.

The generators, fixtures and the check itself live in
``tests/diff_harness.py`` (shared with the shards sweep in
``test_differential_shards.py``).  ``REPRO_DIFF_EXAMPLES`` scales the
example count (CI runs 100 per strategy; three strategies makes >=200
randomized queries per CI run).  ``derandomize=True`` keeps CI seeds
fixed so a red run is reproducible.
"""

import pytest
from hypothesis import given, settings

from tests.diff_harness import (
    DIFF_SETTINGS,
    build_music_db,
    build_parts_db,
    flat_queries,
    parts_queries,
    recursive_queries,
    run_differential,
)

BATCH_SIZES = (1, 64, 1024)
PARALLELISM_LEVELS = (1, 4)

#: (batch_size, parallelism, shards) — the single-process grid.
GRID = [
    (batch_size, level, 1)
    for batch_size in BATCH_SIZES
    for level in PARALLELISM_LEVELS
]


@pytest.fixture(scope="module")
def music_db():
    return build_music_db()


@pytest.fixture(scope="module")
def parts_db():
    return build_parts_db()


@settings(**DIFF_SETTINGS)
@given(graph=flat_queries())
def test_differential_flat_queries(music_db, graph):
    run_differential(music_db, graph, GRID)


@settings(**DIFF_SETTINGS)
@given(graph=recursive_queries())
def test_differential_recursive_queries(music_db, graph):
    run_differential(music_db, graph, GRID)


@settings(**DIFF_SETTINGS)
@given(graph=parts_queries())
def test_differential_parts_queries(parts_db, graph):
    run_differential(parts_db, graph, GRID)
