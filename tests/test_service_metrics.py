"""ServiceMetrics: percentile math, the slow-query log, Prometheus
exposition, and thread-safety under concurrent recording."""

import random
import statistics
import threading

import pytest

from repro.engine.metrics import RuntimeMetrics
from repro.service.metrics import QueryRecord, ServiceMetrics, _percentile


def record(execute_seconds=0.001, request_id="", estimated=10.0, measured=12.0):
    return QueryRecord(
        canonical="select ...",
        cache_status="hit",
        estimated_cost=estimated,
        measured_cost=measured,
        optimize_seconds=0.0005,
        execute_seconds=execute_seconds,
        rows=3,
        request_id=request_id,
    )


class TestPercentile:
    def test_empty_and_singleton(self):
        assert _percentile([], 0.5) == 0.0
        assert _percentile([7.0], 0.95) == 7.0

    def test_interpolates_between_ranks(self):
        # p50 of [1, 2, 3, 10] sits halfway between 2 and 3.
        assert _percentile([1.0, 2.0, 3.0, 10.0], 0.5) == pytest.approx(2.5)
        # p75 of [0, 10] interpolates, not snaps to an endpoint.
        assert _percentile([0.0, 10.0], 0.75) == pytest.approx(7.5)

    def test_matches_statistics_quantiles(self):
        """The service's percentile must agree with the stdlib's
        inclusive (linear-interpolation) quantile method."""
        rng = random.Random(1992)
        for size in (2, 5, 20, 101, 256):
            values = [rng.expovariate(1 / 5.0) for _ in range(size)]
            quantiles = statistics.quantiles(
                values, n=100, method="inclusive"
            )
            assert _percentile(values, 0.50) == pytest.approx(quantiles[49])
            assert _percentile(values, 0.95) == pytest.approx(quantiles[94])

    def test_monotone_in_fraction(self):
        values = [5.0, 1.0, 9.0, 3.0, 7.0]
        samples = [_percentile(values, f / 100) for f in range(0, 101, 5)]
        assert samples == sorted(samples)
        assert samples[0] == min(values) and samples[-1] == max(values)


class TestSlowQueryLog:
    def test_record_slow_keeps_reasons(self):
        metrics = ServiceMetrics()
        metrics.record_slow(record(request_id="r1"), ["took 2s"])
        snapshot = metrics.snapshot()
        assert snapshot["slow_queries"] == 1
        assert snapshot["slow"][0]["request_id"] == "r1"
        assert snapshot["slow"][0]["reasons"] == ["took 2s"]

    def test_slow_ring_is_bounded(self):
        metrics = ServiceMetrics(slow_window=8)
        for i in range(50):
            metrics.record_slow(record(request_id=f"r{i}"), ["slow"])
        assert metrics.slow_queries == 50
        assert len(metrics.slow) == 8
        assert metrics.slow[-1]["request_id"] == "r49"


class TestPrometheus:
    def test_exposition_format(self):
        metrics = ServiceMetrics()
        metrics.record_request()
        metrics.count("cache_hit", 3)
        metrics.count("cache_miss")
        metrics.record_execution(record(execute_seconds=0.25), RuntimeMetrics())
        text = metrics.to_prometheus()
        assert text.endswith("\n")
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_requests_total 1" in text
        assert 'repro_cache_lookups_total{status="hit"} 3' in text
        assert 'repro_cache_lookups_total{status="miss"} 1' in text
        assert 'repro_execute_latency_seconds{quantile="0.5"} 0.25' in text
        assert "repro_execute_latency_seconds_count 1" in text
        # Every non-comment line is `name{labels}? value`.
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            assert name.startswith("repro_")
            float(value)


class TestLatencyHistogram:
    """Satellite: fixed-bucket cumulative histogram next to the
    percentile summary."""

    def test_buckets_are_cumulative(self):
        from repro.service.metrics import LatencyHistogram

        histogram = LatencyHistogram(buckets=(0.01, 0.1, 1.0))
        for seconds in (0.005, 0.05, 0.05, 0.5, 5.0):
            histogram.observe(seconds)
        snapshot = histogram.snapshot()
        assert snapshot["buckets"] == {
            "0.01": 1,
            "0.1": 3,
            "1": 4,
            "+Inf": 5,
        }
        assert snapshot["count"] == 5
        assert snapshot["sum"] == pytest.approx(5.605)

    def test_histogram_exposition(self):
        metrics = ServiceMetrics()
        metrics.record_execution(record(execute_seconds=0.03), RuntimeMetrics())
        metrics.record_execution(record(execute_seconds=0.3), RuntimeMetrics())
        text = metrics.to_prometheus()
        assert "# TYPE repro_execute_latency_hist_seconds histogram" in text
        assert (
            'repro_execute_latency_hist_seconds_bucket{le="0.05"} 1' in text
        )
        assert (
            'repro_execute_latency_hist_seconds_bucket{le="0.5"} 2' in text
        )
        assert (
            'repro_execute_latency_hist_seconds_bucket{le="+Inf"} 2' in text
        )
        assert "repro_execute_latency_hist_seconds_count 2" in text

    def test_snapshot_carries_histogram(self):
        metrics = ServiceMetrics()
        metrics.record_execution(record(execute_seconds=0.03), RuntimeMetrics())
        assert metrics.snapshot()["latency_histogram"]["count"] == 1


class TestGauges:
    def test_labelled_gauge_exposition(self):
        metrics = ServiceMetrics()
        metrics.set_gauge(
            "misestimate_ratio",
            2.5,
            "Mean q-error per query class.",
            {"query_class": "abc123"},
        )
        metrics.set_gauge(
            "misestimate_ratio",
            1.25,
            "Mean q-error per query class.",
            {"query_class": "def456"},
        )
        text = metrics.to_prometheus()
        assert "# TYPE repro_misestimate_ratio gauge" in text
        assert 'repro_misestimate_ratio{query_class="abc123"} 2.5' in text
        assert 'repro_misestimate_ratio{query_class="def456"} 1.25' in text

    def test_unlabelled_gauge_and_overwrite(self):
        metrics = ServiceMetrics()
        metrics.set_gauge("queue_depth", 3, "Current depth.")
        metrics.set_gauge("queue_depth", 5, "Current depth.")
        text = metrics.to_prometheus()
        assert "repro_queue_depth 5" in text
        assert "repro_queue_depth 3" not in text

    def test_feedback_counters_exposed(self):
        metrics = ServiceMetrics()
        metrics.count("recalibrations")
        metrics.count("plan_regressions", 2)
        metrics.count("plans_pinned")
        text = metrics.to_prometheus()
        assert "repro_recalibrations_total 1" in text
        assert "repro_plan_regressions_total 2" in text
        assert "repro_plans_pinned_total 1" in text


class TestConcurrency:
    def test_hammer_from_threads(self):
        """Counters stay consistent and the ring stays bounded when
        many threads record at once."""
        window = 64
        metrics = ServiceMetrics(window=window, slow_window=16)
        threads_n, per_thread = 8, 200
        barrier = threading.Barrier(threads_n)
        errors = []

        def hammer(worker):
            try:
                barrier.wait()
                for i in range(per_thread):
                    metrics.record_request()
                    metrics.count("cache_hit")
                    runtime = RuntimeMetrics()
                    runtime.predicate_evals = 2
                    runtime.count_tuple("sel", "n1")
                    metrics.record_execution(
                        record(
                            execute_seconds=0.001 * (i % 7),
                            request_id=f"w{worker}-{i}",
                        ),
                        runtime,
                    )
                    if i % 10 == 0:
                        metrics.record_slow(record(), ["hammered"])
                    if i % 5 == 0:
                        metrics.snapshot()
                    if i % 6 == 0:
                        metrics.to_prometheus()
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        workers = [
            threading.Thread(target=hammer, args=(w,)) for w in range(threads_n)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()

        assert not errors
        total = threads_n * per_thread
        assert metrics.requests == total
        assert metrics.executed == total
        assert metrics.counters["cache_hit"] == total
        assert metrics.slow_queries == threads_n * (per_thread // 10)
        assert len(metrics.recent) == window
        assert len(metrics.slow) == 16
        assert metrics.runtime.predicate_evals == 2 * total
        assert metrics.runtime.tuples_by_node["n1"] == total
        assert metrics.optimize_seconds == pytest.approx(0.0005 * total)
