"""Strict Prometheus text-exposition (0.0.4) correctness.

A real parser — not substring checks — over ``metrics_text()``: every
sample family is preceded by matching ``# HELP``/``# TYPE`` lines,
label values round-trip through escaping, histogram buckets are
cumulative with ordered ``le`` bounds and ``+Inf == _count``, and the
per-query-class gauge cardinality stays bounded no matter how many
classes telemetry has seen.
"""

import math

import pytest

from repro.obs.recorder import database_from_config
from repro.service import QueryService, ServiceConfig
from repro.service.metrics import ServiceMetrics

RECIPE = {"db": "music", "seed": 21, "lineages": 3, "generations": 6}

SCAN = "select [name: x.name] from x in Composer where x.birthyear >= 1700;"

FIG3 = """
view Influencer as
  select [master: x.master, disciple: x, gen: 1] from x in Composer
  union
  select [master: i.master, disciple: x, gen: i.gen + 1]
  from i in Influencer, x in Composer where i.disciple = x.master;

select [name: i.disciple.name, gen: i.gen]
from i in Influencer
where i.gen >= 2;
"""

VALID_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}

#: Metric-name suffixes that attach samples to a declared family.
FAMILY_SUFFIXES = ("_bucket", "_sum", "_count")


def parse_labels(text):
    """Parse one ``{k="v",...}`` label block, honouring escapes."""
    labels = {}
    index = 0
    while index < len(text) and text[index] != "}":
        end = text.index("=", index)
        key = text[index:end].lstrip(",")
        assert text[end + 1] == '"', text
        index = end + 2
        value = []
        while text[index] != '"':
            char = text[index]
            if char == "\\":
                escape = text[index + 1]
                value.append(
                    {"\\": "\\", '"': '"', "n": "\n"}[escape]
                )
                index += 2
            else:
                value.append(char)
                index += 1
        labels[key] = "".join(value)
        index += 1
    return labels, index + 1


def parse_exposition(text):
    """Parse the exposition into (families, samples).

    ``families`` maps name -> {"help": str, "type": str}; ``samples``
    is a list of (name, labels-dict, float-value).  Asserts structural
    validity along the way.
    """
    families = {}
    samples = []
    pending_help = None
    assert text.endswith("\n"), "exposition must end with a newline"
    for line in text.splitlines():
        assert line == line.strip(), f"stray whitespace: {line!r}"
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            assert help_text, f"HELP without text: {line!r}"
            pending_help = (name, help_text)
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, type_text = rest.partition(" ")
            assert type_text in VALID_TYPES, line
            assert pending_help and pending_help[0] == name, (
                f"TYPE for {name} not directly preceded by its HELP"
            )
            assert name not in families, f"family {name} declared twice"
            families[name] = {"help": pending_help[1], "type": type_text}
            pending_help = None
            continue
        assert not line.startswith("#"), f"unknown comment: {line!r}"
        brace = line.find("{")
        if brace != -1:
            name = line[:brace]
            labels, consumed = parse_labels(line[brace + 1 :])
            value_text = line[brace + 1 + consumed :].strip()
        else:
            name, _, value_text = line.partition(" ")
            labels = {}
        value = float(value_text)
        assert not math.isnan(value), line
        samples.append((name, labels, value))

    for name, labels, _value in samples:
        family = name
        if family not in families:
            for suffix in FAMILY_SUFFIXES:
                if name.endswith(suffix):
                    family = name[: -len(suffix)]
                    break
        assert family in families, f"sample {name} has no HELP/TYPE"
        kind = families[family]["type"]
        if kind == "histogram" and name.endswith("_bucket"):
            assert "le" in labels, f"histogram bucket without le: {name}"
    return families, samples


def check_histograms(families, samples):
    """Cumulative buckets, ascending ``le``, ``+Inf`` == ``_count``."""
    checked = 0
    for family, meta in families.items():
        if meta["type"] != "histogram":
            continue
        buckets = [
            (labels["le"], value)
            for name, labels, value in samples
            if name == f"{family}_bucket"
        ]
        assert buckets, family
        bounds = [le for le, _ in buckets]
        assert bounds[-1] == "+Inf", bounds
        finite = [float(le) for le in bounds[:-1]]
        assert finite == sorted(finite), f"{family}: le out of order"
        counts = [value for _, value in buckets]
        assert counts == sorted(counts), f"{family}: non-cumulative"
        count = next(
            value
            for name, _labels, value in samples
            if name == f"{family}_count"
        )
        assert counts[-1] == count, f"{family}: +Inf != _count"
        checked += 1
    return checked


@pytest.fixture()
def service():
    svc = QueryService(
        database_from_config(RECIPE),
        ServiceConfig(obs_budget=0.05, database_config=RECIPE),
    )
    for _ in range(3):
        assert svc.handle({"op": "query", "text": SCAN})["ok"]
    assert svc.handle({"op": "query", "text": FIG3})["ok"]
    return svc


class TestExposition:
    def test_every_sample_has_help_and_type(self, service):
        families, samples = parse_exposition(service.metrics_text())
        assert samples
        # Spot-check the families this PR adds.
        for name in (
            "repro_anomalies_total",
            "repro_flight_bundles_total",
            "repro_obs_committed_total",
            "repro_obs_dropped_total",
            "repro_obs_budget_fraction",
            "repro_obs_spent_fraction",
        ):
            assert name in families, sorted(families)

    def test_histograms_are_wellformed(self, service):
        families, samples = parse_exposition(service.metrics_text())
        assert check_histograms(families, samples) >= 2

    def test_no_duplicate_samples(self, service):
        _families, samples = parse_exposition(service.metrics_text())
        keys = [
            (name, tuple(sorted(labels.items())))
            for name, labels, _ in samples
        ]
        assert len(keys) == len(set(keys))

    def test_counter_types_declared(self, service):
        families, _ = parse_exposition(service.metrics_text())
        assert families["repro_requests_total"]["type"] == "counter"
        assert families["repro_obs_budget_fraction"]["type"] == "gauge"
        assert (
            families["repro_execute_latency_hist_seconds"]["type"]
            == "histogram"
        )
        assert families["repro_execute_latency_seconds"]["type"] == "summary"


class TestLabelEscaping:
    def test_hostile_label_values_round_trip(self):
        metrics = ServiceMetrics()
        hostile = 'quote:" backslash:\\ newline:\nend'
        metrics.set_gauge(
            "escape_probe",
            1.0,
            "Escaping probe.",
            labels={"victim": hostile},
        )
        _families, samples = parse_exposition(metrics.to_prometheus())
        probes = [
            labels for name, labels, _ in samples
            if name == "repro_escape_probe"
        ]
        assert probes == [{"victim": hostile}]


class TestCardinalityBound:
    def test_query_class_gauges_are_capped(self, service, monkeypatch):
        fake = {
            f"class{index:03d}": {
                "runs": 1000 - index,
                "cost_misestimate": 1.0 + index / 100.0,
                "operator_misestimate": 1.5,
            }
            for index in range(3 * service.GAUGE_CLASS_CAP)
        }
        monkeypatch.setattr(
            service.feedback, "misestimate_by_query", lambda: fake
        )
        _families, samples = parse_exposition(service.metrics_text())
        classes = {
            labels["query_class"]
            for name, labels, _ in samples
            if name == "repro_misestimate_ratio"
        }
        assert 0 < len(classes) <= service.GAUGE_CLASS_CAP
        # The cap keeps the *most-run* classes, not an arbitrary subset.
        assert "class000" in classes
        assert f"class{3 * service.GAUGE_CLASS_CAP - 1:03d}" not in classes

    def test_stale_classes_disappear(self, service, monkeypatch):
        monkeypatch.setattr(
            service.feedback,
            "misestimate_by_query",
            lambda: {
                "fresh": {
                    "runs": 5,
                    "cost_misestimate": 2.0,
                    "operator_misestimate": None,
                }
            },
        )
        _families, samples = parse_exposition(service.metrics_text())
        classes = [
            labels["query_class"]
            for name, labels, _ in samples
            if name == "repro_misestimate_ratio"
        ]
        assert classes == ["fresh"]
