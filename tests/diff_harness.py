"""Shared differential-testing harness.

Query generators (randomized flat, recursive and bill-of-materials
queries), the standard fixture databases, and the differential check
itself: optimize once, execute on fresh engines across a configuration
grid, and require every run to produce the identical answer set
(matching :class:`ReferenceEvaluator` ground truth) *and* identical
per-node tuple counts — a lost or duplicated tuple anywhere in the
pipeline fails the run even when dedup would hide it from the answer
set.

``test_differential_parallel.py`` sweeps the batch-size × parallelism
grid; ``test_differential_shards.py`` adds the shards dimension,
running the same queries through the distributed scatter-gather
fixpoint, plus the batch-layout sweep ({row, columnar} crossed into
the grid via ``layouts=``, with per-point metering parity).
``REPRO_DIFF_EXAMPLES`` scales the example count and
``derandomize=True`` keeps CI seeds fixed so a red run is
reproducible.
"""

import os

from hypothesis import HealthCheck
from hypothesis import strategies as st

from repro.core import cost_controlled_optimizer
from repro.engine import Engine, ReferenceEvaluator
from repro.errors import OptimizationError
from repro.querygraph.builder import (
    and_,
    arc,
    const,
    eq,
    ge,
    le,
    ne,
    out,
    path,
    query,
    rule,
    spj,
    var,
)
from repro.workloads import MusicConfig, generate_music_database
from repro.workloads.parts import (
    PartsConfig,
    components_of_query,
    generate_parts_database,
    heavy_components_query,
)
from repro.workloads.queries import influencer_rules

MAX_EXAMPLES = int(os.environ.get("REPRO_DIFF_EXAMPLES", "25"))

DIFF_SETTINGS = dict(
    max_examples=MAX_EXAMPLES,
    deadline=None,
    derandomize=True,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
)

# -- fixture databases --------------------------------------------------------


def build_music_db():
    db = generate_music_database(
        MusicConfig(lineages=3, generations=5, works_per_composer=2, seed=99)
    )
    db.build_paper_indexes()
    return db


def build_parts_db():
    return generate_parts_database(
        PartsConfig(assemblies=4, depth=3, fanout=3, sharing=0.2, seed=7)
    )


# -- query generators (music schema) -----------------------------------------

COMPOSER_PREDICATES = [
    lambda v: eq(path(v, "name"), const("Bach")),
    lambda v: ge(path(v, "birthyear"), const(1650)),
    lambda v: le(path(v, "birthyear"), const(1750)),
    lambda v: ne(path(v, "name"), const("composer_0001")),
    lambda v: eq(path(v, "works", "title"), const("work_00001")),
    lambda v: ge(path(v, "age"), const(250)),
]

COMPOSER_OUTPUTS = [
    lambda v: ("name", path(v, "name")),
    lambda v: ("year", path(v, "birthyear")),
    lambda v: ("master", path(v, "master")),
    lambda v: ("mname", path(v, "master", "name")),
]

INFLUENCER_PREDICATES = [
    lambda v: ge(path(v, "gen"), const(2)),
    lambda v: le(path(v, "gen"), const(4)),
    lambda v: eq(path(v, "master", "name"), const("Bach")),
    lambda v: eq(
        path(v, "master", "works", "instruments", "name"),
        const("harpsichord"),
    ),
]

INFLUENCER_OUTPUTS = [
    lambda v: ("gen", path(v, "gen")),
    lambda v: ("who", path(v, "disciple", "name")),
    lambda v: ("master", path(v, "master")),
]

JOIN_PREDICATES = [
    lambda a, b: eq(path(b, "master"), var(a)),
    lambda a, b: eq(path(a, "master"), path(b, "master")),
    lambda a, b: eq(path(a, "birthyear"), path(b, "birthyear")),
]


@st.composite
def flat_queries(draw):
    """One or two Composer arcs with random filters and outputs."""
    arc_count = draw(st.integers(min_value=1, max_value=2))
    variables = [f"v{i}" for i in range(arc_count)]
    arcs = [arc("Composer", **{v: "."}) for v in variables]
    conjuncts = []
    for v in variables:
        for predicate in draw(
            st.lists(st.sampled_from(COMPOSER_PREDICATES), max_size=2)
        ):
            conjuncts.append(predicate(v))
    if arc_count == 2:
        join = draw(st.sampled_from(JOIN_PREDICATES))
        conjuncts.append(join(variables[0], variables[1]))
    fields = {}
    for v in variables:
        name, expr = draw(st.sampled_from(COMPOSER_OUTPUTS))(v)
        fields[f"{name}_{v}"] = expr
    return query(
        rule("Answer", spj(arcs, where=and_(*conjuncts), select=out(**fields)))
    )


@st.composite
def recursive_queries(draw):
    """A query over the Influencer view with random filters."""
    conjuncts = [
        predicate("i")
        for predicate in draw(
            st.lists(st.sampled_from(INFLUENCER_PREDICATES), max_size=2)
        )
    ]
    name, expr = draw(st.sampled_from(INFLUENCER_OUTPUTS))("i")
    p1, p2 = influencer_rules()
    answer = rule(
        "Answer",
        spj(
            [arc("Influencer", i=".")],
            where=and_(*conjuncts),
            select=out(**{name: expr}),
        ),
    )
    return query(p1, p2, answer)


@st.composite
def parts_queries(draw):
    """A recursive closure query over the bill-of-materials schema,
    randomizing the start assembly and the query shape."""
    assembly = draw(st.integers(min_value=0, max_value=3))
    name = f"assembly_root_{assembly}"
    if draw(st.booleans()):
        return components_of_query(name)
    return heavy_components_query(name, min_level=draw(st.integers(1, 3)))


# -- differential check -------------------------------------------------------


def run_differential(
    db, graph, grid, cluster=None, optimizer=None, layouts=(None,)
):
    """Optimize once, execute on a fresh engine per configuration, and
    assert every run matches the reference evaluator's answer set and
    the grid's first configuration's per-node tuple counts.

    ``grid`` is an iterable of ``(batch_size, parallelism, shards)``
    triples; configurations with ``shards > 1`` run through
    ``cluster`` (a :class:`repro.dist.ShardCluster` at least that
    wide).  ``optimizer`` is a factory from a physical schema to an
    optimizer (default: the paper's cost-controlled II optimizer) —
    the hook the enumeration sweep uses to prove the plans ``enum``
    picks execute identically under every configuration.

    ``layouts`` crosses a ``batch_layout`` dimension into the grid
    (``None`` = the engine's configured default).  Layout is a pure
    representation choice, so on top of the tuple-count invariants the
    harness requires ``predicate_evals`` and ``logical_reads`` to be
    *identical across layouts* at every ``(batch, parallelism,
    shards)`` point — a columnar kernel that skipped or repeated a
    predicate evaluation fails here even when the answers agree.
    """
    if optimizer is None:
        optimizer = cost_controlled_optimizer
    try:
        plan = optimizer(db.physical).optimize(graph).plan
    except OptimizationError:
        # Disconnected join graphs (Cartesian products) are
        # legitimately rejected by the optimizer.
        return
    want = ReferenceEvaluator(db.physical).answer_set(graph)
    grid = list(grid)
    layouts = list(layouts)
    counts = {}
    by_node = {}
    metering = {}
    for batch_size, level, shards in grid:
        for layout in layouts:
            engine = Engine(
                db.physical,
                parallelism=level,
                batch_size=batch_size,
                batch_layout=layout,
                shards=shards,
                cluster=cluster if shards > 1 else None,
            )
            result = engine.execute(plan)
            config = (layout, batch_size, level, shards)
            assert result.answer_set() == want, (
                f"layout={layout} batch_size={batch_size} "
                f"parallelism={level} shards={shards} diverged from "
                f"the reference evaluator"
            )
            counts[config] = result.metrics.total_tuples
            by_node[config] = dict(result.metrics.tuples_by_node)
            metering[config] = (
                result.metrics.predicate_evals,
                result.metrics.buffer.logical_reads,
            )
    assert len(set(counts.values())) == 1, (
        f"tuple counts diverged across the configuration grid: {counts}"
    )
    reference_config = (layouts[0], *grid[0])
    reference_nodes = by_node[reference_config]
    for config, nodes in by_node.items():
        assert nodes == reference_nodes, (
            f"per-node tuple counts at layout={config[0]} "
            f"batch_size={config[1]} parallelism={config[2]} "
            f"shards={config[3]} diverged from the {reference_config} "
            f"reference: {nodes} != {reference_nodes}"
        )
    # Layout parity of the metering counters, per grid point: the
    # layout axis must be invisible to predicate_evals/logical_reads
    # (the other axes may legitimately change them).
    for batch_size, level, shards in grid:
        point = {
            layout: metering[(layout, batch_size, level, shards)]
            for layout in layouts
        }
        assert len(set(point.values())) == 1, (
            f"metering (predicate_evals, logical_reads) diverged across "
            f"layouts at batch_size={batch_size} parallelism={level} "
            f"shards={shards}: {point}"
        )
