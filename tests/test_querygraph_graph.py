"""Tests for query graphs and recursion analysis."""

import pytest

from repro.errors import QueryModelError
from repro.querygraph.builder import (
    arc,
    and_,
    const,
    eq,
    out,
    path,
    query,
    rule,
    spj,
    union,
    var,
)
from repro.querygraph.graph import OutputSpec, QueryGraph, Rule, SPJNode, UnionNode
from repro.querygraph.views import (
    analyze_recursion,
    can_push_paths,
    is_fixpoint_recursion,
)
from repro.workloads import fig3_query, influencer_rules


class TestSPJNode:
    def test_unbound_predicate_variable_raises(self):
        with pytest.raises(QueryModelError):
            spj([arc("C", x=".")], where=eq(var("y"), const(1)))

    def test_unbound_output_variable_raises(self):
        with pytest.raises(QueryModelError):
            spj([arc("C", x=".")], select=out(v=var("zzz")))

    def test_variable_bound_twice_raises(self):
        with pytest.raises(QueryModelError):
            spj([arc("C", x="."), arc("D", x=".")])

    def test_default_output_projects_root_variables(self):
        node = spj([arc("C", x="."), arc("D", y=".")])
        assert node.output.field_names() == ["x", "y"]

    def test_binding_arc(self):
        node = spj([arc("C", x="."), arc("D", y=".")])
        assert node.binding_arc("y").name == "D"
        with pytest.raises(QueryModelError):
            node.binding_arc("z")

    def test_duplicate_output_fields_raise(self):
        from repro.querygraph.graph import OutputField

        with pytest.raises(QueryModelError):
            OutputSpec([
                OutputField("a", var("x")),
                OutputField("a", var("x")),
            ])


class TestQueryGraph:
    def test_answer_must_be_produced(self):
        with pytest.raises(QueryModelError):
            query(rule("NotAnswer", spj([arc("C", x=".")])))

    def test_base_names(self):
        graph = fig3_query()
        assert graph.base_names() == {"Composer"}

    def test_produced_names_order(self):
        graph = fig3_query()
        assert graph.produced_names() == ["Influencer", "Answer"]

    def test_recursive_names(self):
        graph = fig3_query()
        assert graph.recursive_names() == ["Influencer"]
        assert graph.is_recursive_name("Influencer")
        assert not graph.is_recursive_name("Answer")

    def test_depends_on(self):
        graph = fig3_query()
        assert "Composer" in graph.depends_on("Answer")
        assert "Influencer" in graph.depends_on("Answer")
        assert "Influencer" in graph.depends_on("Influencer")

    def test_stratification_order(self):
        graph = fig3_query()
        order = graph.stratification_order()
        assert order.index("Influencer") < order.index("Answer")

    def test_replace_rules_merges(self):
        p1, p2 = influencer_rules()
        answer = rule("Answer", spj([arc("Influencer", i=".")]))
        graph = query(p1, p2, answer)
        merged = UnionNode([p1.node, p2.node])
        graph.replace_rules("Influencer", Rule("Influencer", merged))
        assert len(graph.producers_of("Influencer")) == 1


class TestRecursionAnalysis:
    def test_influencer_is_fixpoint_recursion(self):
        graph = fig3_query()
        assert is_fixpoint_recursion(graph, "Influencer")
        assert not is_fixpoint_recursion(graph, "Answer")

    def test_provenance_classification(self):
        graph = fig3_query()
        info = analyze_recursion(graph, "Influencer")
        kinds = {name: p.kind for name, p in info.provenance.items()}
        assert kinds == {
            "master": "invariant",
            "disciple": "rebound",
            "gen": "computed",
        }
        assert info.invariant_fields == {"master"}
        assert info.is_linear()

    def test_non_recursive_name_returns_none(self):
        graph = fig3_query()
        assert analyze_recursion(graph, "Answer") is None

    def test_recursion_without_base_raises(self):
        recursive_only = rule(
            "R",
            spj(
                [arc("R", r="."), arc("C", x=".")],
                where=eq(path("r", "f"), var("x")),
                select=out(f=var("x")),
            ),
        )
        answer = rule("Answer", spj([arc("R", a=".")]))
        graph = query(recursive_only, answer)
        with pytest.raises(QueryModelError):
            analyze_recursion(graph, "R")

    def test_mismatched_part_fields_raise(self):
        base = rule("R", spj([arc("C", x=".")], select=out(a=var("x"))))
        recursive = rule(
            "R",
            spj(
                [arc("R", r="."), arc("C", x=".")],
                where=eq(path("r", "b"), var("x")),
                select=out(b=var("x")),
            ),
        )
        answer = rule("Answer", spj([arc("R", a=".")]))
        graph = query(base, recursive, answer)
        with pytest.raises(QueryModelError):
            analyze_recursion(graph, "R")


class TestCanPush:
    def test_invariant_rooted_path_pushable(self):
        assert can_push_paths(
            [path("i", "master", "works")], {"i"}, {"master"}
        )

    def test_non_invariant_rooted_path_blocked(self):
        assert not can_push_paths([path("i", "gen")], {"i"}, {"master"})

    def test_whole_tuple_reference_blocked(self):
        assert not can_push_paths([var("i")], {"i"}, {"master"})

    def test_foreign_variable_paths_ignored(self):
        assert can_push_paths([path("c", "name")], {"i"}, {"master"})
