"""Tests for the rewrite step (union + fixpoint actions)."""

import pytest

from repro.core.actions import Action, Application, saturate
from repro.core.rewrite import fixpoint_action, rewrite, union_action
from repro.querygraph.graph import FixNode, SPJNode, UnionNode
from repro.querygraph.builder import arc, out, path, query, rule, spj, var
from repro.workloads import fig2_query, fig3_query


class TestActionFramework:
    def test_saturate_applies_until_fixpoint(self):
        def finder(value):
            if value < 5:
                yield Application(counter_action, f"inc {value}", lambda: value + 1)

        counter_action = Action("inc", finder)
        assert saturate(0, [counter_action]) == 5

    def test_saturate_trace(self):
        def finder(value):
            if value < 2:
                yield Application(action, f"inc {value}", lambda: value + 1)

        action = Action("inc", finder)
        trace = []
        saturate(0, [action], trace=trace)
        assert trace == ["inc: inc 0", "inc: inc 1"]

    def test_action_without_finder_raises(self):
        with pytest.raises(NotImplementedError):
            list(Action("empty").applications(None))

    def test_first_application_none_when_inapplicable(self):
        action = Action("never", lambda granule: iter(()))
        assert action.first_application(object()) is None


class TestUnionAction:
    def test_merges_multiple_rules(self):
        graph = fig3_query()
        application = union_action.first_application(graph)
        assert application is not None
        merged = application.apply()
        producers = merged.producers_of("Influencer")
        assert len(producers) == 1
        assert isinstance(producers[0].node, UnionNode)

    def test_not_applicable_to_single_rule(self):
        graph = fig2_query()
        assert union_action.first_application(graph) is None


class TestFixpointAction:
    def test_wraps_recursive_name(self):
        graph = fig3_query()
        merged = union_action.first_application(graph).apply()
        application = fixpoint_action.first_application(merged)
        assert application is not None
        wrapped = application.apply()
        node = wrapped.producers_of("Influencer")[0].node
        assert isinstance(node, FixNode)
        assert node.name == "Influencer"

    def test_waits_for_union(self):
        # With two rules still separate, fixpoint does not fire.
        graph = fig3_query()
        assert fixpoint_action.first_application(graph) is None

    def test_not_applicable_to_non_recursive(self):
        graph = fig2_query()
        assert fixpoint_action.first_application(graph) is None


class TestRewriteProcedure:
    def test_rewrite_fig3(self):
        graph = fig3_query()
        rewritten = rewrite(graph)
        node = rewritten.producers_of("Influencer")[0].node
        assert isinstance(node, FixNode)
        assert isinstance(node.body, UnionNode)
        answer = rewritten.producers_of("Answer")[0].node
        assert isinstance(answer, SPJNode)

    def test_rewrite_is_idempotent(self):
        rewritten = rewrite(fig3_query())
        again = rewrite(rewritten)
        assert len(again.rules) == len(rewritten.rules)

    def test_rewrite_leaves_non_recursive_untouched(self):
        graph = fig2_query()
        rewritten = rewrite(graph)
        assert isinstance(rewritten.producers_of("Answer")[0].node, SPJNode)

    def test_rewrite_trace_records_actions(self):
        trace = []
        rewrite(fig3_query(), trace)
        assert any("union" in entry for entry in trace)
        assert any("fixpoint" in entry for entry in trace)

    def test_union_of_three_rules(self):
        r1 = rule("V", spj([arc("Composer", x=".")], select=out(n=path("x", "name"))))
        r2 = rule("V", spj([arc("Instrument", y=".")], select=out(n=path("y", "name"))))
        r3 = rule("V", spj([arc("Composition", z=".")], select=out(n=path("z", "title"))))
        answer = rule("Answer", spj([arc("V", v=".")], select=out(n=path("v", "n"))))
        graph = query(r1, r2, r3, answer)
        rewritten = rewrite(graph)
        node = rewritten.producers_of("V")[0].node
        assert isinstance(node, UnionNode)
        assert len(node.parts) == 3
