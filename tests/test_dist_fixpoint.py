"""Unit tests for the distribution subsystem: the exchange codec, the
shard map, the scatter-gather fixpoint's semantics, failure/cleanup
behaviour, observability (EXPLAIN ANALYZE, runtime metrics, per-shard
telemetry) and the cluster snapshot."""

import json
import threading

import pytest

from repro.core import cost_controlled_optimizer
from repro.dist import (
    ShardCluster,
    ShardMap,
    decode_tuples,
    encode_tuples,
    hash_shard,
    range_shard,
)
from repro.dist import exchange
from repro.dist.shard import ShardSession
from repro.engine import Engine
from repro.errors import FixpointLimitError, ProtocolError
from repro.obs import PlanProfiler, build_explain, render_explain
from repro.service import protocol
from repro.physical.storage import Oid
from repro.workloads import MusicConfig, generate_music_database
from repro.workloads.queries import fig3_query


@pytest.fixture(scope="module")
def music_db():
    db = generate_music_database(
        MusicConfig(lineages=3, generations=5, works_per_composer=2, seed=13)
    )
    db.build_paper_indexes()
    return db


@pytest.fixture(scope="module")
def fig3_plan(music_db):
    graph = fig3_query()
    return cost_controlled_optimizer(music_db.physical).optimize(graph).plan


# -- exchange codec -----------------------------------------------------------


def test_exchange_round_trips_oids_atoms_and_tuples():
    tuples = [
        {"a": Oid(7), "b": "Bach", "c": 3, "d": None, "e": True},
        {"a": Oid(9), "nested": (Oid(1), (2, "x"), None)},
    ]
    frames = encode_tuples("delta", "Influencer", 2, 1, tuples)
    assert all(isinstance(frame, bytes) for frame in frames)
    decoded = decode_tuples(frames)
    assert decoded == tuples
    # Oids stay Oids, not ints — identity must survive the wire.
    assert isinstance(decoded[0]["a"], Oid)
    assert isinstance(decoded[1]["nested"][0], Oid)


def test_exchange_empty_batch_is_one_empty_frame():
    frames = encode_tuples("result", "f", 0, 0, [])
    assert len(frames) == 1
    assert decode_tuples(frames) == []


def test_exchange_splits_oversized_payloads(monkeypatch):
    monkeypatch.setattr(protocol, "MAX_LINE_BYTES", 512)
    tuples = [{"k": i, "pad": "x" * 64} for i in range(40)]
    frames = encode_tuples("delta", "f", 1, 0, tuples)
    assert len(frames) > 1
    assert all(len(frame) <= 512 for frame in frames)
    assert decode_tuples(frames) == tuples


def test_exchange_rejects_a_tuple_too_large_for_any_frame(monkeypatch):
    monkeypatch.setattr(protocol, "MAX_LINE_BYTES", 64)
    with pytest.raises(ProtocolError, match="frame limit"):
        encode_tuples("delta", "f", 1, 0, [{"pad": "y" * 256}])


def test_exchange_rejects_unencodable_values():
    with pytest.raises(ProtocolError, match="cannot cross the shard exchange"):
        encode_tuples("delta", "f", 0, 0, [{"bad": object()}])


def test_exchange_rejects_malformed_oid_marker():
    line = protocol.encode(
        {"op": "delta", "tuples": [{"a": {"not_an_oid": 1}}]}
    )
    with pytest.raises(ProtocolError, match="malformed oid marker"):
        decode_tuples([line])


def test_exchange_stats_count_both_legs():
    stats = exchange.ExchangeStats()
    frames = encode_tuples("delta", "f", 0, 0, [{"a": 1}, {"a": 2}])
    stats.count(frames, 2)
    other = exchange.ExchangeStats()
    other.count(frames, 2)
    stats.merge(other)
    assert stats.tuples == 4
    assert stats.frames == 2 * len(frames)
    assert stats.bytes == 2 * sum(len(frame) for frame in frames)


# -- shard map ----------------------------------------------------------------


def test_shard_map_defaults_to_replicated():
    shard_map = ShardMap(4)
    shard_map.place_replicated("Composer")
    assert not shard_map.is_partitioned("Composer")
    assert shard_map.shard_of("Composer", {"any": 1}) is None
    assert not shard_map.is_partitioned("NeverPlaced")


def test_shard_map_hash_routing_is_stable_and_in_range():
    shard_map = ShardMap(4)
    shard_map.place_partitioned("Influencer", ["master", "gen"])
    assert shard_map.is_partitioned("Influencer")
    assert shard_map.partition_key("Influencer") == ("master", "gen")
    values = {"master": Oid(3), "gen": 2, "extra": "ignored"}
    first = shard_map.shard_of("Influencer", values)
    assert first is not None and 0 <= first < 4
    assert shard_map.shard_of("Influencer", values) == first
    placements = shard_map.to_dict()["placements"]
    assert placements["Influencer"]["kind"] == "partitioned"
    assert placements["Influencer"]["scheme"] == "hash"


def test_hash_shard_falls_back_to_repr_for_unhashable_keys():
    assert 0 <= hash_shard(([1], {"a": 2}), 4) < 4


def test_range_shard_routes_by_boundaries():
    boundaries = [10, 20, 30]
    assert range_shard(5, boundaries) == 0
    assert range_shard(10, boundaries) == 1
    assert range_shard(25, boundaries) == 2
    assert range_shard(99, boundaries) == 3


def test_shard_map_range_placement_validates_shape():
    shard_map = ShardMap(3)
    with pytest.raises(ValueError):
        shard_map.place_partitioned(
            "X", ["a", "b"], range_boundaries=[1, 2]
        )
    with pytest.raises(ValueError):
        shard_map.place_partitioned("X", ["a"], range_boundaries=[1])
    shard_map.place_partitioned("X", ["a"], range_boundaries=[10, 20])
    assert shard_map.shard_of("X", {"a": 15}) == 1


# -- distributed fixpoint semantics ------------------------------------------


def test_distributed_fixpoint_matches_serial(music_db, fig3_plan):
    serial = Engine(music_db.physical).execute(fig3_plan)
    with ShardCluster(music_db.physical, 4) as cluster:
        for width in (2, 4):
            dist = Engine(
                music_db.physical, shards=width, cluster=cluster
            ).execute(fig3_plan)
            assert dist.answer_set() == serial.answer_set()
            assert dist.metrics.total_tuples == serial.metrics.total_tuples
            assert dict(dist.metrics.tuples_by_node) == dict(
                serial.metrics.tuples_by_node
            )
            assert dist.metrics.shards_used == width
            assert dist.metrics.exchange_rounds > 0
            assert dist.metrics.exchange_tuples > 0
            assert dist.metrics.exchange_bytes > 0
            # Per-shard attribution: shard work sums to a positive
            # total and never names a shard outside the width.
            assert dist.metrics.tuples_by_shard
            assert set(dist.metrics.tuples_by_shard) <= set(range(width))
            assert sum(dist.metrics.reads_by_shard.values()) > 0


def test_shards_without_cluster_falls_back_to_serial(music_db, fig3_plan):
    serial = Engine(music_db.physical).execute(fig3_plan)
    knobbed = Engine(music_db.physical, shards=4).execute(fig3_plan)
    assert knobbed.answer_set() == serial.answer_set()
    assert knobbed.metrics.shards_used == 0
    assert knobbed.metrics.exchange_rounds == 0


def test_cluster_snapshot_reports_placement_and_buffers(music_db, fig3_plan):
    with ShardCluster(music_db.physical, 2) as cluster:
        Engine(music_db.physical, shards=2, cluster=cluster).execute(fig3_plan)
        snapshot = cluster.snapshot()
    assert snapshot["shards"] == 2
    assert len(snapshot["buffers"]) == 2
    assert all(b["logical_reads"] >= 0 for b in snapshot["buffers"])
    # The fixpoint recorded its per-round hash partitioning.
    kinds = {
        entry["kind"]
        for entry in snapshot["shard_map"]["placements"].values()
    }
    assert "partitioned" in kinds
    assert "replicated" in kinds


# -- failure and cleanup ------------------------------------------------------


def _extent_names(physical):
    return set(physical.store.extent_names())


def test_fixpoint_limit_aborts_and_cleans_up(music_db, fig3_plan):
    before = _extent_names(music_db.physical)
    with ShardCluster(music_db.physical, 2) as cluster:
        engine = Engine(
            music_db.physical, shards=2, cluster=cluster, max_fix_iterations=1
        )
        with pytest.raises(FixpointLimitError):
            engine.execute(fig3_plan)
        # Coordinator temp dropped, and every shard session's staging
        # extent dropped with it.
        assert _extent_names(music_db.physical) == before
        for worker in cluster.workers:
            assert not any(
                name.startswith("shard") for name in worker.schema.store.extent_names()
                if name not in before
            )


def test_shard_error_propagates_to_coordinator(music_db, fig3_plan, monkeypatch):
    real_evaluate = ShardSession.evaluate
    calls = {"n": 0}

    def failing_evaluate(self, part, env):
        calls["n"] += 1
        if calls["n"] > 2:
            raise RuntimeError("shard exploded")
        return real_evaluate(self, part, env)

    monkeypatch.setattr(ShardSession, "evaluate", failing_evaluate)
    before = _extent_names(music_db.physical)
    with ShardCluster(music_db.physical, 2) as cluster:
        engine = Engine(music_db.physical, shards=2, cluster=cluster)
        with pytest.raises(RuntimeError, match="shard exploded"):
            engine.execute(fig3_plan)
    assert _extent_names(music_db.physical) == before


# -- observability ------------------------------------------------------------


def test_explain_analyze_shows_exchange_per_round(music_db, fig3_plan):
    with ShardCluster(music_db.physical, 2) as cluster:
        engine = Engine(music_db.physical, shards=2, cluster=cluster)
        profiler = PlanProfiler()
        engine.execute(fig3_plan, profiler=profiler)
        model = cost_controlled_optimizer(music_db.physical).cost_model
        tree = build_explain(fig3_plan, model, profiler)
    rendered = render_explain(tree)
    assert "shards=2" in rendered
    assert "exchanged=" in rendered


def test_shard_telemetry_jsonl(music_db, fig3_plan, tmp_path, monkeypatch):
    target = tmp_path / "shards.jsonl"
    monkeypatch.setenv("REPRO_SHARD_TELEMETRY", str(target))
    with ShardCluster(music_db.physical, 2) as cluster:
        Engine(music_db.physical, shards=2, cluster=cluster).execute(fig3_plan)
    records = [
        json.loads(line) for line in target.read_text().splitlines()
    ]
    assert records
    expected_keys = {
        "fix",
        "round",
        "shard",
        "scatter_tuples",
        "scatter_bytes",
        "gather_tuples",
        "gather_bytes",
        "logical_reads",
    }
    for record in records:
        assert expected_keys <= set(record)
        assert record["shard"] in (0, 1)
    assert {record["shard"] for record in records} == {0, 1}
    assert max(record["round"] for record in records) >= 1
