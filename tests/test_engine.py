"""Tests for the execution engine: operators, fixpoint, metrics."""

import pytest

from repro.errors import ExecutionError, PlanError
from repro.engine import Engine, ReferenceEvaluator, canonical_row
from repro.engine.fixpoint import flatten_union, partition_parts
from repro.plans import (
    EJ,
    IJ,
    INDEX_JOIN,
    PIJ,
    EntityLeaf,
    Fix,
    Materialize,
    Proj,
    RecLeaf,
    Sel,
    UnionOp,
)
from repro.querygraph.builder import add, and_, const, eq, ge, out, path, var
from repro.workloads import fig3_query


def make_fix():
    base = Proj(
        EntityLeaf("Composer", "x"),
        out(master=path("x", "master"), disciple=var("x"), gen=const(1)),
    )
    recursive = Proj(
        EJ(
            RecLeaf("Influencer", "i"),
            EntityLeaf("Composer", "x"),
            eq(path("i", "disciple"), path("x", "master")),
        ),
        out(
            master=path("i", "master"),
            disciple=var("x"),
            gen=add(path("i", "gen"), const(1)),
        ),
    )
    return Fix(
        "Influencer", UnionOp(base, recursive), "i", "Composer", "master", {"master"}
    )


class TestScansAndSelections:
    def test_scan_binds_every_record(self, indexed_db):
        engine = Engine(indexed_db.physical)
        result = engine.execute(EntityLeaf("Composer", "x"))
        assert len(result) == indexed_db.config.composer_count

    def test_selection_filters(self, indexed_db):
        engine = Engine(indexed_db.physical)
        result = engine.execute(
            Sel(
                EntityLeaf("Composer", "x"),
                eq(path("x", "name"), const("Bach")),
            )
        )
        assert len(result) == 1
        assert result.rows[0]["x"].values["name"] == "Bach"

    def test_indexed_selection_reads_fewer_pages(self, indexed_db):
        engine = Engine(indexed_db.physical)
        indexed = engine.execute(
            Sel(EntityLeaf("Composer", "x"), eq(path("x", "name"), const("Bach")))
        )
        # Indexed access: only the matching record's page is touched.
        assert indexed.metrics.buffer.logical_reads <= 2
        assert indexed.metrics.index_lookups == 1

    def test_method_invocation_in_predicate(self, indexed_db):
        engine = Engine(indexed_db.physical)
        result = engine.execute(
            Sel(EntityLeaf("Composer", "x"), ge(path("x", "age"), const(200)))
        )
        for row in result.rows:
            assert 1992 - row["x"].values["birthyear"] >= 200
        assert engine.metrics.method_eval_weight > 0

    def test_multivalued_path_existential(self, indexed_db):
        engine = Engine(indexed_db.physical)
        result = engine.execute(
            Sel(
                EntityLeaf("Composer", "x"),
                eq(
                    path("x", "works", "instruments", "name"),
                    const("harpsichord"),
                ),
            )
        )
        # Exists-semantics: each composer appears at most once.
        names = [row["x"].values["name"] for row in result.rows]
        assert len(names) == len(set(names))


class TestJoins:
    def test_ij_expands_collections(self, indexed_db):
        engine = Engine(indexed_db.physical)
        result = engine.execute(
            IJ(
                EntityLeaf("Composer", "x"),
                EntityLeaf("Composition", "w"),
                path("x", "works"),
                "w",
            )
        )
        expected = (
            indexed_db.config.composer_count
            * indexed_db.config.works_per_composer
        )
        assert len(result) == expected

    def test_ij_drops_null_references(self, indexed_db):
        engine = Engine(indexed_db.physical)
        result = engine.execute(
            IJ(
                EntityLeaf("Composer", "x"),
                EntityLeaf("Composer", "m"),
                path("x", "master"),
                "m",
            )
        )
        founders = indexed_db.config.lineages
        assert len(result) == indexed_db.config.composer_count - founders

    def test_pij_matches_ij_chain(self, indexed_db):
        engine = Engine(indexed_db.physical)
        chain = IJ(
            IJ(
                EntityLeaf("Composer", "x"),
                EntityLeaf("Composition", "w"),
                path("x", "works"),
                "w",
            ),
            EntityLeaf("Instrument", "ins"),
            path("w", "instruments"),
            "ins",
        )
        pij = PIJ(
            EntityLeaf("Composer", "x"),
            [EntityLeaf("Composition", "w"), EntityLeaf("Instrument", "ins")],
            ["works", "instruments"],
            var("x"),
            ["w", "ins"],
        )
        chain_result = engine.execute(chain)
        pij_result = engine.execute(pij)
        assert chain_result.answer_set() == pij_result.answer_set()
        assert pij_result.metrics.index_lookups > 0

    def test_nested_loop_join(self, indexed_db):
        engine = Engine(indexed_db.physical)
        result = engine.execute(
            EJ(
                Sel(
                    EntityLeaf("Composer", "a"),
                    eq(path("a", "name"), const("Bach")),
                ),
                EntityLeaf("Composer", "b"),
                eq(path("b", "master"), var("a")),
            )
        )
        # Bach's direct disciples.
        for row in result.rows:
            assert row["b"].values["master"] == row["a"].oid

    def test_index_join_equals_nested_loop(self, indexed_db):
        left = Sel(
            EntityLeaf("Composer", "a"), ge(path("a", "birthyear"), const(1700))
        )
        right = EntityLeaf("Composer", "b")
        predicate = eq(path("a", "name"), path("b", "name"))
        engine = Engine(indexed_db.physical)
        nested = engine.execute(EJ(left, right, predicate))
        indexed = engine.execute(EJ(left, right, predicate, INDEX_JOIN))
        assert nested.answer_set() == indexed.answer_set()
        assert indexed.metrics.index_lookups > 0

    def test_index_join_without_index_raises(self, small_db):
        plan = EJ(
            EntityLeaf("Composer", "a"),
            EntityLeaf("Composer", "b"),
            eq(path("a", "birthyear"), path("b", "birthyear")),
            INDEX_JOIN,
        )
        engine = Engine(small_db.physical)
        with pytest.raises(ExecutionError):
            engine.execute(plan)


class TestFixpoint:
    def test_flatten_and_partition(self):
        fix = make_fix()
        parts = flatten_union(fix.body)
        assert len(parts) == 2
        base, recursive = partition_parts(fix)
        assert len(base) == 1 and len(recursive) == 1

    def test_fixpoint_computes_transitive_closure(self, indexed_db):
        engine = Engine(indexed_db.physical)
        result = engine.execute(make_fix())
        config = indexed_db.config
        expected = sum(
            config.lineages * (config.generations - g)
            for g in range(1, config.generations)
        )
        assert len(result) == expected
        assert engine.metrics.fix_iterations == config.generations - 1

    def test_fixpoint_gen_values(self, indexed_db):
        engine = Engine(indexed_db.physical)
        result = engine.execute(make_fix())
        gens = {row["i"].values["gen"] for row in result.rows}
        assert gens == set(range(1, indexed_db.config.generations))

    def test_fixpoint_deduplicates(self, indexed_db):
        engine = Engine(indexed_db.physical)
        result = engine.execute(make_fix())
        keys = {canonical_row(dict(row["i"].values)) for row in result.rows}
        assert len(keys) == len(result)

    def test_temp_extents_dropped_after_execution(self, indexed_db):
        engine = Engine(indexed_db.physical)
        before = set(indexed_db.store.extent_names())
        engine.execute(make_fix())
        assert set(indexed_db.store.extent_names()) == before

    def test_keep_temps_option(self, indexed_db):
        engine = Engine(indexed_db.physical, keep_temps=True)
        before = set(indexed_db.store.extent_names())
        engine.execute(make_fix())
        assert set(indexed_db.store.extent_names()) > before

    def test_divergent_fixpoint_capped(self, indexed_db):
        engine = Engine(indexed_db.physical, max_fix_iterations=3)
        base = Proj(EntityLeaf("Composer", "x"), out(n=path("x", "name"), k=const(0)))
        recursive = Proj(
            Sel(RecLeaf("R", "r"), ge(path("r", "k"), const(0))),
            out(n=path("r", "n"), k=add(path("r", "k"), const(1))),
        )
        divergent = Fix("R", UnionOp(base, recursive), "r")
        with pytest.raises(ExecutionError):
            engine.execute(divergent)

    def test_rec_leaf_outside_fix_rejected(self, indexed_db):
        engine = Engine(indexed_db.physical)
        with pytest.raises(PlanError):
            engine.execute(Sel(RecLeaf("R", "r"), ge(path("r", "k"), const(0))))


class TestMaterializeAndUnion:
    def test_union_concatenates(self, indexed_db):
        engine = Engine(indexed_db.physical)
        left = Proj(EntityLeaf("Composer", "x"), out(n=path("x", "name")))
        right = Proj(EntityLeaf("Instrument", "y"), out(n=path("y", "name")))
        result = engine.execute(UnionOp(left, right))
        assert len(result) == (
            indexed_db.config.composer_count + indexed_db.config.instruments
        )

    def test_materialize_round_trips(self, indexed_db):
        engine = Engine(indexed_db.physical)
        inner = Proj(EntityLeaf("Composer", "x"), out(n=path("x", "name")))
        result = engine.execute(
            Proj(Materialize("V", inner, "v"), out(name=path("v", "n")))
        )
        names = {row["name"] for row in result.rows}
        assert "Bach" in names


class TestMetricsAndEquivalence:
    def test_measured_cost_combines_io_and_cpu(self, indexed_db):
        engine = Engine(indexed_db.physical)
        result = engine.execute(
            Sel(EntityLeaf("Composer", "x"), ge(path("x", "birthyear"), const(0)))
        )
        assert result.metrics.measured_cost() > 0
        assert result.metrics.predicate_evals == indexed_db.config.composer_count

    def test_reference_evaluator_agrees_with_engine(self, indexed_db):
        reference = ReferenceEvaluator(indexed_db.physical)
        want = reference.answer_set(fig3_query())
        fix = make_fix()
        plan = Proj(
            IJ(
                Sel(
                    PIJ(
                        IJ(
                            Sel(fix, ge(path("i", "gen"), const(6))),
                            EntityLeaf("Composer", "m"),
                            path("i", "master"),
                            "m",
                        ),
                        [
                            EntityLeaf("Composition", "w"),
                            EntityLeaf("Instrument", "ins"),
                        ],
                        ["works", "instruments"],
                        var("m"),
                        ["w", "ins"],
                    ),
                    eq(path("ins", "name"), const("harpsichord")),
                ),
                EntityLeaf("Composer", "d"),
                path("i", "disciple"),
                "d",
            ),
            out(name=path("d", "name")),
        )
        engine = Engine(indexed_db.physical)
        assert engine.execute(plan).answer_set() == want
