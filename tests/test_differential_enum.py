"""Differential harness, enumeration dimension: plans chosen by the
memoized enumerator (``--strategy enum``) run through the answer-set
equality sweep — batch size {1, 256} × parallelism {1, 4} ×
shards {1, 2} — against the reference evaluator.

The enumerator applies every move in the transformation graph
(selection pushes in/out of Fix, join pushes, join/operator reorders),
so this sweep is the end-to-end proof that each of those moves is
semantics-preserving: whatever plan ``enum`` lands on must produce the
identical answer set and per-node tuple counts under every execution
configuration the engine supports.
"""

import pytest
from hypothesis import given, settings

from repro.core import enumerating_optimizer
from repro.dist import ShardCluster

from tests.diff_harness import (
    DIFF_SETTINGS,
    MAX_EXAMPLES,
    build_music_db,
    build_parts_db,
    flat_queries,
    parts_queries,
    recursive_queries,
    run_differential,
)

BATCH_SIZES = (1, 256)
PARALLELISM_LEVELS = (1, 4)
SHARD_WIDTHS = (1, 2)

#: (batch_size, parallelism, shards) — serial baseline first.
GRID = [
    (batch_size, level, shards)
    for shards in SHARD_WIDTHS
    for level in PARALLELISM_LEVELS
    for batch_size in BATCH_SIZES
]
assert GRID[0] == (1, 1, 1)

# Each example optimizes with the full enumerator and executes an
# 8-configuration grid; cap the sweep so tier-1 stays fast
# (REPRO_DIFF_EXAMPLES still scales it up in CI).
ENUM_SETTINGS = dict(DIFF_SETTINGS, max_examples=min(MAX_EXAMPLES, 10))


@pytest.fixture(scope="module")
def music_db():
    return build_music_db()


@pytest.fixture(scope="module")
def parts_db():
    return build_parts_db()


@pytest.fixture(scope="module")
def music_cluster(music_db):
    with ShardCluster(music_db.physical, max(SHARD_WIDTHS)) as cluster:
        yield cluster


@pytest.fixture(scope="module")
def parts_cluster(parts_db):
    with ShardCluster(parts_db.physical, max(SHARD_WIDTHS)) as cluster:
        yield cluster


@settings(**ENUM_SETTINGS)
@given(graph=flat_queries())
def test_differential_enum_flat_queries(music_db, music_cluster, graph):
    run_differential(
        music_db,
        graph,
        GRID,
        cluster=music_cluster,
        optimizer=enumerating_optimizer,
    )


@settings(**ENUM_SETTINGS)
@given(graph=recursive_queries())
def test_differential_enum_recursive_queries(music_db, music_cluster, graph):
    run_differential(
        music_db,
        graph,
        GRID,
        cluster=music_cluster,
        optimizer=enumerating_optimizer,
    )


@settings(**ENUM_SETTINGS)
@given(graph=parts_queries())
def test_differential_enum_parts_queries(parts_db, parts_cluster, graph):
    run_differential(
        parts_db,
        graph,
        GRID,
        cluster=parts_cluster,
        optimizer=enumerating_optimizer,
    )
