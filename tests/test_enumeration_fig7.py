"""Golden fig7 regression for the enumeration strategy.

Pins, per fig7 configuration (the serial, parallel-4 and shards-4 cost
variants of the Figure-3 recursive query and the join-push query on
the fig7 database), the plan the enumerator chooses — by fingerprint —
and its estimated cost, against ``tests/golden/enumeration_fig7.json``.
Also asserts the headline claim behind ``--strategy enum``: its plan
costs no more than the best plan any randomized strategy (II/SA/2PO)
finds on the same configuration.  Strategy regressions therefore fail
loudly instead of showing up as silent plan-quality drift.

Regenerate the golden file after an intentional optimizer change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/test_enumeration_fig7.py -q
"""

import json
import os

import pytest

from repro.core.optimizer import Optimizer, OptimizerConfig
from repro.cost import CostParameters, DetailedCostModel
from repro.obs.history import plan_fingerprint
from repro.plans.canonical import canonical_fingerprint
from repro.workloads import (
    MusicConfig,
    fig3_query,
    generate_music_database,
    join_push_query,
)


def build_db():
    """The fig7 database (same recipe as bench_fig7_cost_table)."""
    db = generate_music_database(
        MusicConfig(
            lineages=8,
            generations=8,
            works_per_composer=3,
            selective_fraction=0.15,
            seed=6,
        )
    )
    db.build_paper_indexes()
    return db


GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden", "enumeration_fig7.json"
)

QUERIES = {
    "fig3": fig3_query,
    "join_push": join_push_query,
}

#: The fig7 cost-model configurations: the serial Fix, the
#: parallel-worker Fix variant, and the distributed scatter-gather
#: variant (:mod:`repro.cost.distributed`).
CONFIGS = {
    "serial": {},
    "parallel4": {"parallelism": 4},
    "shards4": {"shards": 4},
}

RANDOMIZED = ("ii", "sa", "2po")


@pytest.fixture(scope="module")
def db():
    return build_db()


def _model(db, overrides):
    params = CostParameters()
    for name, value in overrides.items():
        setattr(params, name, value)
    return DetailedCostModel(db.physical, params)


def _optimize(db, graph, strategy, model):
    optimizer = Optimizer(
        db.physical, model, OptimizerConfig(strategy=strategy)
    )
    return optimizer.optimize(graph)


def _current_rows(db):
    rows = {}
    for query_name, make_query in sorted(QUERIES.items()):
        for config_name, overrides in sorted(CONFIGS.items()):
            model = _model(db, overrides)
            result = _optimize(db, make_query(), "enum", model)
            rows[f"{query_name}/{config_name}"] = {
                "fingerprint": plan_fingerprint(result.plan),
                "canonical": canonical_fingerprint(result.plan),
                "cost": round(result.cost, 4),
            }
    return rows


def test_enum_plan_and_cost_pinned(db):
    rows = _current_rows(db)
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
        with open(GOLDEN_PATH, "w") as handle:
            json.dump(rows, handle, indent=2, sort_keys=True)
            handle.write("\n")
        pytest.skip("golden file regenerated")
    with open(GOLDEN_PATH) as handle:
        golden = json.load(handle)
    assert rows == golden, (
        "the enumerator's chosen plan or cost drifted from the golden "
        "fig7 table; if the change is intentional, regenerate with "
        "REPRO_REGEN_GOLDEN=1"
    )


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
@pytest.mark.parametrize("query_name", sorted(QUERIES))
def test_enum_at_least_as_good_as_randomized(db, query_name, config_name):
    model = _model(db, CONFIGS[config_name])
    enum_result = _optimize(db, QUERIES[query_name](), "enum", model)
    for strategy in RANDOMIZED:
        other = _optimize(db, QUERIES[query_name](), strategy, model)
        assert enum_result.cost <= other.cost * (1 + 1e-9), (
            f"enum cost {enum_result.cost} worse than {strategy} "
            f"cost {other.cost} on {query_name}/{config_name}"
        )


def test_enum_memo_engages_on_fig7(db):
    model = _model(db, {})
    result = _optimize(db, fig3_query(), "enum", model)
    stats = result.strategy_stats
    assert stats is not None
    assert stats["memo_hits"] > 0
    assert stats["subplans_memoized"] == stats["candidates_costed"]
