"""QueryTelemetryStore unit tests: fingerprints, q-errors, the bounded
per-plan observation rings, JSONL persistence round-trips, and the
calibration-sample extraction feeding :mod:`repro.cost.calibrate`."""

import json

import pytest

from repro.core.baselines import cost_controlled_optimizer
from repro.lang import compile_text
from repro.obs.history import (
    Observation,
    OperatorActual,
    OperatorEstimate,
    PlanHistory,
    QueryTelemetryStore,
    plan_fingerprint,
    q_error,
    query_class,
)
from repro.workloads import MusicConfig, generate_music_database

SCAN = "select [name: x.name] from x in Composer where x.birthyear >= 1700;"
LOOKUP = 'select [name: x.name] from x in Composer where x.name = "Bach";'


@pytest.fixture(scope="module")
def db():
    db = generate_music_database(
        MusicConfig(lineages=3, generations=5, works_per_composer=2, seed=7)
    )
    db.build_paper_indexes()
    return db


def plan_of(db, text):
    graph = compile_text(text, db.catalog)
    return cost_controlled_optimizer(db.physical).optimize(graph).plan


def observation(
    request_id="r1",
    estimated=10.0,
    measured=12.0,
    seconds=0.002,
    rows=3,
    events=None,
    operators=None,
):
    return Observation(
        at=0.0,
        request_id=request_id,
        estimated_cost=estimated,
        measured_cost=measured,
        execute_seconds=seconds,
        rows=rows,
        events=events or {},
        operators=operators or {},
    )


class TestFingerprints:
    def test_same_plan_same_fingerprint(self, db):
        assert plan_fingerprint(plan_of(db, SCAN)) == plan_fingerprint(
            plan_of(db, SCAN)
        )

    def test_different_plans_differ(self, db):
        assert plan_fingerprint(plan_of(db, SCAN)) != plan_fingerprint(
            plan_of(db, LOOKUP)
        )

    def test_fingerprint_shape(self, db):
        fp = plan_fingerprint(plan_of(db, SCAN))
        assert len(fp) == 16
        int(fp, 16)  # hex

    def test_query_class_is_stable_and_short(self):
        assert query_class(SCAN) == query_class(SCAN)
        assert query_class(SCAN) != query_class(LOOKUP)
        assert len(query_class(SCAN)) == 8


class TestQError:
    def test_symmetric(self):
        assert q_error(10.0, 20.0) == pytest.approx(2.0)
        assert q_error(20.0, 10.0) == pytest.approx(2.0)

    def test_exact_is_one(self):
        assert q_error(5.0, 5.0) == pytest.approx(1.0)

    def test_zero_sides_are_floored(self):
        # A measured cost of zero (fully buffered, no predicate) must
        # not explode the ratio; both zero means a perfect estimate.
        assert q_error(0.0, 0.0) == 1.0
        assert q_error(3.0, 0.0) == pytest.approx(3.0)
        assert q_error(0.0, 3.0) == pytest.approx(3.0)


class TestStoreRecording:
    def test_record_appends_and_bounds_window(self):
        store = QueryTelemetryStore(window=4)
        store.register_plan(SCAN, "fp1", 10.0)
        for run in range(9):
            store.record("fp1", observation(request_id=f"r{run}"))
        history = store.plan("fp1")
        assert history.total_runs == 9
        assert len(history.observations) == 4  # ring bound

    def test_record_unknown_fingerprint_is_noop(self):
        store = QueryTelemetryStore()
        store.record("missing", observation())
        assert store.plan("missing") is None

    def test_plans_for_groups_by_canonical(self):
        store = QueryTelemetryStore()
        store.register_plan(SCAN, "fp1", 10.0)
        store.register_plan(SCAN, "fp2", 8.0)  # re-optimized plan
        store.register_plan(LOOKUP, "fp3", 1.0)
        assert [h.fingerprint for h in store.plans_for(SCAN)] == ["fp1", "fp2"]

    def test_max_plans_drops_least_recently_observed(self):
        store = QueryTelemetryStore(max_plans=2)
        store.register_plan(SCAN, "fp1", 1.0)
        store.register_plan(LOOKUP, "fp2", 1.0)
        store.record("fp1", observation())  # fp1 is now most recent
        store.register_plan("third query;", "fp3", 1.0)
        assert store.plan("fp2") is None
        assert store.plan("fp1") is not None
        assert store.dropped_plans == 1

    def test_misestimates(self):
        store = QueryTelemetryStore()
        estimates = {
            "n0": OperatorEstimate("n0", "Sel", "Sel", est_rows=10.0),
        }
        store.register_plan(SCAN, "fp1", 10.0, estimates)
        store.record(
            "fp1",
            observation(
                estimated=10.0,
                measured=20.0,
                operators={"n0": OperatorActual(rows=20.0)},
            ),
        )
        history = store.plan("fp1")
        assert history.cost_misestimate() == pytest.approx(2.0)
        ops = history.operator_misestimates()
        assert ops["n0"]["rows_q_error"] == pytest.approx(2.0)
        by_query = store.misestimate_by_query()
        assert by_query[query_class(SCAN)]["cost_misestimate"] == pytest.approx(
            2.0
        )

    def test_calibration_samples_carry_target(self):
        store = QueryTelemetryStore()
        store.register_plan(SCAN, "fp1", 10.0)
        store.record(
            "fp1",
            observation(
                measured=42.0,
                events={"physical_reads": 40.0, "predicate_evals": 20.0},
            ),
        )
        store.record("fp1", observation(events={}))  # no events -> skipped
        (sample,) = store.calibration_samples()
        assert sample["target"] == 42.0
        assert sample["physical_reads"] == 40.0


class TestPersistence:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        store = QueryTelemetryStore(persist_path=str(path))
        store.register_plan(
            SCAN,
            "fp1",
            10.0,
            {"n0": OperatorEstimate("n0", "Sel", "Sel", est_rows=5.0)},
        )
        store.record(
            "fp1",
            observation(
                events={"physical_reads": 4.0},
                operators={"n0": OperatorActual(rows=6.0)},
            ),
        )
        store.record_event("recalibration", samples=12)
        store.close()

        reloaded = QueryTelemetryStore(persist_path=str(path))
        history = reloaded.plan("fp1")
        assert history is not None
        assert history.total_runs == 1
        assert history.estimates["n0"].est_rows == 5.0
        (obs,) = list(history.observations)
        assert obs.operators["n0"].rows == 6.0
        assert [e["event"] for e in reloaded.events] == ["recalibration"]
        reloaded.close()

    def test_corrupt_lines_are_skipped(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        store = QueryTelemetryStore(persist_path=str(path))
        store.register_plan(SCAN, "fp1", 10.0)
        store.record("fp1", observation())
        store.close()
        with open(path, "a") as handle:
            handle.write("{truncated\n")
            handle.write(json.dumps({"kind": "unknown"}) + "\n")
        reloaded = QueryTelemetryStore(persist_path=str(path))
        assert reloaded.plan("fp1").total_runs == 1
        reloaded.close()

    def test_snapshot_shape(self):
        store = QueryTelemetryStore()
        store.register_plan(SCAN, "fp1", 10.0)
        store.record("fp1", observation())
        snapshot = store.snapshot()
        assert snapshot["plans"] == 1
        (entry,) = snapshot["queries"]
        assert entry["query"] == SCAN
        assert entry["plans"][0]["fingerprint"] == "fp1"
        assert entry["plans"][0]["runs"] == 1


class TestValidation:
    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            QueryTelemetryStore(window=0)

    def test_bad_max_plans_rejected(self):
        with pytest.raises(ValueError):
            QueryTelemetryStore(max_plans=0)

    def test_history_median(self):
        history = PlanHistory("fp", SCAN, 1.0)
        assert history.median_latency() is None
        for seconds in (0.004, 0.001, 0.002):
            history.observations.append(observation(seconds=seconds))
        assert history.median_latency() == pytest.approx(0.002)
