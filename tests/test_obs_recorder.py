"""The flight recorder: bundle assembly, recording caps, and
deterministic replay (plan-fingerprint + answer-set equality)."""

import json
import os

import pytest

from repro.core.baselines import cost_controlled_optimizer
from repro.engine import Engine
from repro.lang.compile import compile_text
from repro.obs.history import plan_fingerprint
from repro.obs.recorder import (
    BUNDLE_VERSION,
    FlightRecorder,
    answer_fingerprint,
    build_bundle,
    database_from_config,
    load_bundle,
    replay_bundle,
)

RECIPE = {"db": "music", "seed": 21, "lineages": 3, "generations": 6}

SCAN = "select [name: x.name] from x in Composer where x.birthyear >= 1700;"

FIG3 = """
view Influencer as
  select [master: x.master, disciple: x, gen: 1] from x in Composer
  union
  select [master: i.master, disciple: x, gen: i.gen + 1]
  from i in Influencer, x in Composer where i.disciple = x.master;

select [name: i.disciple.name, gen: i.gen]
from i in Influencer
where i.gen >= 2;
"""


def run_and_bundle(text, database, tmp_path=None, reason="diagnose"):
    """Optimize + execute *text* and wrap the run into a bundle."""
    physical = database.physical
    graph = compile_text(text, database.catalog)
    result = cost_controlled_optimizer(physical).optimize(graph)
    execution = Engine(physical).execute(result.plan)
    return build_bundle(
        reason=reason,
        query_text=text,
        canonical=text,
        query_cls="testcls",
        plan=result.plan,
        fingerprint=plan_fingerprint(result.plan),
        estimated_cost=result.cost,
        rows=execution.rows,
        measured_cost=execution.metrics.measured_cost(),
        execute_seconds=0.01,
        fix_iterations=execution.metrics.fix_iterations,
        knobs={"parallelism": 1, "shards": 1, "max_fix_iterations": 256},
        physical=physical,
        database=RECIPE,
    )


class TestFingerprints:
    def test_answer_fingerprint_order_insensitive(self):
        rows = [{"a": 1, "b": 2}, {"a": 3, "b": 4}]
        assert answer_fingerprint(rows) == answer_fingerprint(rows[::-1])

    def test_answer_fingerprint_detects_difference(self):
        assert answer_fingerprint([{"a": 1}]) != answer_fingerprint([{"a": 2}])

    def test_database_recipe_deterministic(self):
        from repro.service.plan_cache import schema_fingerprint

        first = database_from_config(RECIPE)
        second = database_from_config(RECIPE)
        assert schema_fingerprint(first.physical) == schema_fingerprint(
            second.physical
        )

    def test_parts_recipe(self):
        db = database_from_config({"db": "parts", "seed": 7})
        assert db.physical is not None


class TestBundles:
    def test_bundle_shape(self):
        db = database_from_config(RECIPE)
        bundle = run_and_bundle(SCAN, db)
        assert bundle["bundle_version"] == BUNDLE_VERSION
        assert bundle["query"]["class"] == "testcls"
        assert bundle["plan"]["fingerprint"]
        assert bundle["plan"]["rendered"]
        assert bundle["execution"]["answer_fingerprint"]
        assert bundle["store"]["schema"] and bundle["store"]["stats"]
        assert bundle["database"] == RECIPE
        # The whole bundle must be JSON-serializable as-is.
        json.dumps(bundle, default=str)

    def test_recorder_writes_and_caps(self, tmp_path):
        recorder = FlightRecorder(
            directory=str(tmp_path), max_bundles=3, per_class=2
        )
        db = database_from_config(RECIPE)
        bundle = run_and_bundle(SCAN, db)
        first = recorder.record(bundle)
        second = recorder.record(bundle)
        assert first and os.path.exists(first)
        assert second and second != first
        # Third hits the per-class cap.
        assert recorder.record(bundle) is None
        other = dict(bundle, query=dict(bundle["query"], **{"class": "b"}))
        assert recorder.record(other) is not None
        # Fourth hits the global cap.
        third = dict(bundle, query=dict(bundle["query"], **{"class": "c"}))
        assert recorder.record(third) is None
        snap = recorder.snapshot()
        assert snap["written"] == 3 and snap["suppressed"] == 2

    def test_memory_only_recorder(self):
        recorder = FlightRecorder(directory=None)
        db = database_from_config(RECIPE)
        assert recorder.record(run_and_bundle(SCAN, db)) is None
        assert recorder.written == 1 and len(recorder.recent) == 1

    def test_load_bundle_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"bundle_version": 99}))
        with pytest.raises(ValueError):
            load_bundle(str(path))


class TestReplay:
    def test_replay_matches_scan(self, tmp_path):
        db = database_from_config(RECIPE)
        bundle = run_and_bundle(SCAN, db)
        path = tmp_path / "bundle.json"
        path.write_text(json.dumps(bundle, default=str))
        report = replay_bundle(load_bundle(str(path)))
        assert report["schema_match"]
        assert report["plan_match"] and report["answer_match"]
        assert report["matched"]
        assert report["row_count"] == report["expected_row_count"]

    def test_replay_matches_recursive_query(self):
        db = database_from_config(RECIPE)
        bundle = run_and_bundle(FIG3, db)
        report = replay_bundle(bundle)
        assert report["matched"]

    def test_replay_detects_answer_divergence(self):
        db = database_from_config(RECIPE)
        bundle = run_and_bundle(SCAN, db)
        bundle["execution"]["answer_fingerprint"] = "0" * 16
        report = replay_bundle(bundle)
        assert not report["answer_match"] and not report["matched"]

    def test_replay_detects_plan_divergence(self):
        db = database_from_config(RECIPE)
        bundle = run_and_bundle(SCAN, db)
        bundle["plan"]["fingerprint"] = "f" * 16
        report = replay_bundle(bundle)
        assert not report["plan_match"] and not report["matched"]

    def test_replay_against_prebuilt_database(self):
        db = database_from_config(RECIPE)
        bundle = run_and_bundle(SCAN, db)
        bundle["database"] = None
        report = replay_bundle(bundle, database=db)
        assert report["matched"]

    def test_replay_without_recipe_or_database_fails(self):
        db = database_from_config(RECIPE)
        bundle = run_and_bundle(SCAN, db)
        bundle["database"] = None
        with pytest.raises(ValueError):
            replay_bundle(bundle)
