"""The overhead governor and the EWMA+MAD anomaly detector.

Unit-level: the sampling policy (grace, recovery, dominant-class
degradation, overload, anomaly pinning, the probability floor), the
deterministic stride sampler the policy rides on, and the detector's
warmup / one-sided scoring / baseline-contamination guarantees.
"""

import pytest

from repro.obs.anomaly import AnomalyConfig, AnomalyDetector
from repro.obs.governor import (
    GovernorConfig,
    ObservabilityGovernor,
    measure_probe_cost,
)
from repro.obs.sampler import FULL_DETAIL, StrideSampler, stride_for


def governor(**overrides) -> ObservabilityGovernor:
    """A governor with a fixed probe cost (no startup micro-benchmark)
    so spend arithmetic in the tests is exact."""
    defaults = dict(budget=0.05, probe_cost=0.001, grace_runs=0)
    defaults.update(overrides)
    return ObservabilityGovernor(GovernorConfig(**defaults))


class TestStrideSampler:
    def test_stride_for_probability(self):
        assert stride_for(1.0) == 1
        assert stride_for(0.5) == 2
        assert stride_for(0.25) == 4
        assert stride_for(1.0 / 64.0) == 64

    def test_deterministic_one_in_k(self):
        sampler = StrideSampler()
        admitted = [sampler.admit("q", 0.25)[0] for _ in range(16)]
        assert admitted.count(True) == 4
        # Deterministic: the same positions admit every time.
        sampler2 = StrideSampler()
        assert [sampler2.admit("q", 0.25)[0] for _ in range(16)] == admitted

    def test_weight_is_inverse_probability(self):
        sampler = StrideSampler()
        _admitted, stride = sampler.admit("q", 0.125)
        assert stride == 8

    def test_forget_restarts_the_stride(self):
        sampler = StrideSampler()
        first = sampler.admit("q", 0.5)[0]
        sampler.admit("q", 0.5)
        sampler.forget("q")
        assert sampler.admit("q", 0.5)[0] == first


class TestGovernorPolicy:
    def test_full_detail_default(self):
        assert FULL_DETAIL.sampled and FULL_DETAIL.weight == 1.0

    def test_new_class_grace(self):
        gov = governor(grace_runs=2)
        # Grossly over budget, but a brand-new class still gets its
        # grace runs at full detail.
        gov.charge("other", wall_seconds=1.0, probes=10_000)
        assert gov.decide("fresh").reason == "new-class"
        assert gov.decide("fresh").reason == "new-class"
        assert gov.decide("fresh").reason != "new-class"

    def test_under_budget_stays_full(self):
        gov = governor()
        for _ in range(10):
            decision = gov.decide("q")
            assert decision.mode == "full" and decision.weight == 1.0
            gov.charge("q", wall_seconds=1.0, probes=10)  # 1% spend
        assert gov.spent_fraction() < 0.05

    def test_dominant_class_degrades_over_budget(self):
        gov = governor()
        # 20% spend, all attributable to "hot".
        for _ in range(5):
            gov.decide("hot")
            gov.charge("hot", wall_seconds=1.0, probes=200)
        modes = set()
        weights = set()
        for _ in range(16):
            decision = gov.decide("hot")
            modes.add(decision.mode)
            weights.add(decision.weight)
            gov.charge("hot", wall_seconds=1.0, probes=200)
        assert "skip" in modes  # head sampling rejected most runs
        assert max(weights) > 1.0  # admitted runs carry the stride

    def test_minor_class_keeps_full_detail(self):
        gov = governor()
        # "hot" pushes spend over budget (8%) but below the overload
        # threshold (2x budget = 10%); "rare" spends nothing.
        for _ in range(5):
            gov.decide("hot")
            gov.charge("hot", wall_seconds=1.0, probes=80)
            gov.decide("rare")
            gov.charge("rare", wall_seconds=0.01, probes=0)
        decision = gov.decide("rare")
        assert decision.mode == "full" and decision.reason == "minor-class"

    def test_overload_degrades_every_class(self):
        gov = governor(overload_ratio=2.0)
        # Two classes each push spend far past 2x budget.
        for _ in range(6):
            for cls in ("a", "b"):
                gov.decide(cls)
                gov.charge(cls, wall_seconds=0.5, probes=500)
        reasons = {gov.decide(cls).reason for cls in ("a", "b")}
        assert reasons <= {"head-sample", "degraded"}

    def test_probability_floor(self):
        gov = governor(min_probability=1.0 / 64.0)
        for _ in range(200):
            gov.decide("hot")
            gov.charge("hot", wall_seconds=1.0, probes=500)
        snap = gov.snapshot()
        hot = next(c for c in snap["classes"] if c["query_class"] == "hot")
        assert hot["probability"] >= 1.0 / 64.0
        # Even fully degraded, 1-in-64 runs are still observed.
        assert hot["sampled_runs"] >= hot["runs"] // 64

    def test_probability_recovers_under_budget(self):
        # Fast decay so the spend window drains within the test.
        gov = governor(decay=0.8)
        for _ in range(20):
            gov.decide("hot")
            gov.charge("hot", wall_seconds=1.0, probes=500)
        degraded = next(
            c for c in gov.snapshot()["classes"] if c["query_class"] == "hot"
        )["probability"]
        assert degraded < 1.0
        # Spend collapses; the class earns its probability back.
        for _ in range(40):
            gov.decide("hot")
            gov.charge("hot", wall_seconds=1.0, probes=0)
        recovered = next(
            c for c in gov.snapshot()["classes"] if c["query_class"] == "hot"
        )["probability"]
        assert recovered == 1.0

    def test_anomaly_pins_full_detail(self):
        gov = governor(anomaly_pin_runs=8)
        for _ in range(30):
            gov.decide("hot")
            gov.charge("hot", wall_seconds=1.0, probes=500)
        gov.note_anomaly("hot")
        for _ in range(8):
            decision = gov.decide("hot")
            assert decision.mode == "full"
            assert decision.reason == "anomaly-pinned"
            gov.charge("hot", wall_seconds=1.0, probes=500)
        assert gov.decide("hot").reason != "anomaly-pinned"

    def test_settle_counts_commits_and_drops(self):
        gov = governor()
        gov.settle(True)
        gov.settle(False)
        gov.settle(False)
        snap = gov.snapshot()
        assert snap["commits"] == 1 and snap["drops"] == 2

    def test_class_lru_eviction(self):
        gov = governor(max_classes=4)
        for index in range(10):
            gov.decide(f"cls{index}")
        snap = gov.snapshot()
        assert len(snap["classes"]) == 4

    def test_measured_probe_cost_positive(self):
        cost = measure_probe_cost(samples=256)
        assert 0.0 < cost < 0.001  # a probe is microseconds, not ms

    def test_snapshot_shape(self):
        gov = governor()
        gov.decide("q")
        gov.charge("q", wall_seconds=0.1, probes=3, spans=2)
        snap = gov.snapshot()
        for key in (
            "budget",
            "spent_fraction",
            "probe_cost_us",
            "decisions",
            "commits",
            "drops",
            "classes",
        ):
            assert key in snap


class TestAnomalyDetector:
    def detector(self, **overrides) -> AnomalyDetector:
        defaults = dict(threshold=4.0, min_samples=5)
        defaults.update(overrides)
        return AnomalyDetector(AnomalyConfig(**defaults))

    def test_warmup_never_flags(self):
        det = self.detector(min_samples=5)
        for _ in range(5):
            assert det.observe("q", latency=100.0) == []

    def test_level_shift_flags_latency(self):
        det = self.detector()
        for _ in range(10):
            det.observe("q", latency=0.010)
        flagged = det.observe("q", latency=0.500)
        assert len(flagged) == 1
        anomaly = flagged[0]
        assert anomaly.metric == "latency" and anomaly.score > 4.0
        assert "anomaly:latency" in anomaly.describe()

    def test_one_sided_fast_runs_never_flag(self):
        det = self.detector()
        for _ in range(10):
            det.observe("q", latency=0.010)
        assert det.observe("q", latency=0.0001) == []

    def test_no_baseline_contamination(self):
        # A sustained level shift keeps flagging: anomalous samples do
        # not update the baseline, so the detector cannot acclimatize
        # to an incident.
        det = self.detector()
        for _ in range(10):
            det.observe("q", latency=0.010)
        for _ in range(20):
            assert det.observe("q", latency=0.500)

    def test_misestimate_and_skew_metrics(self):
        det = self.detector()
        for _ in range(10):
            det.observe("q", latency=0.01, misestimate=1.1, skew=1.0)
        flagged = det.observe("q", latency=0.01, misestimate=80.0, skew=1.0)
        assert [a.metric for a in flagged] == ["misestimate"]

    def test_classes_isolated(self):
        det = self.detector()
        for _ in range(10):
            det.observe("a", latency=0.010)
        # "b" has no baseline yet: its first slow run is warmup, not
        # an anomaly inherited from "a".
        assert det.observe("b", latency=0.500) == []

    def test_spread_floor_absorbs_constant_baselines(self):
        # A perfectly constant baseline has zero spread; the relative
        # floor keeps tiny wobbles from scoring as infinite z.
        det = self.detector()
        for _ in range(10):
            det.observe("q", latency=0.0100)
        assert det.observe("q", latency=0.0101) == []

    def test_snapshot_shape(self):
        det = self.detector()
        det.observe("q", latency=0.01)
        snap = det.snapshot()
        assert snap["observed"] == 1 and "q" in snap["classes"]
        assert "latency" in snap["classes"]["q"]

    def test_class_cap(self):
        det = self.detector(max_classes=3)
        for index in range(10):
            det.observe(f"cls{index}", latency=0.01)
        assert len(det.snapshot(top=100)["classes"]) == 3
