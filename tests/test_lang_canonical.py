"""Tests for query-text canonicalization (plan-cache keys)."""

import pytest

from repro.errors import LanguageError
from repro.lang import canonical_text, compile_text, parse

FIG3 = """
view Influencer as
  select [master: x.master, disciple: x, gen: 1] from x in Composer
  union
  select [master: i.master, disciple: x, gen: i.gen + 1]
  from i in Influencer, x in Composer where i.disciple = x.master;

select [name: i.disciple.name, gen: i.gen]
from i in Influencer
where i.master.name = "Bach" and i.gen >= 3;
"""


class TestEquivalence:
    def test_whitespace_and_comments_are_erased(self):
        squeezed = " ".join(FIG3.split())
        commented = FIG3.replace(
            "view Influencer", "-- the paper's closure\nview Influencer"
        )
        assert canonical_text(FIG3) == canonical_text(squeezed)
        assert canonical_text(FIG3) == canonical_text(commented)

    def test_alias_renaming(self):
        renamed = """
        view Influencer as
          select [master: c.master, disciple: c, gen: 1] from c in Composer
          union
          select [master: inf.master, disciple: c, gen: inf.gen + 1]
          from inf in Influencer, c in Composer where inf.disciple = c.master;

        select [name: inf.disciple.name, gen: inf.gen]
        from inf in Influencer
        where inf.master.name = "Bach" and inf.gen >= 3;
        """
        assert canonical_text(FIG3) == canonical_text(renamed)

    def test_double_equals_folds_to_equals(self):
        assert canonical_text(
            'select [n: x.name] from x in Composer where x.name == "Bach";'
        ) == canonical_text(
            'select [n: x.name] from x in Composer where x.name = "Bach";'
        )

    def test_different_constants_are_different(self):
        a = 'select [n: x.name] from x in Composer where x.name = "Bach";'
        b = 'select [n: x.name] from x in Composer where x.name = "Liszt";'
        assert canonical_text(a) != canonical_text(b)

    def test_different_structure_is_different(self):
        a = "select [n: x.name] from x in Composer where x.gen >= 3;"
        b = "select [n: x.name] from x in Composer where x.gen > 3;"
        assert canonical_text(a) != canonical_text(b)


class TestRoundTrip:
    def test_idempotent(self):
        once = canonical_text(FIG3)
        assert canonical_text(once) == once

    def test_canonical_form_reparses(self):
        program = parse(canonical_text(FIG3))
        assert program.views[0].name == "Influencer"

    def test_canonical_form_compiles_identically(self, catalog):
        graph_a = compile_text(FIG3, catalog)
        graph_b = compile_text(canonical_text(FIG3), catalog)
        assert set(graph_a.produced_names()) == set(graph_b.produced_names())

    def test_operator_precedence_preserved(self):
        text = "select [v: x.gen + 2 * 3] from x in Influencer;"
        # 2 * 3 binds tighter; the canonical form must not reassociate.
        assert "2 * 3" in canonical_text(text)
        assert canonical_text(canonical_text(text)) == canonical_text(text)

    def test_nested_boolean_grouping_preserved(self):
        text = (
            "select [n: x.name] from x in Composer "
            'where (x.name = "Bach" or x.gen > 2) and x.gen < 9;'
        )
        canonical = canonical_text(text)
        assert canonical_text(canonical) == canonical
        assert "or" in canonical and "and" in canonical

    def test_string_escapes_survive(self):
        text = 'select [n: x.name] from x in Composer where x.name = "a\\"b";'
        assert canonical_text(canonical_text(text)) == canonical_text(text)


class TestErrors:
    def test_garbage_raises_language_error(self):
        with pytest.raises(LanguageError):
            canonical_text("select from nothing")
