"""Shared fixtures: the Figure 1 catalog and small generated databases."""

import pytest

from repro.schema import build_music_catalog
from repro.workloads import MusicConfig, generate_music_database


@pytest.fixture(scope="session")
def catalog():
    return build_music_catalog()


@pytest.fixture()
def small_db():
    """A small deterministic music database (no indices)."""
    return generate_music_database(
        MusicConfig(lineages=3, generations=5, works_per_composer=2, seed=42)
    )


@pytest.fixture()
def indexed_db():
    """A small database with the paper's physical design (path index on
    works.instruments, selection index on Composer.name)."""
    db = generate_music_database(
        MusicConfig(lineages=3, generations=7, works_per_composer=3, seed=7)
    )
    db.build_paper_indexes()
    return db


@pytest.fixture()
def larger_db():
    """A slightly larger database for optimizer/engine integration."""
    db = generate_music_database(
        MusicConfig(
            lineages=6,
            generations=8,
            works_per_composer=3,
            instruments=16,
            selective_fraction=0.2,
            seed=1992,
        )
    )
    db.build_paper_indexes()
    return db
