"""Tests for query-graph rendering and sweep scenarios."""

import pytest

from repro.core import rewrite
from repro.querygraph import render_graph, render_node
from repro.workloads import (
    MusicConfig,
    compare_push_policies,
    fig2_query,
    fig3_query,
    selection_push_sweep,
)


class TestGraphRendering:
    def test_fig2_render(self):
        rendered = render_graph(fig2_query())
        assert "Q[answer=Answer]" in rendered
        assert "(Answer <-" in rendered
        assert "Composer" in rendered
        assert "'Bach'" in rendered
        assert "?i1" in rendered and "?i2" in rendered  # tree labels

    def test_fig3_render_has_all_rules(self):
        rendered = render_graph(fig3_query())
        assert rendered.count("(Influencer <-") == 2
        assert "(Answer <-" in rendered

    def test_rewritten_graph_shows_fix_and_union(self):
        rendered = render_graph(rewrite(fig3_query()))
        assert "Fix(Influencer" in rendered
        assert "Union(" in rendered

    def test_render_node_on_spj(self):
        node = fig2_query().producers_of("Answer")[0].node
        rendered = render_node(node)
        assert rendered.startswith("SPJ(")


class TestScenarios:
    def test_compare_push_policies_fields(self):
        comparison = compare_push_policies(
            MusicConfig(
                lineages=3,
                generations=5,
                works_per_composer=2,
                selective_fraction=0.1,
                buffer_pages=4,
                seed=13,
            )
        )
        assert comparison.measured_unpushed > 0
        assert comparison.measured_pushed > 0
        assert comparison.measured_winner in ("push", "no-push")
        assert comparison.model_winner in ("push", "no-push")

    def test_sweep_varies_selectivity(self):
        results = selection_push_sweep(
            [0.05, 0.9],
            base_config=MusicConfig(
                lineages=3,
                generations=5,
                works_per_composer=2,
                buffer_pages=4,
                seed=13,
            ),
        )
        assert len(results) == 2
        assert results[0].config.selective_fraction == 0.05
        assert results[1].config.selective_fraction == 0.9
        # Estimated push cost must grow with selectivity.
        assert results[1].estimated_pushed > results[0].estimated_pushed
