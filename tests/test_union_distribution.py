"""Tests for the Section 5 extension: distributing union over join."""

import pytest

from repro.core.moves import neighbors
from repro.core.strategies import IterativeImprovement
from repro.cost import DetailedCostModel
from repro.engine import Engine
from repro.plans import EJ, EntityLeaf, Proj, Sel, UnionOp, find_all, validate_plan
from repro.querygraph.builder import const, eq, ge, out, path, var


def union_join_plan():
    """(early composers ∪ late composers) ⋈ their direct disciples."""
    early = Proj(
        Sel(EntityLeaf("Composer", "a"), ge(const(1650), path("a", "birthyear"))),
        out(m=var("a")),
    )
    late = Proj(
        Sel(EntityLeaf("Composer", "b"), ge(path("b", "birthyear"), const(1651))),
        out(m=var("b")),
    )
    return Proj(
        EJ(
            UnionOp(early, late),
            EntityLeaf("Composer", "d"),
            eq(path("d", "master"), var("m")),
        ),
        out(n=path("d", "name")),
    )


class TestDistributionMoves:
    def test_not_offered_by_default(self, indexed_db):
        options = neighbors(union_join_plan(), indexed_db.physical)
        assert not any("distribute" in desc for desc, _p in options)

    def test_distribute_left(self, indexed_db):
        options = neighbors(
            union_join_plan(), indexed_db.physical, extended=True
        )
        distributed = [
            plan for desc, plan in options if desc == "distribute-union-left"
        ]
        assert distributed
        plan = distributed[0]
        validate_plan(plan, indexed_db.physical)
        union = find_all(plan, UnionOp)[0]
        assert isinstance(union.left, EJ) and isinstance(union.right, EJ)

    def test_distribution_preserves_answers(self, indexed_db):
        engine = Engine(indexed_db.physical)
        original = union_join_plan()
        options = neighbors(original, indexed_db.physical, extended=True)
        distributed = [
            plan for desc, plan in options if desc.startswith("distribute")
        ][0]
        assert (
            engine.execute(original).answer_set()
            == engine.execute(distributed).answer_set()
        )

    def test_factorize_inverts_distribution(self, indexed_db):
        original = union_join_plan()
        options = neighbors(original, indexed_db.physical, extended=True)
        distributed = [
            plan for desc, plan in options if desc.startswith("distribute")
        ][0]
        back = [
            plan
            for desc, plan in neighbors(
                distributed, indexed_db.physical, extended=True
            )
            if desc.startswith("factorize")
        ]
        assert original in back

    def test_distribute_right_side(self, indexed_db):
        inner_union = UnionOp(
            Proj(EntityLeaf("Composer", "a"), out(m=var("a"))),
            Proj(EntityLeaf("Composer", "b"), out(m=var("b"))),
        )
        plan = Proj(
            EJ(
                EntityLeaf("Composer", "d"),
                inner_union,
                eq(path("d", "master"), var("m")),
            ),
            out(n=path("d", "name")),
        )
        options = neighbors(plan, indexed_db.physical, extended=True)
        distributed = [
            p for desc, p in options if desc == "distribute-union-right"
        ]
        assert distributed
        validate_plan(distributed[0], indexed_db.physical)
        engine = Engine(indexed_db.physical)
        assert (
            engine.execute(plan).answer_set()
            == engine.execute(distributed[0]).answer_set()
        )


class TestDistributionInSearch:
    def test_extended_strategy_explores_distribution(self, indexed_db):
        model = DetailedCostModel(indexed_db.physical)
        strategy = IterativeImprovement(seed=5)
        strategy.extended_moves = True
        result = strategy.search(
            union_join_plan(), model.cost, indexed_db.physical
        )
        assert result.cost <= model.cost(union_join_plan())
        validate_plan(result.plan, indexed_db.physical)

    def test_extended_never_worse_than_plain(self, indexed_db):
        model = DetailedCostModel(indexed_db.physical)
        plain = IterativeImprovement(seed=5, restarts=4).search(
            union_join_plan(), model.cost, indexed_db.physical
        )
        extended = IterativeImprovement(seed=5, restarts=4)
        extended.extended_moves = True
        extended_result = extended.search(
            union_join_plan(), model.cost, indexed_db.physical
        )
        assert extended_result.cost <= plain.cost + 1e-9
