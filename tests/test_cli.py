"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main

QUERY = """
select [name: x.name]
from x in Composer
where x.name = "Bach";
"""

RECURSIVE_QUERY = """
view Influencer as
  select [master: x.master, disciple: x, gen: 1] from x in Composer
  union
  select [master: i.master, disciple: x, gen: i.gen + 1]
  from i in Influencer, x in Composer where i.disciple = x.master;

select [name: i.disciple.name] from i in Influencer where i.gen >= 2;
"""


@pytest.fixture()
def query_file(tmp_path):
    path = tmp_path / "query.oql"
    path.write_text(QUERY)
    return str(path)


@pytest.fixture()
def recursive_file(tmp_path):
    path = tmp_path / "recursive.oql"
    path.write_text(RECURSIVE_QUERY)
    return str(path)


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self, query_file):
        args = build_parser().parse_args(["run", query_file])
        assert args.db == "music"
        assert args.policy == "cost"


class TestRun:
    def test_simple_query(self, query_file):
        code, output = run_cli(
            ["run", query_file, "--lineages", "3", "--generations", "4"]
        )
        assert code == 0
        assert "name='Bach'" in output
        assert "=== plan ===" in output
        assert "measured:" in output

    def test_recursive_query_with_policy(self, recursive_file):
        for policy in ("cost", "always", "never"):
            code, output = run_cli(
                [
                    "run",
                    recursive_file,
                    "--lineages",
                    "2",
                    "--generations",
                    "4",
                    "--policy",
                    policy,
                ]
            )
            assert code == 0
            assert "Fix[Influencer]" in output

    def test_row_limit(self, recursive_file):
        code, output = run_cli(
            [
                "run",
                recursive_file,
                "--lineages",
                "3",
                "--generations",
                "5",
                "--limit",
                "2",
            ]
        )
        assert code == 0
        assert "more" in output

    def test_missing_file_errors(self):
        code, _output = run_cli(["run", "/nonexistent/query.oql"])
        assert code == 1

    def test_bad_query_errors(self, tmp_path):
        path = tmp_path / "bad.oql"
        path.write_text("select from nothing")
        code, _output = run_cli(["run", str(path)])
        assert code == 1


class TestExplain:
    def test_explain_breakdown(self, query_file):
        code, output = run_cli(
            ["explain", query_file, "--lineages", "3", "--generations", "4"]
        )
        assert code == 0
        assert "cost breakdown" in output
        assert "total" in output

    def test_explain_simplified_table(self, recursive_file):
        code, output = run_cli(
            [
                "explain",
                recursive_file,
                "--simplified",
                "--lineages",
                "2",
                "--generations",
                "4",
            ]
        )
        assert code == 0
        assert "Section 4.6" in output
        assert "T1" in output


class TestDemoAndParts:
    def test_demo(self):
        code, output = run_cli(
            ["demo", "--lineages", "3", "--generations", "5"]
        )
        assert code == 0
        assert "Figure 3" in output
        assert "rows ===" in output

    def test_parts_database(self, tmp_path):
        path = tmp_path / "parts.oql"
        path.write_text(
            'select [p: x.pname] from x in Part where x.category = "cat_0";'
        )
        code, output = run_cli(
            ["run", str(path), "--db", "parts", "--lineages", "2"]
        )
        assert code == 0
        assert "rows ===" in output
