"""Quickstart: optimize and run an object-oriented recursive query.

Generates the paper's music database (Figure 1 schema), defines the
recursive ``Influencer`` view in the OQL-like query language, lets the
cost-controlled optimizer decide whether the harpsichord selection is
worth pushing through the recursion, and executes the chosen plan.

Run:  python examples/quickstart.py
"""

from repro import Engine, MusicConfig, cost_controlled_optimizer, generate_music_database
from repro.lang import compile_text
from repro.plans import render_tree

QUERY = """
view Influencer as
  select [master: x.master, disciple: x, gen: 1]
  from x in Composer
  union
  select [master: i.master, disciple: x, gen: i.gen + 1]
  from i in Influencer, x in Composer
  where i.disciple = x.master;

select [name: i.disciple.name, gen: i.gen]
from i in Influencer
where i.master.works.instruments.name = "harpsichord" and i.gen >= 3;
"""


def main() -> None:
    # A database with 12 master-lineages of 8 generations each.
    db = generate_music_database(
        MusicConfig(lineages=12, generations=8, works_per_composer=3, seed=7)
    )
    db.build_paper_indexes()  # path index on works.instruments, etc.

    graph = compile_text(QUERY, db.catalog)

    optimizer = cost_controlled_optimizer(db.physical)
    result = optimizer.optimize(graph)

    print("=== chosen plan ===")
    print(render_tree(result.plan))
    print()
    print(f"estimated cost : {result.cost:.1f}")
    print(f"plans costed   : {result.plans_costed}")
    print(f"pushed through recursion: {result.chose_push()}")
    print()
    print("candidates compared by transformPT:")
    for description, cost in result.candidates:
        print(f"  {cost:10.1f}  {description}")

    execution = Engine(db.physical).execute(result.plan)
    print()
    print(f"=== {len(execution.rows)} answers ===")
    for row in sorted(execution.rows, key=lambda r: (r["gen"], r["name"]))[:12]:
        print(f"  gen {row['gen']}: {row['name']}")
    metrics = execution.metrics
    print()
    print(
        f"measured: {metrics.buffer.physical_reads} page reads, "
        f"{metrics.predicate_evals} predicate evals, "
        f"{metrics.fix_iterations} fixpoint iterations"
    )


if __name__ == "__main__":
    main()
