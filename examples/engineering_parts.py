"""Engineering-database example ([CS90], the paper's motivation).

"Object-oriented recursive queries are important in engineering DBs,
e.g., execute a method for each subpart (recursively) connected to a
given part object."

Builds a bill-of-materials DAG, defines the recursive ``Contains`` view
over the *set-valued* ``subparts`` attribute, and runs two queries:

* all components of one assembly — the assembly-name selection is on
  an invariant field, so the optimizer may push it through the
  recursion;
* deep *heavy* components — the weight classification is a **method**
  (computed attribute); its cost is why blind pushing is dangerous,
  and the optimizer decides per the cost model.

Run:  python examples/engineering_parts.py
"""

from repro import Engine, cost_controlled_optimizer, deductive_optimizer
from repro.plans import render_tree
from repro.workloads import (
    PartsConfig,
    components_of_query,
    generate_parts_database,
    heavy_components_query,
)


def main() -> None:
    db = generate_parts_database(
        PartsConfig(assemblies=4, depth=4, fanout=3, sharing=0.15, seed=7)
    )
    stats = db.physical.statistics
    print(
        f"bill of materials: {stats.instances('Part')} parts, "
        f"{stats.pages('Part')} pages, "
        f"max nesting {stats.chain_depth('Part', 'subparts')[0]}"
    )

    engine = Engine(db.physical)

    print("\n=== all components of assembly_root_0 ===")
    graph = components_of_query("assembly_root_0")
    result = cost_controlled_optimizer(db.physical).optimize(graph)
    print(render_tree(result.plan))
    print(
        f"\npushed the assembly filter through the recursion: "
        f"{result.chose_push()}"
    )
    rows = engine.execute(result.plan)
    by_level = {}
    for row in rows.rows:
        by_level.setdefault(row["level"], []).append(row["component"])
    for level in sorted(by_level):
        names = by_level[level]
        print(f"  level {level}: {len(names)} components")

    print("\n=== deep heavy components (method-based selection) ===")
    graph = heavy_components_query("assembly_root_0", min_level=2)
    chosen = cost_controlled_optimizer(db.physical).optimize(graph)
    heuristic = deductive_optimizer(db.physical).optimize(graph)
    for name, optimized in (("cost-controlled", chosen), ("always-push", heuristic)):
        db.store.buffer.clear()
        run = engine.execute(optimized.plan)
        print(
            f"  {name:>16}: est {optimized.cost:8.1f}, "
            f"measured {run.metrics.measured_cost():8.1f}, "
            f"method evals {run.metrics.method_eval_weight:.0f}, "
            f"{len(run.rows)} answers"
        )
    heavy = engine.execute(chosen.plan)
    for row in sorted(heavy.rows, key=lambda r: (r["level"], r["component"]))[:10]:
        print(f"    level {row['level']}: {row['component']}")


if __name__ == "__main__":
    main()
