"""The selection-push crossover, as a user-runnable sweep.

Reproduces the paper's central argument interactively: sweep the
selectivity of the harpsichord predicate and watch the push/no-push
winner flip — and the cost model track the flip.

Run:  python examples/crossover_sweep.py
"""

from repro.workloads.scenarios import selection_push_sweep


def main() -> None:
    fractions = [0.02, 0.1, 0.3, 0.6, 1.0]
    print(
        f"{'selectivity':>11}  {'est no-push':>11}  {'est push':>9}  "
        f"{'meas no-push':>12}  {'meas push':>9}  {'winner':>7}  {'model':>7}"
    )
    print("-" * 78)
    agreements = 0
    results = selection_push_sweep(fractions)
    for comparison in results:
        agreements += comparison.model_agrees
        print(
            f"{comparison.config.selective_fraction:11.2f}  "
            f"{comparison.estimated_unpushed:11.0f}  "
            f"{comparison.estimated_pushed:9.0f}  "
            f"{comparison.measured_unpushed:12.0f}  "
            f"{comparison.measured_pushed:9.0f}  "
            f"{comparison.measured_winner:>7}  "
            f"{comparison.model_winner:>7}"
        )
    print("-" * 78)
    print(
        f"cost model agreed with measurement on {agreements}/{len(results)} "
        "points"
    )
    print(
        "\nBoth regimes exist: the deductive 'always push' heuristic is wrong\n"
        "on one side, the 'never push' default on the other — the decision\n"
        "must be cost-based (the paper's thesis)."
    )


if __name__ == "__main__":
    main()
