"""Search-strategy comparison ([IC90], [LV91], Section 4.1).

The optimizer separates its search *space* (actions/moves) from its
search *strategy*.  This example runs the same recursive query through
four strategies — Iterative Improvement, Simulated Annealing, two-phase
and exhaustive enumeration — and tabulates plan quality against
optimization effort (plans costed, wall-clock time).

Run:  python examples/strategy_comparison.py
"""

import time

from repro import MusicConfig, Optimizer, OptimizerConfig, generate_music_database
from repro.core.strategies import (
    ExhaustiveSearch,
    IterativeImprovement,
    SimulatedAnnealing,
    TwoPhase,
)
from repro.cost import DetailedCostModel
from repro.querygraph.builder import and_, arc, const, eq, ge, out, path, query, rule, spj, var
from repro.workloads import fig3_query


def dense_join_query(joins: int):
    """A join-heavy query: the space where exhaustive enumeration
    blows up while randomized strategies stay cheap."""
    arcs = [arc("Composer", **{f"c{i}": "."}) for i in range(joins + 1)]
    conjuncts = [eq(path("c0", "name"), const("Bach"))]
    for i in range(1, joins + 1):
        conjuncts.append(eq(path(f"c{i}", "master"), var(f"c{i-1}")))
    for i in range(2, joins + 1):
        conjuncts.append(
            ge(path(f"c{i}", "birthyear"), path(f"c{i-2}", "birthyear"))
        )
    node = spj(
        arcs, where=and_(*conjuncts), select=out(name=path(f"c{joins}", "name"))
    )
    return query(rule("Answer", node))


def run_table(db, model, graph, title):
    strategies = [
        ("iterative improvement", IterativeImprovement(seed=1)),
        ("simulated annealing", SimulatedAnnealing(seed=1)),
        ("two-phase (II + SA)", TwoPhase(seed=1)),
        ("exhaustive closure", ExhaustiveSearch(max_plans=2000)),
    ]
    print(f"\n=== {title} ===")
    print(f"{'strategy':>24}  {'plan cost':>10}  {'plans costed':>12}  {'time':>8}")
    print("-" * 62)
    for name, strategy in strategies:
        optimizer = Optimizer(
            db.physical,
            model,
            OptimizerConfig(
                push_policy="cost",
                reoptimize=True,
                strategy=strategy,
                exhaustive_generate=isinstance(strategy, ExhaustiveSearch),
            ),
        )
        started = time.perf_counter()
        result = optimizer.optimize(graph)
        elapsed = time.perf_counter() - started
        print(
            f"{name:>24}  {result.cost:10.1f}  {result.plans_costed:12d}  "
            f"{elapsed * 1000:6.0f}ms"
        )


def main() -> None:
    db = generate_music_database(
        MusicConfig(lineages=10, generations=8, works_per_composer=3, seed=3)
    )
    db.build_paper_indexes()
    model = DetailedCostModel(db.physical)

    run_table(db, model, fig3_query(), "fig3: recursive query (small space)")
    run_table(
        db,
        model,
        dense_join_query(4),
        "dense 4-way join (large join-order space)",
    )

    print()
    print(
        "All strategies search the same move space (join swaps, index "
        "toggles,\nPIJ collapse/expansion, selection/join pushes through "
        "recursion).  On the\njoin-heavy query the exhaustive baseline "
        "enumerates several times more\nplans for the same final cost — "
        "the paper's Section 4.1 trade-off."
    )


if __name__ == "__main__":
    main()
