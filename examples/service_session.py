"""The query service end to end: server, client, cache, invalidation.

Starts a TCP query server over a generated music database, then walks
the serving story from a client: a cold query (optimize + execute), a
reformulated repeat served from the plan cache, a prepared
parameterized statement, a stats mutation that drifts the cached
plan's estimate past the invalidation threshold, and the service
metrics that recorded it all.

Run:  PYTHONPATH=src python examples/service_session.py
"""

from repro.service import (
    QueryServer,
    QueryService,
    ServiceClient,
    ServiceConfig,
)
from repro.workloads import MusicConfig, generate_music_database

FIG3 = """
view Influencer as
  select [master: x.master, disciple: x, gen: 1] from x in Composer
  union
  select [master: i.master, disciple: x, gen: i.gen + 1]
  from i in Influencer, x in Composer where i.disciple = x.master;

select [name: i.disciple.name, gen: i.gen]
from i in Influencer
where i.gen >= 3;
"""

# The same query, different aliases and layout — one cache entry.
FIG3_REFORMULATED = (
    "view Influencer as "
    "select [master: c.master, disciple: c, gen: 1] from c in Composer "
    "union select [master: inf.master, disciple: c, gen: inf.gen + 1] "
    "from inf in Influencer, c in Composer where inf.disciple = c.master; "
    "select [name: z.disciple.name, gen: z.gen] "
    "from z in Influencer where z.gen >= 3;"
)


def main() -> None:
    db = generate_music_database(
        MusicConfig(lineages=6, generations=8, selective_fraction=0.15)
    )
    db.build_paper_indexes()
    service = QueryService(
        db, ServiceConfig(drift_ratio=0.1, default_timeout=30.0)
    )
    server = QueryServer(service, port=0)
    server.start()
    print(f"server listening on {server.address}\n")

    try:
        with ServiceClient("127.0.0.1", server.port) as client:
            client.hello()

            cold = client.query(FIG3)
            print(
                f"cold : cache={cold['cache']:<7} rows={cold['row_count']:<4}"
                f" optimize={cold['optimize_ms']:.1f}ms"
                f" execute={cold['execute_ms']:.1f}ms"
            )

            warm = client.query(FIG3_REFORMULATED)
            print(
                f"warm : cache={warm['cache']:<7} rows={warm['row_count']:<4}"
                f" optimize={warm['optimize_ms']:.1f}ms"
                f" execute={warm['execute_ms']:.1f}ms"
                "   (aliases/layout differ; canonicalization matched)"
            )

            stmt = client.prepare(
                "select [name: c.name, born: c.birthyear] "
                "from c in Composer where c.name = $who;"
            )
            bach = client.execute(stmt, {"who": "Bach"})
            print(f"\nprepared statement → {bach['rows']}")

            # Bulk-load composers: the closure now covers far more data,
            # so the cached plan's re-costed estimate drifts.
            for index in range(800):
                db.store.insert(
                    "Composer",
                    {
                        "name": f"late_{index:04d}",
                        "birthyear": 1950,
                        "master": None,
                        "works": (),
                    },
                )
            client.refresh_stats()
            drifted = client.query(FIG3)
            print(
                f"\nafter bulk load: cache={drifted['cache']} "
                f"(plans_costed={drifted['plans_costed']} — re-optimized)"
            )

            stats = client.stats()
            print(f"\ncache    : {stats['cache']}")
            print(f"admission: {stats['admission']}")
            service_stats = stats["service"]
            print(
                "service  : "
                f"executed={service_stats['executed']} "
                f"p50={service_stats['execute_p50_ms']}ms "
                f"p95={service_stats['execute_p95_ms']}ms "
                f"measured/estimated={service_stats['measured_over_estimated']}"
            )
    finally:
        server.stop()


if __name__ == "__main__":
    main()
