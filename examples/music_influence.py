"""The paper's running example, end to end.

Walks through Sections 2–4 on the music schema:

1. the Figure 2 query (overlapping-path adornments);
2. the Figure 3 recursive query, showing both Figure 4 processing
   trees, their Figure 7-style symbolic cost rows, and the
   cost-controlled push decision vs the deductive heuristic;
3. the Section 4.5 join-push query ("composers influenced by the
   masters of Bach") where pushing an explicit join through the
   recursion wins.

Run:  python examples/music_influence.py
"""

from repro import (
    Engine,
    MusicConfig,
    cost_controlled_optimizer,
    deductive_optimizer,
    generate_music_database,
    naive_optimizer,
)
from repro.cost import SimplifiedCostModel
from repro.plans import render_tree
from repro.workloads import fig2_query, fig3_query, join_push_query

ABBREV = {
    "Composer": "Cpr",
    "Composition": "Cpn",
    "Instrument": "Ins",
    "Influencer": "Inf",
}


def banner(title: str) -> None:
    print()
    print("=" * 70)
    print(title)
    print("=" * 70)


def main() -> None:
    db = generate_music_database(
        MusicConfig(
            lineages=10,
            generations=8,
            works_per_composer=3,
            selective_fraction=0.1,
            buffer_pages=8,
            seed=1992,
        )
    )
    db.build_paper_indexes()
    engine = Engine(db.physical)

    banner("Figure 2: works of Bach with harpsichord and flute")
    result = cost_controlled_optimizer(db.physical).optimize(fig2_query())
    print(render_tree(result.plan))
    rows = engine.execute(result.plan)
    print(f"\nanswers: {sorted(row['title'] for row in rows.rows)}")

    banner("Figure 3/4: the recursive Influencer query")
    graph = fig3_query(min_generations=4)
    unpushed = naive_optimizer(db.physical).optimize(graph)
    pushed = deductive_optimizer(db.physical).optimize(graph)
    chosen = cost_controlled_optimizer(db.physical).optimize(graph)

    print("\n-- PT 4(i): selection after the fixpoint --")
    print(render_tree(unpushed.plan))
    print("\n-- PT 4(ii): selection pushed through the fixpoint --")
    print(render_tree(pushed.plan))

    for name, plan in (("PT (i)", unpushed.plan), ("PT (ii)", pushed.plan)):
        db.store.buffer.clear()
        run = engine.execute(plan)
        print(
            f"\n{name}: {len(run.rows)} answers, measured cost "
            f"{run.metrics.measured_cost():.1f} "
            f"({run.metrics.buffer.physical_reads} page reads, "
            f"{run.metrics.predicate_evals} evals)"
        )
    print(
        f"\ncost-controlled decision: "
        f"{'push' if chosen.chose_push() else 'do not push'} "
        f"(estimated {chosen.cost:.1f})"
    )

    banner("Figure 7: symbolic cost rows (simplified model, Section 4.6)")
    simplified = SimplifiedCostModel(db.physical)
    for name, plan in (("PT (i)", unpushed.plan), ("PT (ii)", pushed.plan)):
        print(f"\n-- {name} --")
        for row in simplified.table(
            plan, symbolic=True, entity_abbreviations=ABBREV
        ):
            marker = {"main": " ", "fix-base": "b", "fix-rec": "r"}[row.section]
            print(f"  [{marker}] {row.label:>4} = {row.formula!r}")

    banner("Section 4.5: pushing a selective join through recursion")
    join_graph = join_push_query()
    join_unpushed = naive_optimizer(db.physical).optimize(join_graph)
    join_chosen = cost_controlled_optimizer(db.physical).optimize(join_graph)
    print(render_tree(join_chosen.plan))
    for name, plan in (
        ("without push", join_unpushed.plan),
        ("with push", join_chosen.plan),
    ):
        db.store.buffer.clear()
        run = engine.execute(plan)
        print(
            f"{name:>14}: measured cost {run.metrics.measured_cost():8.1f}, "
            f"{len(run.rows)} answers"
        )


if __name__ == "__main__":
    main()
